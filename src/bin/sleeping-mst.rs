//! The `sleeping-mst` command-line binary. All logic lives in
//! [`sleeping_mst::cli`]; this wrapper only touches `std::env` and the
//! process exit code.

use std::process::ExitCode;

use sleeping_mst::cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (code, text) = match cli::parse_args(&args) {
        Ok(cmd) => cli::execute(&cmd),
        Err(e) => (2, format!("error: {e}\n\n{}", cli::usage())),
    };
    print!("{text}");
    ExitCode::from(code as u8)
}
