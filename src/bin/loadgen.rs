//! `loadgen` — a replayable traffic generator for `sleeping-mst serve`.
//!
//! Replays a seeded trace of run requests against a daemon socket and
//! writes the `BENCH_serve.json` artifact. The trace is a pure function
//! of `--seed`/`--requests`/`--distinct` (splitmix64 over a fixed
//! request pool), so against a cold daemon in `closed` mode every
//! non-latency field of the artifact is byte-deterministic: request
//! counts, per-source response counts, the server counter deltas, the
//! cache hit rate, and an FNV-1a 64 checksum over every response line in
//! arrival order. The wall-clock measurements (latency percentiles,
//! throughput) are grouped under one `"wall"` object so CI can
//! neutralize them with a single regex before `cmp` — the same idiom the
//! scale job uses for `peak_rss_bytes`.
//!
//! Modes:
//!
//! * `closed` (default): one request in flight at a time — latency is
//!   pure service time and the hit/miss split is exactly reproducible
//!   (first sight of a pool entry misses, every repeat hits).
//! * `open`: fire `--burst` requests back-to-back, then collect the
//!   burst's responses — the regime that exercises in-flight coalescing
//!   and token-bucket shedding (those counts are timing-dependent, so
//!   `open` artifacts are demos, not `cmp` material).
//!
//! ```text
//! loadgen --socket /tmp/mst.sock --seed 1 --requests 200 --distinct 12 \
//!         --out BENCH_serve.json --shutdown
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
// lint:allow(wall-clock) -- loadgen measures real client-observed latency
use std::time::{Duration, Instant};

use bench::serve::protocol::Json;
use mst_core::wire::fnv64;

/// Fixed request pool dimensions: pool entry `i` cycles algorithms and
/// small graphs and uses `i` as the run seed, so any two entries differ
/// in at least the seed — `--distinct D` therefore yields exactly `D`
/// distinct canonical cache keys.
const ALGS: &[&str] = &[
    "randomized",
    "deterministic",
    "logstar",
    "prim",
    "spanning-tree",
    "always-awake",
];
const GRAPHS: &[&str] = &[
    "ring:12",
    "path:16",
    "star:12",
    "grid:3x4",
    "complete:8",
    "bintree:15",
];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pool_request(id: u64, entry: usize) -> String {
    format!(
        "{{\"id\":{id},\"cmd\":\"run\",\"alg\":\"{}\",\"graph\":\"{}\",\"seed\":{entry}}}",
        ALGS[entry % ALGS.len()],
        GRAPHS[entry % GRAPHS.len()],
    )
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

struct Args {
    socket: String,
    seed: u64,
    requests: usize,
    distinct: usize,
    mode: Mode,
    burst: usize,
    out: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        socket: String::new(),
        seed: 1,
        requests: 200,
        distinct: 12,
        mode: Mode::Closed,
        burst: 16,
        out: None,
        shutdown: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => args.socket = value("--socket")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not a u64".to_string())?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests: not a count".to_string())?;
            }
            "--distinct" => {
                args.distinct = value("--distinct")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&d| d >= 1)
                    .ok_or("--distinct: not a count (>= 1)".to_string())?;
            }
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("--mode: '{other}' is not closed|open")),
                };
            }
            "--burst" => {
                args.burst = value("--burst")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&b| b >= 1)
                    .ok_or("--burst: not a count (>= 1)".to_string())?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.socket.is_empty() {
        return Err("--socket is required".into());
    }
    Ok(args)
}

/// Connects, retrying briefly — the daemon may still be binding.
fn connect(socket: &str) -> Result<UnixStream, String> {
    for _ in 0..200 {
        if let Ok(stream) = UnixStream::connect(socket) {
            return Ok(stream);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Err(format!("cannot connect to {socket} after 5s"))
}

struct Client {
    writer: BufWriter<UnixStream>,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn new(socket: &str) -> Result<Client, String> {
        let stream = connect(socket)?;
        let write_half = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            writer: BufWriter::new(write_half),
            reader: BufReader::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".into()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("recv failed: {e}")),
        }
    }

    fn request(&mut self, line: &str) -> Result<String, String> {
        self.send(line)?;
        self.recv()
    }
}

/// Server counters parsed from a `stats` response.
#[derive(Debug, Clone, Copy, Default)]
struct ServerCounters {
    received: u64,
    shed: u64,
    hits: u64,
    coalesced: u64,
    misses: u64,
    executed: u64,
    rejected: u64,
}

fn parse_stats(line: &str) -> Result<ServerCounters, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad stats response: {e}"))?;
    let result = doc.get("result").ok_or("stats response has no result")?;
    let field = |name: &str| -> u64 { result.get(name).and_then(Json::as_u64).unwrap_or(0) };
    Ok(ServerCounters {
        received: field("received"),
        shed: field("shed"),
        hits: field("hits"),
        coalesced: field("coalesced"),
        misses: field("misses"),
        executed: field("executed"),
        rejected: field("rejected"),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut client = Client::new(&args.socket)?;

    let before = parse_stats(&client.request("{\"id\":0,\"cmd\":\"stats\"}")?)?;

    // The seeded trace: request j draws pool entry splitmix(seed-stream) % D.
    let mut rng = args.seed;
    let trace: Vec<usize> = (0..args.requests)
        .map(|_| (splitmix64(&mut rng) % args.distinct as u64) as usize)
        .collect();

    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    let mut latencies_micros: Vec<u64> = Vec::with_capacity(args.requests);
    let mut sources: BTreeMap<String, u64> = BTreeMap::new();
    let mut ok_count = 0u64;
    let mut err_count = 0u64;

    let mut note_response =
        |line: &str, latency: Option<Duration>, checksum: &mut u64| -> Result<(), String> {
            // Fold the raw response line (arrival order) into the artifact
            // checksum, then tally envelope fields.
            *checksum ^= fnv64(line.as_bytes());
            *checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
            let doc = Json::parse(line).map_err(|e| format!("bad response: {e}"))?;
            let source = doc
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            *sources.entry(source).or_insert(0) += 1;
            match doc.get("ok") {
                Some(Json::Bool(true)) => ok_count += 1,
                _ => err_count += 1,
            }
            if let Some(latency) = latency {
                latencies_micros.push(latency.as_micros() as u64);
            }
            Ok(())
        };

    // lint:allow(wall-clock) -- throughput measurement starts here
    let started = Instant::now();
    match args.mode {
        Mode::Closed => {
            for (j, &entry) in trace.iter().enumerate() {
                let line = pool_request(j as u64 + 1, entry);
                // lint:allow(wall-clock) -- per-request latency sample
                let t0 = Instant::now();
                let response = client.request(&line)?;
                note_response(&response, Some(t0.elapsed()), &mut checksum)?;
            }
        }
        Mode::Open => {
            for (burst_idx, burst) in trace.chunks(args.burst).enumerate() {
                let base = burst_idx * args.burst;
                // lint:allow(wall-clock) -- per-burst latency sample
                let t0 = Instant::now();
                for (k, &entry) in burst.iter().enumerate() {
                    client.send(&pool_request((base + k) as u64 + 1, entry))?;
                }
                for _ in burst {
                    let response = client.recv()?;
                    note_response(&response, Some(t0.elapsed()), &mut checksum)?;
                }
            }
        }
    }
    let wall = started.elapsed();

    let after = parse_stats(&client.request("{\"id\":0,\"cmd\":\"stats\"}")?)?;
    if args.shutdown {
        let bye = client.request("{\"id\":0,\"cmd\":\"shutdown\"}")?;
        if !bye.contains("\"draining\":true") {
            return Err(format!("unexpected shutdown response: {bye}"));
        }
    }

    let delta = |f: fn(&ServerCounters) -> u64| f(&after).saturating_sub(f(&before));
    let received = delta(|c| c.received);
    let hits = delta(|c| c.hits);
    let coalesced = delta(|c| c.coalesced);
    let hit_rate = if received == 0 {
        0.0
    } else {
        (hits + coalesced) as f64 / received as f64
    };

    latencies_micros.sort_unstable();
    let percentile = |p: usize| -> u64 {
        if latencies_micros.is_empty() {
            return 0;
        }
        latencies_micros[(latencies_micros.len() * p / 100).min(latencies_micros.len() - 1)]
    };
    let secs = wall.as_secs_f64().max(1e-9);

    let source_count = |name: &str| sources.get(name).copied().unwrap_or(0);
    let artifact = format!(
        "{{\"kind\":\"serve_load\",\"mode\":\"{}\",\"seed\":{},\"requests\":{},\
         \"distinct\":{},\"burst\":{},\"responses\":{{\"ok\":{ok_count},\"err\":{err_count}}},\
         \"sources\":{{\"exec\":{},\"cache\":{},\"coalesced\":{},\"admission\":{},\"reject\":{}}},\
         \"server\":{{\"received\":{received},\"shed\":{},\"hits\":{hits},\
         \"coalesced\":{coalesced},\"misses\":{},\"executed\":{},\"rejected\":{}}},\
         \"hit_rate\":{hit_rate:.4},\"result_fnv\":\"{checksum:#018x}\",\
         \"wall\":{{\"wall_seconds\":{:.6},\"requests_per_sec\":{:.1},\
         \"p50_micros\":{},\"p99_micros\":{}}}}}\n",
        match args.mode {
            Mode::Closed => "closed",
            Mode::Open => "open",
        },
        args.seed,
        args.requests,
        args.distinct,
        args.burst,
        source_count("exec"),
        source_count("cache"),
        source_count("coalesced"),
        source_count("admission"),
        source_count("reject"),
        delta(|c| c.shed),
        delta(|c| c.misses),
        delta(|c| c.executed),
        delta(|c| c.rejected),
        secs,
        args.requests as f64 / secs,
        percentile(50),
        percentile(99),
    );

    match &args.out {
        Some(path) => {
            std::fs::write(path, &artifact).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => print!("{artifact}"),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}
