//! Facade crate: re-exports the whole sleeping-model MST workspace.
//!
//! See the repository `README.md` for an overview. The heavy lifting lives
//! in the member crates:
//!
//! * [`graphlib`] — weighted graphs, generators, and reference MSTs;
//! * [`netsim`] — the synchronous CONGEST + sleeping-model simulator;
//! * [`mst_core`] — the paper's algorithms and the LDT toolbox;
//! * [`lowerbound`] — the lower-bound graph families and reductions.

#![forbid(unsafe_code)]

pub mod cli;

pub use graphlib;
pub use lowerbound;
pub use mst_core;
pub use netsim;
