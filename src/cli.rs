//! The `sleeping-mst` command-line interface: run any of the workspace's
//! MST algorithms on a described graph and report the sleeping-model
//! metrics, as text or JSON.
//!
//! The interface is deliberately dependency-free; graph and algorithm
//! specs are tiny colon-separated strings:
//!
//! ```text
//! sleeping-mst run --alg randomized --graph ring:64 --seed 7
//! sleeping-mst run --alg deterministic --graph random:48:0.1 --json
//! sleeping-mst verify --alg logstar --graph grid:4x8
//! sleeping-mst info --graph barbell:6:3
//! ```

use std::fmt;

use graphlib::{generators, mst, traversal, GraphError, WeightedGraph};
use mst_core::{
    run_always_awake, run_deterministic, run_logstar, run_prim, run_randomized, run_spanning_tree,
    MstOutcome,
};

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's randomized awake-optimal algorithm.
    Randomized,
    /// The paper's deterministic awake-optimal algorithm.
    Deterministic,
    /// The Corollary 1 Cole–Vishkin variant.
    Logstar,
    /// The Prim-style sequential baseline.
    Prim,
    /// The arbitrary-spanning-tree variant.
    SpanningTree,
    /// The always-awake GHS baseline.
    AlwaysAwake,
}

impl Algorithm {
    /// Parses an algorithm name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "randomized" => Ok(Algorithm::Randomized),
            "deterministic" => Ok(Algorithm::Deterministic),
            "logstar" => Ok(Algorithm::Logstar),
            "prim" => Ok(Algorithm::Prim),
            "spanning-tree" => Ok(Algorithm::SpanningTree),
            "always-awake" => Ok(Algorithm::AlwaysAwake),
            other => Err(format!(
                "unknown algorithm '{other}' (expected randomized, deterministic, \
                 logstar, prim, spanning-tree, or always-awake)"
            )),
        }
    }

    /// `true` if the output is the (unique) MST rather than just a
    /// spanning tree.
    pub fn produces_mst(self) -> bool {
        self != Algorithm::SpanningTree
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::Randomized => "randomized",
            Algorithm::Deterministic => "deterministic",
            Algorithm::Logstar => "logstar",
            Algorithm::Prim => "prim",
            Algorithm::SpanningTree => "spanning-tree",
            Algorithm::AlwaysAwake => "always-awake",
        };
        f.write_str(name)
    }
}

/// Builds a graph from a spec string like `ring:64`, `random:48:0.1`,
/// `grid:4x8`, `barbell:6:3`, `caterpillar:5:2`, `bintree:31`,
/// `complete:12`, `path:20`, or `star:16`.
///
/// # Errors
///
/// Returns a human-readable message on malformed specs or invalid sizes.
pub fn build_graph(spec: &str, seed: u64) -> Result<WeightedGraph, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    let int = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("'{s}' is not a positive integer"))
    };
    let graph: Result<WeightedGraph, GraphError> = match (kind, args.as_slice()) {
        ("ring", [n]) => generators::ring(int(n)?, seed),
        ("path", [n]) => generators::path(int(n)?, seed),
        ("star", [n]) => generators::star(int(n)?, seed),
        ("complete", [n]) => generators::complete(int(n)?, seed),
        ("bintree", [n]) => generators::binary_tree(int(n)?, seed),
        ("grid", [dims]) => {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid spec '{dims}' must look like 4x8"))?;
            generators::grid(int(r)?, int(c)?, seed)
        }
        ("random", [n, p]) => {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("'{p}' is not a probability"))?;
            generators::random_connected(int(n)?, p, seed)
        }
        ("barbell", [k, b]) => generators::barbell(int(k)?, int(b)?, seed),
        ("caterpillar", [s, l]) => generators::caterpillar(int(s)?, int(l)?, seed),
        _ => {
            return Err(format!(
                "unknown graph spec '{spec}' (expected ring:N, path:N, star:N, \
                 complete:N, bintree:N, grid:RxC, random:N:P, barbell:K:B, or \
                 caterpillar:S:L)"
            ))
        }
    };
    graph.map_err(|e| e.to_string())
}

/// Runs `alg` on `graph`.
///
/// # Errors
///
/// Propagates simulator errors as strings.
pub fn run(alg: Algorithm, graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, String> {
    let out = match alg {
        Algorithm::Randomized => run_randomized(graph, seed),
        Algorithm::Deterministic => run_deterministic(graph),
        Algorithm::Logstar => run_logstar(graph),
        Algorithm::Prim => run_prim(graph, 1),
        Algorithm::SpanningTree => run_spanning_tree(graph, seed),
        Algorithm::AlwaysAwake => run_always_awake(graph, seed),
    };
    out.map_err(|e| e.to_string())
}

/// Renders an outcome as a human-readable report.
pub fn render_text(alg: Algorithm, graph: &WeightedGraph, out: &MstOutcome) -> String {
    let n = graph.node_count() as f64;
    format!(
        "algorithm        : {alg}\n\
         nodes / edges    : {} / {}\n\
         tree edges       : {}\n\
         total weight     : {}\n\
         phases           : {}\n\
         awake max        : {} rounds\n\
         awake avg        : {:.1} rounds\n\
         awake / log2(n)  : {:.1}\n\
         run time         : {} rounds\n\
         awake x rounds   : {}\n\
         messages         : {} delivered, {} lost\n",
        graph.node_count(),
        graph.edge_count(),
        out.edges.len(),
        graph.total_weight(out.edges.iter().copied()),
        out.phases,
        out.stats.awake_max(),
        out.stats.awake_avg(),
        out.stats.awake_max() as f64 / n.log2().max(1.0),
        out.stats.rounds,
        out.stats.awake_round_product(),
        out.stats.messages_delivered,
        out.stats.messages_lost,
    )
}

/// Renders an outcome as a single JSON object (hand-rolled; all fields are
/// numbers or strings, so no escaping is needed).
pub fn render_json(alg: Algorithm, graph: &WeightedGraph, out: &MstOutcome) -> String {
    format!(
        "{{\"algorithm\":\"{alg}\",\"nodes\":{},\"edges\":{},\"tree_edges\":{},\
         \"total_weight\":{},\"phases\":{},\"awake_max\":{},\"awake_avg\":{:.3},\
         \"rounds\":{},\"awake_round_product\":{},\"messages_delivered\":{},\
         \"messages_lost\":{}}}",
        graph.node_count(),
        graph.edge_count(),
        out.edges.len(),
        graph.total_weight(out.edges.iter().copied()),
        out.phases,
        out.stats.awake_max(),
        out.stats.awake_avg(),
        out.stats.rounds,
        out.stats.awake_round_product(),
        out.stats.messages_delivered,
        out.stats.messages_lost,
    )
}

/// Verifies an outcome against Kruskal (for MST algorithms) or against
/// the spanning-tree property.
///
/// # Errors
///
/// Returns a description of the mismatch.
pub fn verify(alg: Algorithm, graph: &WeightedGraph, out: &MstOutcome) -> Result<(), String> {
    if alg.produces_mst() {
        let reference = mst::kruskal(graph);
        if out.edges != reference.edges {
            return Err(format!(
                "edge set differs from the reference MST ({} vs {} edges, weight {} vs {})",
                out.edges.len(),
                reference.edges.len(),
                graph.total_weight(out.edges.iter().copied()),
                reference.total_weight
            ));
        }
    } else {
        if out.edges.len() + 1 != graph.node_count() {
            return Err(format!(
                "expected {} spanning edges, got {}",
                graph.node_count() - 1,
                out.edges.len()
            ));
        }
        let mut uf = graphlib::UnionFind::new(graph.node_count());
        for &e in &out.edges {
            let edge = graph.edge(e);
            if !uf.union(edge.u.index(), edge.v.index()) {
                return Err(format!("edge {e} closes a cycle"));
            }
        }
    }
    Ok(())
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run`: execute and report.
    Run {
        /// Algorithm to run.
        alg: Algorithm,
        /// Graph spec.
        graph: String,
        /// Seed for weights and coins.
        seed: u64,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// `verify`: execute, check against the reference, exit non-zero on
    /// mismatch.
    Verify {
        /// Algorithm to run.
        alg: Algorithm,
        /// Graph spec.
        graph: String,
        /// Seed for weights and coins.
        seed: u64,
    },
    /// `info`: print graph structure only.
    Info {
        /// Graph spec.
        graph: String,
        /// Seed for weights.
        seed: u64,
    },
    /// `help`: usage text.
    Help,
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a usage message describing the problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let mut alg = None;
    let mut graph = None;
    let mut seed = 0u64;
    let mut json = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--alg" => {
                let v = it.next().ok_or("--alg needs a value")?;
                alg = Some(Algorithm::parse(v)?);
            }
            "--graph" => graph = Some(it.next().ok_or("--graph needs a value")?.clone()),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("'{v}' is not a seed"))?;
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let graph = graph.ok_or("--graph is required")?;
    match cmd {
        "run" => Ok(Command::Run {
            alg: alg.ok_or("--alg is required for 'run'")?,
            graph,
            seed,
            json,
        }),
        "verify" => Ok(Command::Verify {
            alg: alg.ok_or("--alg is required for 'verify'")?,
            graph,
            seed,
        }),
        "info" => Ok(Command::Info { graph, seed }),
        other => Err(format!(
            "unknown command '{other}' (run, verify, info, help)"
        )),
    }
}

/// The usage text.
pub const USAGE: &str = "\
sleeping-mst — distributed MST in the sleeping model (PODC 2022 reproduction)

USAGE:
    sleeping-mst run    --alg <ALG> --graph <SPEC> [--seed S] [--json]
    sleeping-mst verify --alg <ALG> --graph <SPEC> [--seed S]
    sleeping-mst info   --graph <SPEC> [--seed S]

ALGORITHMS:
    randomized      O(log n) awake, O(n log n) rounds (paper, Section 2.2)
    deterministic   O(log n) awake, O(n N log n) rounds (paper, Section 2.3)
    logstar         O(log n log* n) awake (paper, Corollary 1)
    prim            sequential baseline, Θ(n) awake
    spanning-tree   arbitrary spanning tree, O(log n) awake
    always-awake    traditional-model GHS baseline, awake = rounds

GRAPH SPECS:
    ring:N  path:N  star:N  complete:N  bintree:N  grid:RxC
    random:N:P  barbell:K:B  caterpillar:S:L
";

/// Executes a parsed command; returns the process exit code and the text
/// to print.
pub fn execute(cmd: &Command) -> (i32, String) {
    match cmd {
        Command::Help => (0, USAGE.to_string()),
        Command::Info { graph, seed } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => (
                0,
                format!(
                    "nodes     : {}\nedges     : {}\ndiameter  : {}\nmax id N  : {}\n",
                    g.node_count(),
                    g.edge_count(),
                    traversal::diameter(&g)
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "disconnected".to_string()),
                    g.max_external_id(),
                ),
            ),
        },
        Command::Run {
            alg,
            graph,
            seed,
            json,
        } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => match run(*alg, &g, *seed) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(out) => {
                    let text = if *json {
                        render_json(*alg, &g, &out) + "\n"
                    } else {
                        render_text(*alg, &g, &out)
                    };
                    (0, text)
                }
            },
        },
        Command::Verify { alg, graph, seed } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => match run(*alg, &g, *seed) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(out) => match verify(*alg, &g, &out) {
                    Ok(()) => (0, format!("ok: {alg} output verified on {graph}\n")),
                    Err(e) => (1, format!("MISMATCH: {e}\n")),
                },
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_run_command() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:32",
            "--seed",
            "9",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                alg: Algorithm::Randomized,
                graph: "ring:32".into(),
                seed: 9,
                json: true
            }
        );
    }

    #[test]
    fn parse_errors_are_helpful() {
        assert!(parse_args(&args(&["run", "--graph", "ring:8"]))
            .unwrap_err()
            .contains("--alg"));
        assert!(
            parse_args(&args(&["run", "--alg", "bogus", "--graph", "ring:8"]))
                .unwrap_err()
                .contains("unknown algorithm")
        );
        assert!(parse_args(&args(&["frobnicate", "--graph", "ring:8"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(matches!(parse_args(&args(&[])), Ok(Command::Help)));
    }

    #[test]
    fn graph_specs_build() {
        for spec in [
            "ring:12",
            "path:9",
            "star:7",
            "complete:6",
            "bintree:15",
            "grid:3x4",
            "random:14:0.2",
            "barbell:4:2",
            "caterpillar:4:2",
        ] {
            let g = build_graph(spec, 1).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(g.node_count() > 0, "{spec}");
        }
        assert!(build_graph("ring:2", 0).is_err());
        assert!(build_graph("mystery:3", 0).is_err());
        assert!(build_graph("grid:3", 0).is_err());
        assert!(build_graph("random:5:nope", 0).is_err());
    }

    #[test]
    fn run_and_verify_all_algorithms() {
        let g = build_graph("random:14:0.2", 3).unwrap();
        for alg in [
            Algorithm::Randomized,
            Algorithm::Deterministic,
            Algorithm::Logstar,
            Algorithm::Prim,
            Algorithm::SpanningTree,
            Algorithm::AlwaysAwake,
        ] {
            let out = run(alg, &g, 5).unwrap_or_else(|e| panic!("{alg}: {e}"));
            verify(alg, &g, &out).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let g = build_graph("ring:8", 1).unwrap();
        let out = run(Algorithm::Randomized, &g, 1).unwrap();
        let json = render_json(Algorithm::Randomized, &g, &out);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"awake_max\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn execute_paths() {
        let (code, text) = execute(&Command::Help);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));

        let (code, text) = execute(&Command::Info {
            graph: "ring:16".into(),
            seed: 0,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("diameter"));

        let (code, _) = execute(&Command::Info {
            graph: "nope".into(),
            seed: 0,
        });
        assert_eq!(code, 2);

        let (code, text) = execute(&Command::Verify {
            alg: Algorithm::Randomized,
            graph: "ring:16".into(),
            seed: 3,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.starts_with("ok:"));
    }
}
