//! The `sleeping-mst` command-line interface: run any of the workspace's
//! MST algorithms on a described graph and report the sleeping-model
//! metrics, as text or JSON.
//!
//! Algorithms are resolved through [`mst_core::registry`] — the CLI holds
//! no algorithm table of its own — and the `sweep` subcommand drives the
//! shared experiment harness ([`bench::harness`]) over an
//! (algorithm × n × seed) grid on all available cores.
//!
//! The interface is deliberately dependency-free; graph and algorithm
//! specs are tiny colon-separated strings:
//!
//! ```text
//! sleeping-mst run --alg randomized --graph ring:64 --seed 7
//! sleeping-mst run --alg deterministic --graph random:48:0.1 --json
//! sleeping-mst verify --alg logstar --graph grid:4x8
//! sleeping-mst info --graph barbell:6:3
//! sleeping-mst sweep --alg randomized,always-awake --graph ring:{n} \
//!     --sizes 16,32,64 --seeds 0..3
//! ```

use bench::{chaos, engine_panel, harness, report, serve};
use graphlib::{generators, mst, traversal, WeightedGraph};
use mst_core::registry::{self, AlgorithmSpec};
use mst_core::{ExecOptions, MstOutcome, MstScratch};
use netsim::{EnergyModel, Executor, FaultPlan, WakePolicy};

/// Parses an algorithm name against the registry.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_algorithm(s: &str) -> Result<&'static AlgorithmSpec, String> {
    registry::find(s)
        .ok_or_else(|| format!("unknown algorithm '{s}' (expected {})", registry::names()))
}

/// Builds a graph from a spec string like `ring:64`, `random:48:0.1`,
/// `grid:4x8`, `barbell:6:3`, `caterpillar:5:2`, `bintree:31`,
/// `complete:12`, `path:20`, `star:16`, or `scale:1000000:2` (the
/// streaming chorded-cycle family — O(E) memory at build time, the spec
/// for million-node campaigns).
///
/// # Errors
///
/// Returns a human-readable message on malformed specs or invalid sizes.
pub fn build_graph(spec: &str, seed: u64) -> Result<WeightedGraph, String> {
    generators::from_spec(spec, seed)
}

/// Runs `alg` on `graph`.
///
/// # Errors
///
/// Propagates run failures — simulator errors, inconsistent MST output
/// ([`mst_core::MstCollectError`]), disconnected input for algorithms that
/// require connectivity — as readable strings (the binary maps them to a
/// non-zero exit).
pub fn run(alg: &AlgorithmSpec, graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, String> {
    alg.run(graph, seed).map_err(|e| e.to_string())
}

/// The optional execution knobs of the `run` subcommand, bundled so the
/// entry point stays one call: time-driver override (`None` defers to
/// the registry default, the calendar driver; every driver is
/// bit-identical), shard count, energy model, and wake policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTuning {
    pub executor: Option<Executor>,
    pub shards: Option<u32>,
    pub energy: Option<EnergyModel>,
    pub wake_policy: WakePolicy,
}

/// Runs `alg` on `graph` under a fault plan (inert plans take the plain
/// path — see [`mst_core::registry::AlgorithmSpec::run_with_faults`])
/// and the [`RunTuning`] knobs.
///
/// # Errors
///
/// As [`run`], plus the fault-mode failures: the round-budget watchdog
/// ([`netsim::SimError::MaxRoundsExceeded`]), captured protocol panics,
/// and degraded-output detection — all as readable strings. An energy
/// model with a budget adds the typed
/// [`mst_core::RunError::EnergyExhausted`] failure.
pub fn run_with_faults(
    alg: &AlgorithmSpec,
    graph: &WeightedGraph,
    seed: u64,
    plan: &FaultPlan,
    tuning: RunTuning,
) -> Result<MstOutcome, String> {
    let mut opts = ExecOptions::seeded(seed)
        .with_faults(plan.clone())
        .with_wake_policy(tuning.wake_policy);
    if let Some(executor) = tuning.executor {
        opts = opts.with_executor(executor);
    }
    if let Some(shards) = tuning.shards {
        opts = opts.with_shards(shards);
    }
    if let Some(model) = tuning.energy {
        opts = opts.with_energy(model);
    }
    alg.run_with_options(graph, &opts, &mut MstScratch::new())
        .map_err(|e| e.to_string())
}

/// This process's peak resident set size in bytes (Linux `VmHWM`), or 0
/// where `/proc/self/status` is unavailable. Deliberately *not* part of
/// [`netsim::RunStats`]: the high-water mark is a property of the whole
/// process, monotone across runs and allocator-dependent, so it would
/// poison bit-identity contracts. Consumers diffing `run --json` output
/// must neutralize this one field (the CI scale leg seds it to 0).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// Parses a `--crash NODE@ROUND` operand.
fn parse_crash(s: &str) -> Result<(u32, u64), String> {
    let (node, round) = s
        .split_once('@')
        .ok_or_else(|| format!("crash spec '{s}' must look like NODE@ROUND"))?;
    let node = node
        .parse()
        .map_err(|_| format!("'{node}' is not a node index"))?;
    let round = round
        .parse()
        .map_err(|_| format!("'{round}' is not a round"))?;
    if round == 0 {
        return Err("crash round must be >= 1 (rounds start at 1)".into());
    }
    Ok((node, round))
}

/// Renders a fault plan as the JSON object embedded in `run --json`
/// output — together with the seed, everything needed to replay the run.
fn render_fault_plan(plan: &FaultPlan) -> String {
    let crashes: Vec<String> = plan
        .crashes
        .iter()
        .map(|(node, round)| format!("[{node},{round}]"))
        .collect();
    format!(
        "{{\"fault_seed\":{},\"drop_ppm\":{},\"duplicate_ppm\":{},\
         \"spurious_sleep_ppm\":{},\"wake_jitter\":{},\"crashes\":[{}]}}",
        plan.fault_seed,
        plan.drop_ppm,
        plan.duplicate_ppm,
        plan.spurious_sleep_ppm,
        plan.wake_jitter,
        crashes.join(","),
    )
}

/// Renders an outcome as a human-readable report.
pub fn render_text(alg: &AlgorithmSpec, graph: &WeightedGraph, out: &MstOutcome) -> String {
    let n = graph.node_count() as f64;
    format!(
        "algorithm        : {}\n\
         nodes / edges    : {} / {}\n\
         tree edges       : {}\n\
         total weight     : {}\n\
         phases           : {}\n\
         awake max        : {} rounds\n\
         awake avg        : {:.1} rounds\n\
         awake / log2(n)  : {:.1}\n\
         run time         : {} rounds\n\
         awake x rounds   : {}\n\
         messages         : {} delivered, {} lost\n\
         max message bits : {} (observed C = {}, budget C = {})\n",
        alg.name,
        graph.node_count(),
        graph.edge_count(),
        out.edges.len(),
        graph.total_weight(out.edges.iter().copied()),
        out.phases,
        out.stats.awake_max(),
        out.stats.awake_avg(),
        out.stats.awake_max() as f64 / n.log2().max(1.0),
        out.stats.rounds,
        out.stats.awake_round_product(),
        out.stats.messages_delivered,
        out.stats.messages_lost,
        out.stats.max_message_bits,
        out.stats.log_constant(graph.node_count()),
        alg.congest_constant,
    )
}

/// Renders an outcome as a single JSON object (hand-rolled; all fields are
/// numbers or registry names, so no escaping is needed). The seed and the
/// fault plan are embedded, so the object is a complete replay recipe:
/// `run --alg A --graph G --seed S` plus the printed fault fields
/// reproduce the run bit for bit.
///
/// With an active energy model, an `"energy"` object (model spec, ledger
/// total/max, idle-listen rounds, exhausted-node count) is inserted
/// between the memory block and the fault plan; plain runs emit exactly
/// the pre-energy bytes, so existing consumers diff unchanged output.
pub fn render_json(
    alg: &AlgorithmSpec,
    graph: &WeightedGraph,
    seed: u64,
    plan: &FaultPlan,
    energy: Option<&EnergyModel>,
    out: &MstOutcome,
) -> String {
    let energy_obj = match energy.filter(|m| !m.is_inert()) {
        None => String::new(),
        Some(model) => format!(
            "\"energy\":{{\"model\":\"{}\",\"total\":{},\"max\":{},\
             \"idle_listen_rounds\":{},\"exhausted_nodes\":{}}},",
            model.spec_string(),
            out.stats.energy_total(),
            out.stats.energy_max(),
            out.stats.idle_listen_rounds,
            out.stats.exhausted_nodes,
        ),
    };
    format!(
        "{{\"algorithm\":\"{}\",\"seed\":{},\"nodes\":{},\"edges\":{},\"tree_edges\":{},\
         \"total_weight\":{},\"phases\":{},\"awake_max\":{},\"awake_avg\":{:.3},\
         \"rounds\":{},\"awake_round_product\":{},\"messages_delivered\":{},\
         \"messages_lost\":{},\"max_message_bits\":{},\"log_constant\":{},\
         \"injected_drops\":{},\"dup_deliveries\":{},\"crashed_nodes\":{},\
         \"memory\":{{\"graph_bytes\":{},\"arena_peak_envelopes\":{},\
         \"peak_rss_bytes\":{}}},\
         {energy_obj}\"fault_plan\":{}}}",
        alg.name,
        seed,
        graph.node_count(),
        graph.edge_count(),
        out.edges.len(),
        graph.total_weight(out.edges.iter().copied()),
        out.phases,
        out.stats.awake_max(),
        out.stats.awake_avg(),
        out.stats.rounds,
        out.stats.awake_round_product(),
        out.stats.messages_delivered,
        out.stats.messages_lost,
        out.stats.max_message_bits,
        out.stats.log_constant(graph.node_count()),
        out.stats.injected_drops,
        out.stats.dup_deliveries,
        out.stats.crashed_nodes,
        out.stats.graph_bytes,
        out.stats.arena_peak_envelopes,
        peak_rss_bytes(),
        render_fault_plan(plan),
    )
}

/// Renders the executor-throughput report a `sweep --bench-out FILE`
/// writes (the `BENCH_engine.json` artifact): wall-clock time over the
/// whole grid plus aggregate runs-, messages-, and rounds-per-second.
///
/// The trial *work* (messages, rounds, per-trial stats) is deterministic
/// in the grid; only the wall-clock fields vary between machines.
pub fn render_bench_report(
    template: &str,
    threads: usize,
    results: &[harness::TrialResult],
    // lint:allow(wall-clock) -- bench report carries the measured wall time
    wall: std::time::Duration,
) -> String {
    let algorithms: Vec<&str> = {
        let mut names: Vec<&str> = results.iter().map(|r| r.algorithm.as_str()).collect();
        names.dedup();
        names
    };
    let messages: u64 = results.iter().map(|r| r.stats.messages_delivered).sum();
    let rounds: u64 = results.iter().map(|r| r.stats.rounds).sum();
    let max_bits: u64 = results
        .iter()
        .map(|r| r.stats.max_message_bits)
        .max()
        .unwrap_or(0);
    let log_constant: u64 = results
        .iter()
        .map(|r| r.stats.log_constant(r.nodes))
        .max()
        .unwrap_or(0);
    let secs = wall.as_secs_f64().max(1e-9);
    format!(
        "{{\"kind\":\"engine_throughput\",\"graph_template\":\"{}\",\
         \"algorithms\":\"{}\",\"threads\":{},\"trials\":{},\
         \"wall_seconds\":{:.6},\"runs_per_sec\":{:.3},\
         \"messages_delivered\":{},\"messages_per_sec\":{:.1},\
         \"rounds\":{},\"rounds_per_sec\":{:.1},\
         \"max_message_bits\":{},\"log_constant\":{}}}\n",
        template,
        algorithms.join(","),
        threads,
        results.len(),
        secs,
        results.len() as f64 / secs,
        messages,
        messages as f64 / secs,
        rounds,
        rounds as f64 / secs,
        max_bits,
        log_constant,
    )
}

/// Verifies an outcome against Kruskal (for MST algorithms) or against
/// the spanning-tree property.
///
/// # Errors
///
/// Returns a description of the mismatch.
pub fn verify(alg: &AlgorithmSpec, graph: &WeightedGraph, out: &MstOutcome) -> Result<(), String> {
    if alg.produces_mst {
        let reference = mst::kruskal(graph);
        if out.edges != reference.edges {
            return Err(format!(
                "edge set differs from the reference MST ({} vs {} edges, weight {} vs {})",
                out.edges.len(),
                reference.edges.len(),
                graph.total_weight(out.edges.iter().copied()),
                reference.total_weight
            ));
        }
    } else {
        if out.edges.len() + 1 != graph.node_count() {
            return Err(format!(
                "expected {} spanning edges, got {}",
                graph.node_count() - 1,
                out.edges.len()
            ));
        }
        let mut uf = graphlib::UnionFind::new(graph.node_count());
        for &e in &out.edges {
            let edge = graph.edge(e);
            if !uf.union(edge.u.index(), edge.v.index()) {
                return Err(format!("edge {e} closes a cycle"));
            }
        }
    }
    Ok(())
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run`: execute and report.
    Run {
        /// Algorithm to run.
        alg: &'static AlgorithmSpec,
        /// Graph spec.
        graph: String,
        /// Seed for weights and coins.
        seed: u64,
        /// Emit JSON instead of text.
        json: bool,
        /// Fault plan (inert unless fault flags were given).
        faults: FaultPlan,
        /// Time driver (`None` = the algorithm's registry default, the
        /// calendar driver). Every driver is bit-identical; the flag
        /// exists for differential checking and throughput comparison.
        executor: Option<Executor>,
        /// Send-half-step shard count (`None` = serial). Bit-identical
        /// for every value — `--shards 1` is the byte-equivalence
        /// baseline for any `--shards K` run.
        shards: Option<u32>,
        /// Energy pricing model (`None` = no charging). A `--budget`
        /// without `--energy-model` implies the reference model, like
        /// the serve protocol's bare `"budget"` field.
        energy: Option<EnergyModel>,
        /// When scheduled wakes actually land (`block` = today's exact
        /// timeline).
        wake_policy: WakePolicy,
    },
    /// `verify`: execute, check against the reference, exit non-zero on
    /// mismatch.
    Verify {
        /// Algorithm to run.
        alg: &'static AlgorithmSpec,
        /// Graph spec.
        graph: String,
        /// Seed for weights and coins.
        seed: u64,
    },
    /// `info`: print graph structure only.
    Info {
        /// Graph spec.
        graph: String,
        /// Seed for weights.
        seed: u64,
    },
    /// `check`: run under the validating executor ([`netsim::validate`])
    /// and report model conformance — per-message bit budget, observed
    /// message widths, and every dynamic sleeping-model invariant. Exits
    /// non-zero if any rule fires.
    Check {
        /// Algorithms to check; empty means the whole registry.
        algs: Vec<&'static AlgorithmSpec>,
        /// Graph spec.
        graph: String,
        /// Seed for weights and coins.
        seed: u64,
    },
    /// `sweep`: run an (algorithm × n × seed) grid through the shared
    /// harness, in parallel, and print aggregated metrics.
    Sweep {
        /// Algorithms to sweep.
        algs: Vec<&'static AlgorithmSpec>,
        /// Graph spec template containing the literal `{n}`.
        template: String,
        /// Family sizes substituted for `{n}`.
        sizes: Vec<usize>,
        /// Trial seeds (graph weights and algorithm coins).
        seeds: Vec<u64>,
        /// Worker threads (0 = all available cores).
        threads: usize,
        /// Emit raw per-trial JSON instead of the aggregated table.
        json: bool,
        /// Write executor-throughput metrics (runs/sec, messages/sec,
        /// rounds/sec over the whole grid) to this file as JSON.
        bench_out: Option<String>,
        /// Time driver for every trial (`None` = registry default).
        executor: Option<Executor>,
        /// Send-half-step shard count per trial (`None` = serial;
        /// bit-identical for every value).
        shards: Option<u32>,
        /// Energy pricing model applied to every trial (`None` = no
        /// charging).
        energy: Option<EnergyModel>,
    },
    /// `report`: generate the "Table 1, measured" artifact
    /// ([`bench::report`]) — every registry algorithm swept across graph
    /// families and sizes with metrics recording on; measured awake
    /// complexity against the paper's bounds, fitted exponents, and
    /// per-phase awake breakdowns. Byte-deterministic: the same panel
    /// always renders identical bytes.
    Report {
        /// Family sizes swept.
        sizes: Vec<usize>,
        /// Trial seeds per cell.
        seeds: Vec<u64>,
        /// Time driver backing the runs (`--naive` is shorthand for the
        /// naive oracle driver; the artifact bytes must not change
        /// whichever driver runs it).
        executor: Executor,
        /// Print JSON instead of markdown.
        json: bool,
        /// Also write the JSON artifact to this file.
        out: Option<String>,
        /// Also write the markdown artifact to this file.
        md_out: Option<String>,
        /// Energy pricing model for the panel's energy columns (`None`
        /// keeps the spec default, the budget-free reference model).
        energy: Option<EnergyModel>,
    },
    /// `chaos`: sweep every registry algorithm × graph family × fault
    /// level ([`bench::chaos`]), classify each trial, and print the
    /// fault-tolerance matrix. Exits non-zero on any wrong-output trial.
    Chaos {
        /// Master seed for trial seeds and fault streams.
        seed: u64,
        /// Family sizes.
        sizes: Vec<usize>,
        /// Trials per (algorithm, family, level, n) cell.
        trials: u64,
        /// Print the full byte-stable JSON matrix instead of the table.
        json: bool,
        /// Also write the JSON matrix to this file.
        out: Option<String>,
        /// Time driver every trial runs under (matrix bytes must not
        /// depend on it).
        executor: Executor,
        /// Send-half-step shard count per trial (matrix bytes must not
        /// depend on it either — the CI energy leg `cmp`s legs).
        shards: Option<u32>,
        /// Energy pricing model charged on every trial; stamped into the
        /// matrix header and the per-cell `energy_total` column.
        energy: Option<EnergyModel>,
    },
    /// `bench-engine`: time the drivers themselves on the sparse-wake
    /// panel ([`bench::engine_panel`]) — few wakes per node, huge gaps —
    /// and print/write the per-driver throughput rows
    /// (`BENCH_engine.json`).
    BenchEngine {
        /// Node counts to run.
        sizes: Vec<usize>,
        /// Master seed for graph structure and wake schedules.
        seed: u64,
        /// Drivers to time (the naive oracle is `O(rounds · n)` — only
        /// ask for it at small sizes).
        executors: Vec<Executor>,
        /// Node counts for the wide-wave workload rows (every node awake
        /// every round — the regime sharding accelerates). Empty skips
        /// the wave panel.
        wave_sizes: Vec<usize>,
        /// Shard counts swept on the wave rows (the panel asserts the
        /// run stats agree across all of them).
        shards: Vec<u32>,
        /// Also write the JSON rows to this file.
        out: Option<String>,
    },
    /// `serve`: the sweep-as-a-service daemon ([`bench::serve`]) — a
    /// fixed worker pool of warm executor scratches behind a Unix
    /// socket, answering NDJSON run/sweep/report/chaos requests with a
    /// deterministic result cache, in-flight coalescing, token-bucket
    /// admission, and graceful drain on a `shutdown` request.
    Serve {
        /// Unix-domain socket path to bind.
        socket: String,
        /// Worker threads (each owns one warm scratch).
        workers: usize,
        /// Result-cache capacity in entries (0 disables caching).
        cache_capacity: usize,
        /// Token-bucket burst capacity.
        bucket_capacity: u64,
        /// Token-bucket refill rate, tokens per second.
        refill_per_sec: u64,
    },
    /// `help`: usage text.
    Help,
}

fn parse_usize_list(s: &str, what: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| format!("'{x}' is not a valid {what}"))
        })
        .collect()
}

/// Parses a seed set: either `a..b` (half-open range) or a comma list.
fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = s.split_once("..") {
        let lo: u64 = a.parse().map_err(|_| format!("'{a}' is not a seed"))?;
        let hi: u64 = b.parse().map_err(|_| format!("'{b}' is not a seed"))?;
        if lo >= hi {
            return Err(format!("empty seed range '{s}'"));
        }
        Ok((lo..hi).collect())
    } else {
        s.split(',')
            .map(|x| x.trim().parse().map_err(|_| format!("'{x}' is not a seed")))
            .collect()
    }
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a usage message describing the problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let mut algs: Vec<&'static AlgorithmSpec> = Vec::new();
    let mut graph = None;
    let mut seed = 0u64;
    let mut seeds: Option<Vec<u64>> = None;
    let mut sizes: Option<Vec<usize>> = None;
    let mut threads = 0usize;
    let mut json = false;
    let mut bench_out: Option<String> = None;
    let mut trials = 2u64;
    let mut out: Option<String> = None;
    let mut md_out: Option<String> = None;
    let mut naive = false;
    let mut executor: Option<Executor> = None;
    let mut executors: Option<Vec<Executor>> = None;
    let mut shards: Option<Vec<u32>> = None;
    let mut wave_sizes: Option<Vec<usize>> = None;
    let mut faults = FaultPlan::default();
    let mut energy: Option<EnergyModel> = None;
    let mut budget: Option<u64> = None;
    let mut wake_policy = WakePolicy::default();
    let mut socket: Option<String> = None;
    let mut workers = 2usize;
    let mut cache_capacity = 256usize;
    let mut bucket_capacity = 4096u64;
    let mut refill_per_sec = 4096u64;
    let parse_executor = |v: &str| -> Result<Executor, String> {
        Executor::parse(v)
            .ok_or_else(|| format!("unknown executor '{v}' (expected sync, calendar, or naive)"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--alg" => {
                let v = it.next().ok_or("--alg needs a value")?;
                for name in v.split(',') {
                    algs.push(parse_algorithm(name.trim())?);
                }
            }
            "--graph" => graph = Some(it.next().ok_or("--graph needs a value")?.clone()),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("'{v}' is not a seed"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                seeds = Some(parse_seeds(v)?);
            }
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a value")?;
                sizes = Some(parse_usize_list(v, "size")?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a thread count"))?;
            }
            "--json" => json = true,
            "--bench-out" => {
                bench_out = Some(it.next().ok_or("--bench-out needs a file path")?.clone());
            }
            "--trials" => {
                let v = it.next().ok_or("--trials needs a value")?;
                trials = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a trial count"))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a file path")?.clone()),
            "--md-out" => md_out = Some(it.next().ok_or("--md-out needs a file path")?.clone()),
            "--naive" => naive = true,
            "--executor" => {
                let v = it
                    .next()
                    .ok_or("--executor needs sync, calendar, or naive")?;
                executor = Some(parse_executor(v)?);
            }
            "--executors" => {
                let v = it.next().ok_or("--executors needs a comma list")?;
                executors = Some(
                    v.split(',')
                        .map(|x| parse_executor(x.trim()))
                        .collect::<Result<Vec<Executor>, String>>()?,
                );
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                shards = Some(
                    v.split(',')
                        .map(|x| {
                            x.trim()
                                .parse::<u32>()
                                .ok()
                                .filter(|&s| s >= 1)
                                .ok_or_else(|| format!("'{x}' is not a shard count (>= 1)"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?,
                );
            }
            "--wave-sizes" => {
                let v = it.next().ok_or("--wave-sizes needs a value")?;
                wave_sizes = Some(parse_usize_list(v, "wave size")?);
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                faults.fault_seed = v.parse().map_err(|_| format!("'{v}' is not a seed"))?;
            }
            "--drop-ppm" => {
                let v = it.next().ok_or("--drop-ppm needs a value")?;
                faults.drop_ppm = v.parse().map_err(|_| format!("'{v}' is not a ppm value"))?;
            }
            "--dup-ppm" => {
                let v = it.next().ok_or("--dup-ppm needs a value")?;
                faults.duplicate_ppm =
                    v.parse().map_err(|_| format!("'{v}' is not a ppm value"))?;
            }
            "--sleep-ppm" => {
                let v = it.next().ok_or("--sleep-ppm needs a value")?;
                faults.spurious_sleep_ppm =
                    v.parse().map_err(|_| format!("'{v}' is not a ppm value"))?;
            }
            "--jitter" => {
                let v = it.next().ok_or("--jitter needs a value")?;
                faults.wake_jitter = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a round count"))?;
            }
            "--crash" => {
                let v = it.next().ok_or("--crash needs NODE@ROUND")?;
                let (node, round) = parse_crash(v)?;
                faults = faults.with_crash(node, round);
            }
            "--energy-model" => {
                let v = it.next().ok_or("--energy-model needs a spec")?;
                energy = Some(EnergyModel::parse(v).ok_or_else(|| {
                    format!(
                        "unknown energy model '{v}' (expected 'reference', 'radio', or a \
                         comma list of round:R,tx:T,rx:X,idle:I,budget:B)"
                    )
                })?);
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                budget = Some(
                    v.parse()
                        .map_err(|_| format!("'{v}' is not an energy budget"))?,
                );
            }
            "--wake-policy" => {
                let v = it.next().ok_or("--wake-policy needs a spec")?;
                wake_policy = WakePolicy::parse(v).ok_or_else(|| {
                    format!(
                        "unknown wake policy '{v}' (expected block, duty:P, \
                         heavytail:SEED:CAP, or shift:SEED:MAX)"
                    )
                })?;
            }
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?.clone()),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| format!("'{v}' is not a worker count (>= 1)"))?;
            }
            "--cache-capacity" => {
                let v = it.next().ok_or("--cache-capacity needs a value")?;
                cache_capacity = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a cache capacity"))?;
            }
            "--bucket-capacity" => {
                let v = it.next().ok_or("--bucket-capacity needs a value")?;
                bucket_capacity = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a token count"))?;
            }
            "--refill-per-sec" => {
                let v = it.next().ok_or("--refill-per-sec needs a value")?;
                refill_per_sec = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a refill rate"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    // A bare --budget prices the run under the reference model, exactly
    // like the serve protocol's bare "budget" field.
    let energy = match budget {
        Some(b) => Some(energy.unwrap_or_else(EnergyModel::reference).with_budget(b)),
        None => energy,
    };
    let single_shards = |shards: &Option<Vec<u32>>| -> Result<Option<u32>, String> {
        match shards.as_deref() {
            None => Ok(None),
            Some([one]) => Ok(Some(*one)),
            Some(_) => Err(
                "this command takes a single --shards value (lists are for bench-engine)".into(),
            ),
        }
    };
    if cmd == "report" {
        return Ok(Command::Report {
            sizes: sizes.unwrap_or_else(|| vec![8, 12, 16, 24]),
            seeds: seeds.unwrap_or_else(|| vec![0, 1]),
            executor: executor.unwrap_or(if naive {
                Executor::Naive
            } else {
                Executor::Calendar
            }),
            json,
            out,
            md_out,
            energy,
        });
    }
    if cmd == "chaos" {
        return Ok(Command::Chaos {
            seed,
            sizes: sizes.unwrap_or_else(|| vec![8, 12]),
            trials,
            json,
            out,
            executor: executor.unwrap_or_default(),
            shards: single_shards(&shards)?,
            energy,
        });
    }
    if cmd == "bench-engine" {
        return Ok(Command::BenchEngine {
            sizes: sizes.unwrap_or_else(|| vec![1 << 14]),
            seed,
            executors: executors.unwrap_or_else(|| {
                executor.map_or_else(|| vec![Executor::Calendar, Executor::Sync], |e| vec![e])
            }),
            wave_sizes: wave_sizes.unwrap_or_default(),
            shards: shards.unwrap_or_else(|| vec![1]),
            out,
        });
    }
    if cmd == "serve" {
        return Ok(Command::Serve {
            socket: socket.ok_or("--socket is required for 'serve'")?,
            workers,
            cache_capacity,
            bucket_capacity,
            refill_per_sec,
        });
    }
    let graph = graph.ok_or("--graph is required")?;
    let single_alg = |algs: &[&'static AlgorithmSpec]| -> Result<&'static AlgorithmSpec, String> {
        match algs {
            [one] => Ok(one),
            [] => Err("--alg is required".to_string()),
            _ => Err("this command takes exactly one --alg".to_string()),
        }
    };
    match cmd {
        "run" => Ok(Command::Run {
            alg: single_alg(&algs)?,
            graph,
            seed,
            json,
            faults,
            executor,
            shards: single_shards(&shards)?,
            energy,
            wake_policy,
        }),
        "verify" => Ok(Command::Verify {
            alg: single_alg(&algs)?,
            graph,
            seed,
        }),
        "info" => Ok(Command::Info { graph, seed }),
        "check" => Ok(Command::Check { algs, graph, seed }),
        "sweep" => {
            if algs.is_empty() {
                return Err("--alg is required for 'sweep' (comma-separate for several)".into());
            }
            if !graph.contains("{n}") {
                return Err(format!(
                    "sweep graph template '{graph}' must contain the literal {{n}} \
                     (e.g. ring:{{n}} or random:{{n}}:0.1)"
                ));
            }
            Ok(Command::Sweep {
                algs,
                template: graph,
                sizes: sizes.ok_or("--sizes is required for 'sweep'")?,
                seeds: seeds.unwrap_or_else(|| vec![seed]),
                threads,
                json,
                bench_out,
                executor,
                shards: single_shards(&shards)?,
                energy,
            })
        }
        other => Err(format!(
            "unknown command '{other}' (run, verify, info, check, sweep, report, \
             chaos, bench-engine, serve, help)"
        )),
    }
}

/// The usage text, with the algorithm list generated from the registry.
pub fn usage() -> String {
    let mut algorithms = String::new();
    for spec in registry::ALGORITHMS {
        algorithms.push_str(&format!("    {:<15} {}\n", spec.name, spec.description));
    }
    format!(
        "\
sleeping-mst — distributed MST in the sleeping model (PODC 2022 reproduction)

USAGE:
    sleeping-mst run    --alg <ALG> --graph <SPEC> [--seed S] [--json]
                        [--executor sync|calendar|naive] [--shards K]
                        [--energy-model M] [--budget B] [--wake-policy P]
                        [--fault-seed S] [--drop-ppm P] [--dup-ppm P]
                        [--sleep-ppm P] [--jitter J] [--crash NODE@ROUND]…
    sleeping-mst verify --alg <ALG> --graph <SPEC> [--seed S]
    sleeping-mst info   --graph <SPEC> [--seed S]
    sleeping-mst check  --graph <SPEC> [--alg <ALG[,ALG…]>] [--seed S]
    sleeping-mst sweep  --alg <ALG[,ALG…]> --graph <TEMPLATE with {{n}}>
                        --sizes <N,N,…> [--seeds A..B|A,B,…] [--threads T] [--json]
                        [--bench-out FILE] [--executor sync|calendar|naive]
                        [--shards K] [--energy-model M] [--budget B]
    sleeping-mst report [--sizes N,N,…] [--seeds A..B|A,B,…] [--naive]
                        [--executor sync|calendar|naive]
                        [--energy-model M] [--budget B]
                        [--json] [--out FILE] [--md-out FILE]
    sleeping-mst chaos  [--seed S] [--sizes N,N,…] [--trials K] [--json]
                        [--out FILE] [--executor sync|calendar|naive]
                        [--shards K] [--energy-model M] [--budget B]
    sleeping-mst bench-engine [--sizes N,N,…] [--seed S] [--out FILE]
                        [--executors calendar,sync[,naive]]
                        [--wave-sizes N,N,…] [--shards K,K,…]
    sleeping-mst serve  --socket PATH [--workers W] [--cache-capacity C]
                        [--bucket-capacity B] [--refill-per-sec R]

ALGORITHMS:
{algorithms}
GRAPH SPECS:
    ring:N  path:N  star:N  complete:N  bintree:N  grid:RxC
    random:N:P  barbell:K:B  caterpillar:S:L  scale:N:C
    (scale:N:C is the streaming chorded-cycle family — N nodes, C chords
    per node, built directly into the flat CSR layout; the spec for
    million-node campaigns, e.g. scale:1000000:2)

CHECK:
    Runs each algorithm (all of them when --alg is omitted) under the
    validating executor: sends only from awake nodes, loss exactly to
    sleeping receivers, every message within C·⌈log₂ n⌉ bits, message
    conservation, and same-seed bit-identity. Exits non-zero with the
    violation list if any sleeping-model rule fires.

SWEEP:
    The template is a graph spec with {{n}} in place of the size, e.g.
    `--graph random:{{n}}:0.1 --sizes 32,64,128 --seeds 0..5`. Trials run
    in parallel (one graph+run per (algorithm, n, seed) cell); results are
    deterministic per seed and independent of --threads. With --bench-out,
    an executor-throughput JSON report (wall clock, runs/sec, messages/sec,
    rounds/sec over the whole grid) is also written to FILE.

FAULTS (run):
    Seeded, fully deterministic fault injection: --drop-ppm destroys
    messages in flight, --dup-ppm delivers extra copies, --sleep-ppm
    suppresses scheduled wakes, --jitter slips every wake by up to J
    rounds, --crash NODE@ROUND halts a node permanently (repeatable).
    Probabilities are parts-per-million of a stream seeded by
    --fault-seed; the same flags and seeds replay the run bit for bit
    (the `--json` output embeds the full plan). Under active faults a
    round-budget watchdog and panic capture turn livelock and broken
    protocol invariants into typed errors.

REPORT:
    Generates the \"Table 1, measured\" artifact: every registry algorithm
    on the random and ring families across --sizes × --seeds with
    per-round metrics recording on. Columns compare measured awake
    complexity against the paper's bounds, fit metric ~ n^b exponents
    across the panel, and break each run's awake node-rounds down by
    logical phase. Prints markdown (or JSON with --json) and writes the
    artifacts with --out (JSON) / --md-out (markdown). Byte-deterministic:
    the same panel always produces identical bytes, with --naive backing
    the runs by the reference executor instead — output unchanged.

CHAOS:
    Sweeps every registry algorithm × graph family (ring, random,
    complete) × fault level (none, light, moderate, heavy, crash) and
    classifies each trial as correct, typed-failure, or wrong-output.
    Deterministic per --seed: the JSON matrix (--json / --out FILE) is
    byte-identical across runs. Exits non-zero if any trial produced a
    wrong output — fault injection must degrade runs legibly, never
    silently corrupt them.

ENERGY (run, sweep, report, chaos; serve takes it per request):
    --energy-model prices every simulated action in integer energy units:
    `reference` (round:1000,tx:8,rx:4,idle:50), `radio` (1 unit per awake
    round), or a comma list like round:R,tx:T,rx:X,idle:I[,budget:B].
    Charging happens inside the one execution kernel, so per-node ledgers
    are bit-identical across executors and shard counts. --budget B caps
    every node at B units (implying the reference model if no
    --energy-model is given); a node that overspends is forced asleep
    permanently and the run fails with the typed error
    `run.energy-exhausted` rather than passing off a partial forest.
    --wake-policy (run only) reschedules wakes deterministically: `block`
    (exact timeline, the default), `duty:P` (wakes snap up to rounds
    1, 1+P, 1+2P, …), `heavytail:SEED:CAP` (seeded geometric slip), or
    `shift:SEED:MAX` (seeded constant per-node phase offset). Policies
    hash like fault decisions, so all drivers and the naive oracle agree.

EXECUTORS:
    Execution is one generic kernel parameterized by a time driver:
    `calendar` (the default) jumps between scheduled wakes on a heap,
    `sync` ticks every round, `naive` is an O(n)-scan oracle. All three
    are bit-identical on every run — fingerprints, stats, traces, and
    metrics — so --executor only changes wall-clock cost (that is what
    `bench-engine` measures) and any divergence is a simulator bug.

SHARDS:
    --shards K splits the per-round send half-step across K worker
    threads (wide rounds only; narrow rounds stay serial). Shard counts
    are bit-identical by construction: every stat, trace, metric, and
    fingerprint matches --shards 1 exactly, so any K can be diffed
    byte-for-byte against the serial baseline. `run --json` reports a
    \"memory\" block (graph_bytes, arena_peak_envelopes, peak_rss_bytes);
    peak_rss_bytes is a whole-process high-water mark and is the one
    field to neutralize when diffing outputs.

SERVE:
    Runs the sweep-as-a-service daemon: newline-delimited JSON requests
    (run, sweep, report, chaos, stats, shutdown) over a Unix socket, one
    response line per request. Workers keep warm executor scratches;
    identical requests coalesce onto one execution; results land in a
    deterministic LRU keyed by the canonical request (executor and shard
    knobs erased — all drivers are bit-identical); a token bucket sheds
    over-budget requests with the typed error `serve.over-capacity`
    instead of queueing them. Blocks until a `shutdown` request, drains
    every admitted job, then prints the front-door counters. Drive it
    with the `loadgen` binary to produce the BENCH_serve.json artifact.

BENCH-ENGINE:
    Times the drivers themselves on a sparse-wake panel (a few wakes per
    node separated by gaps of thousands of rounds — the regime the
    sleeping model is about) and prints per-driver JSON rows: rounds,
    messages, wall seconds, rounds/sec, messages/sec. With --out the rows
    are written as the BENCH_engine.json artifact. The naive oracle costs
    O(rounds·n); include it via --executors only at small sizes.
"
    )
}

/// Executes a parsed command; returns the process exit code and the text
/// to print.
pub fn execute(cmd: &Command) -> (i32, String) {
    match cmd {
        Command::Help => (0, usage()),
        Command::Serve {
            socket,
            workers,
            cache_capacity,
            bucket_capacity,
            refill_per_sec,
        } => {
            let config = serve::ServeConfig {
                socket: socket.into(),
                workers: *workers,
                cache_capacity: *cache_capacity,
                bucket_capacity: *bucket_capacity,
                refill_per_sec: *refill_per_sec,
            };
            // Blocks until a client sends a `shutdown` request, then
            // drains and reports the front-door counters.
            match serve::Server::start(config).and_then(serve::Server::join) {
                Err(e) => (2, format!("error: {e}\n")),
                Ok(stats) => (
                    0,
                    format!(
                        "serve: drained after {} requests ({} executed, {} cache hits, \
                         {} coalesced, {} shed, {} rejected)\n",
                        stats.counters.received,
                        stats.counters.executed,
                        stats.counters.hits,
                        stats.counters.coalesced,
                        stats.counters.shed,
                        stats.counters.rejected,
                    ),
                ),
            }
        }
        Command::Info { graph, seed } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => (
                0,
                format!(
                    "nodes     : {}\nedges     : {}\ndiameter  : {}\nmax id N  : {}\n",
                    g.node_count(),
                    g.edge_count(),
                    traversal::diameter(&g)
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "disconnected".to_string()),
                    g.max_external_id(),
                ),
            ),
        },
        Command::Run {
            alg,
            graph,
            seed,
            json,
            faults,
            executor,
            shards,
            energy,
            wake_policy,
        } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => match run_with_faults(
                alg,
                &g,
                *seed,
                faults,
                RunTuning {
                    executor: *executor,
                    shards: *shards,
                    energy: *energy,
                    wake_policy: *wake_policy,
                },
            ) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(out) => {
                    let text = if *json {
                        render_json(alg, &g, *seed, faults, energy.as_ref(), &out) + "\n"
                    } else {
                        let mut text = render_text(alg, &g, &out);
                        if !faults.is_inert() {
                            text.push_str(&format!(
                                "faults           : {} dropped, {} duplicated, {} crashed\n",
                                out.stats.injected_drops,
                                out.stats.dup_deliveries,
                                out.stats.crashed_nodes,
                            ));
                        }
                        if let Some(model) = energy.filter(|m| !m.is_inert()) {
                            text.push_str(&format!(
                                "energy           : {} total, {} max/node ({})\n",
                                out.stats.energy_total(),
                                out.stats.energy_max(),
                                model.spec_string(),
                            ));
                        }
                        text
                    };
                    (0, text)
                }
            },
        },
        Command::Report {
            sizes,
            seeds,
            executor,
            json,
            out,
            md_out,
            energy,
        } => {
            let mut spec = report::ReportSpec {
                sizes: sizes.clone(),
                seeds: seeds.clone(),
                executor: *executor,
                ..report::ReportSpec::default()
            };
            if let Some(model) = energy {
                spec.energy = *model;
            }
            match report::generate(&spec) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(rep) => {
                    if let Some(path) = out {
                        if let Err(e) = std::fs::write(path, rep.to_json()) {
                            return (1, format!("error: cannot write {path}: {e}\n"));
                        }
                    }
                    if let Some(path) = md_out {
                        if let Err(e) = std::fs::write(path, rep.to_markdown()) {
                            return (1, format!("error: cannot write {path}: {e}\n"));
                        }
                    }
                    let text = if *json {
                        rep.to_json() + "\n"
                    } else {
                        rep.to_markdown()
                    };
                    (0, text)
                }
            }
        }
        Command::Chaos {
            seed,
            sizes,
            trials,
            json,
            out,
            executor,
            shards,
            energy,
        } => {
            let spec = chaos::ChaosSpec {
                seed: *seed,
                sizes: sizes.clone(),
                trials: *trials,
                executor: *executor,
                shards: *shards,
                energy: *energy,
            };
            let report = chaos::run_chaos(&spec);
            let mut text = if *json {
                report.to_json() + "\n"
            } else {
                format!(
                    "{}(cell = correct/typed-failure/wrong-output)\n",
                    report.summary_table()
                )
            };
            if let Some(path) = out {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    return (1, format!("error: cannot write {path}: {e}\n"));
                }
            }
            let wrong = report.wrong_outputs();
            if wrong.is_empty() {
                (0, text)
            } else {
                for t in wrong {
                    text.push_str(&format!(
                        "WRONG OUTPUT: {} family={} level={} n={} seed={}\n",
                        t.algorithm, t.family, t.level, t.n, t.seed
                    ));
                }
                (1, text)
            }
        }
        Command::Verify { alg, graph, seed } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => match run(alg, &g, *seed) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(out) => match verify(alg, &g, &out) {
                    Ok(()) => (0, format!("ok: {} output verified on {graph}\n", alg.name)),
                    Err(e) => (1, format!("MISMATCH: {e}\n")),
                },
            },
        },
        Command::Check { algs, graph, seed } => match build_graph(graph, *seed) {
            Err(e) => (2, format!("error: {e}\n")),
            Ok(g) => {
                let specs: Vec<&'static AlgorithmSpec> = if algs.is_empty() {
                    registry::ALGORITHMS.iter().collect()
                } else {
                    algs.clone()
                };
                let mut text = String::new();
                let mut code = 0;
                for spec in specs {
                    match spec.check(&g, *seed) {
                        Ok(check) => text.push_str(&format!(
                            "ok: {:<15} max message bits {} <= budget {} \
                             (observed C = {}, recorded C = {})\n",
                            check.algorithm,
                            check.max_message_bits,
                            check.bit_budget,
                            check.log_constant,
                            spec.congest_constant,
                        )),
                        Err(mst_core::RunError::Model(violations)) => {
                            code = 1;
                            text.push_str(&format!(
                                "FAIL: {} breaks the sleeping model on {graph}:\n",
                                spec.name
                            ));
                            for v in &violations {
                                text.push_str(&format!("  {v}\n"));
                            }
                        }
                        Err(e) => {
                            code = 1;
                            text.push_str(&format!("error: {}: {e}\n", spec.name));
                        }
                    }
                }
                (code, text)
            }
        },
        Command::Sweep {
            algs,
            template,
            sizes,
            seeds,
            threads,
            json,
            bench_out,
            executor,
            shards,
            energy,
        } => {
            let family =
                |n: usize, seed: u64| build_graph(&template.replace("{n}", &n.to_string()), seed);
            let mut sweep = bench::Sweep::new(&family)
                .sizes(sizes.iter().copied())
                .seeds(seeds.iter().copied())
                .threads(*threads);
            if let Some(executor) = executor {
                sweep = sweep.executor(*executor);
            }
            if let Some(shards) = shards {
                sweep = sweep.shards(*shards);
            }
            if let Some(model) = energy {
                sweep = sweep.energy(*model);
            }
            for &alg in algs {
                sweep = sweep.algorithm(alg);
            }
            // lint:allow(wall-clock) -- sweep timing is reporting, not simulation input
            let start = std::time::Instant::now();
            match sweep.run() {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(results) => {
                    let wall = start.elapsed();
                    if let Some(path) = bench_out {
                        let report = render_bench_report(template, *threads, &results, wall);
                        if let Err(e) = std::fs::write(path, report) {
                            return (1, format!("error: cannot write {path}: {e}\n"));
                        }
                    }
                    let text = if *json {
                        harness::render_json(&results) + "\n"
                    } else {
                        harness::render_cells(&harness::aggregate(&results))
                    };
                    (0, text)
                }
            }
        }
        Command::BenchEngine {
            sizes,
            seed,
            executors,
            wave_sizes,
            shards,
            out,
        } => {
            let spec = engine_panel::EnginePanelSpec {
                sizes: sizes.clone(),
                executors: executors.clone(),
                seed: *seed,
                wave_sizes: wave_sizes.clone(),
                shards: shards.clone(),
                ..engine_panel::EnginePanelSpec::default()
            };
            match engine_panel::run_engine_panel(&spec) {
                Err(e) => (1, format!("error: {e}\n")),
                Ok(rows) => {
                    let json = engine_panel::render_engine_panel_json(&rows) + "\n";
                    if let Some(path) = out {
                        if let Err(e) = std::fs::write(path, &json) {
                            return (1, format!("error: cannot write {path}: {e}\n"));
                        }
                    }
                    (0, json)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    /// Zeroes the one intentionally nondeterministic `run --json` field
    /// (the process-wide RSS high-water mark) before byte comparison —
    /// the same neutralization the CI scale leg applies with sed.
    fn scrub_rss(s: &str) -> String {
        let key = "\"peak_rss_bytes\":";
        let Some(at) = s.find(key) else {
            return s.to_string();
        };
        let digits_from = at + key.len();
        let digits_len = s[digits_from..]
            .bytes()
            .take_while(|b| b.is_ascii_digit())
            .count();
        format!("{}0{}", &s[..digits_from], &s[digits_from + digits_len..])
    }

    #[test]
    fn parses_run_command() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:32",
            "--seed",
            "9",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                alg: registry::find("randomized").unwrap(),
                graph: "ring:32".into(),
                seed: 9,
                json: true,
                faults: FaultPlan::default(),
                executor: None,
                shards: None,
                energy: None,
                wake_policy: WakePolicy::Block,
            }
        );
    }

    #[test]
    fn parses_energy_and_wake_policy_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:16",
            "--energy-model",
            "reference",
            "--budget",
            "500000",
            "--wake-policy",
            "duty:4",
        ]))
        .unwrap();
        let Command::Run {
            energy,
            wake_policy,
            ..
        } = cmd
        else {
            unreachable!("expected run command");
        };
        assert_eq!(energy, Some(EnergyModel::reference().with_budget(500_000)));
        assert_eq!(wake_policy, WakePolicy::DutyCycle { period: 4 });

        // A bare --budget implies the reference model.
        let cmd = parse_args(&args(&[
            "run", "--alg", "prim", "--graph", "ring:8", "--budget", "9",
        ]))
        .unwrap();
        let Command::Run { energy, .. } = cmd else {
            unreachable!("expected run command");
        };
        assert_eq!(energy, Some(EnergyModel::reference().with_budget(9)));

        // Custom comma-list models parse, and bad specs are rejected.
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "prim",
            "--graph",
            "ring:8",
            "--energy-model",
            "round:2,tx:1",
        ]))
        .unwrap();
        let Command::Run { energy, .. } = cmd else {
            unreachable!("expected run command");
        };
        assert_eq!(
            energy,
            Some(
                EnergyModel::default()
                    .with_round_cost(2)
                    .with_tx_bit_cost(1)
            )
        );
        assert!(parse_args(&args(&[
            "run",
            "--alg",
            "prim",
            "--graph",
            "ring:8",
            "--energy-model",
            "solar"
        ]))
        .unwrap_err()
        .contains("unknown energy model"));
        assert!(parse_args(&args(&[
            "run",
            "--alg",
            "prim",
            "--graph",
            "ring:8",
            "--wake-policy",
            "lazy"
        ]))
        .unwrap_err()
        .contains("unknown wake policy"));

        // The knobs ride along on sweep, chaos, and report too.
        let cmd = parse_args(&args(&[
            "sweep",
            "--alg",
            "prim",
            "--graph",
            "ring:{n}",
            "--sizes",
            "8",
            "--energy-model",
            "radio",
        ]))
        .unwrap();
        let Command::Sweep { energy, .. } = cmd else {
            unreachable!("expected sweep command");
        };
        assert_eq!(energy, Some(EnergyModel::radio_default()));
        let cmd = parse_args(&args(&["chaos", "--budget", "7", "--shards", "2"])).unwrap();
        let Command::Chaos { energy, shards, .. } = cmd else {
            unreachable!("expected chaos command");
        };
        assert_eq!(energy, Some(EnergyModel::reference().with_budget(7)));
        assert_eq!(shards, Some(2));
        let cmd = parse_args(&args(&["report", "--energy-model", "radio"])).unwrap();
        let Command::Report { energy, .. } = cmd else {
            unreachable!("expected report command");
        };
        assert_eq!(energy, Some(EnergyModel::radio_default()));
    }

    #[test]
    fn parses_shards_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "scale:64:2",
            "--shards",
            "4",
        ]))
        .unwrap();
        let Command::Run { shards, .. } = cmd else {
            unreachable!("expected run command");
        };
        assert_eq!(shards, Some(4));

        let cmd = parse_args(&args(&[
            "sweep",
            "--alg",
            "randomized",
            "--graph",
            "ring:{n}",
            "--sizes",
            "8",
            "--shards",
            "2",
        ]))
        .unwrap();
        let Command::Sweep { shards, .. } = cmd else {
            unreachable!("expected sweep command");
        };
        assert_eq!(shards, Some(2));

        // run/sweep take exactly one value; bench-engine takes a list.
        assert!(parse_args(&args(&[
            "run", "--alg", "prim", "--graph", "ring:8", "--shards", "1,2"
        ]))
        .unwrap_err()
        .contains("single --shards"));
        assert!(parse_args(&args(&[
            "run", "--alg", "prim", "--graph", "ring:8", "--shards", "0"
        ]))
        .unwrap_err()
        .contains("shard count"));

        let cmd = parse_args(&args(&[
            "bench-engine",
            "--wave-sizes",
            "256,512",
            "--shards",
            "1,2,4",
        ]))
        .unwrap();
        let Command::BenchEngine {
            wave_sizes, shards, ..
        } = cmd
        else {
            unreachable!("expected bench-engine command");
        };
        assert_eq!(wave_sizes, vec![256, 512]);
        assert_eq!(shards, vec![1, 2, 4]);
    }

    #[test]
    fn parses_executor_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:8",
            "--executor",
            "sync",
        ]))
        .unwrap();
        let Command::Run { executor, .. } = cmd else {
            unreachable!("expected run command");
        };
        assert_eq!(executor, Some(Executor::Sync));
        assert!(parse_args(&args(&[
            "run",
            "--alg",
            "prim",
            "--graph",
            "ring:8",
            "--executor",
            "warp"
        ]))
        .unwrap_err()
        .contains("unknown executor"));

        // `report --naive` stays the back-compat spelling of the oracle;
        // an explicit --executor wins over it.
        let naive = parse_args(&args(&["report", "--naive"])).unwrap();
        let explicit = parse_args(&args(&["report", "--naive", "--executor", "sync"])).unwrap();
        let (Command::Report { executor: a, .. }, Command::Report { executor: b, .. }) =
            (naive, explicit)
        else {
            unreachable!("expected report commands");
        };
        assert_eq!(a, Executor::Naive);
        assert_eq!(b, Executor::Sync);

        let cmd = parse_args(&args(&["bench-engine"])).unwrap();
        assert_eq!(
            cmd,
            Command::BenchEngine {
                sizes: vec![1 << 14],
                seed: 0,
                executors: vec![Executor::Calendar, Executor::Sync],
                wave_sizes: vec![],
                shards: vec![1],
                out: None,
            }
        );
        let cmd = parse_args(&args(&[
            "bench-engine",
            "--sizes",
            "64",
            "--seed",
            "3",
            "--executors",
            "calendar,sync,naive",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchEngine {
                sizes: vec![64],
                seed: 3,
                executors: vec![Executor::Calendar, Executor::Sync, Executor::Naive],
                wave_sizes: vec![],
                shards: vec![1],
                out: None,
            }
        );
    }

    #[test]
    fn parses_sweep_command() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--alg",
            "randomized,always-awake",
            "--graph",
            "ring:{n}",
            "--sizes",
            "8,16",
            "--seeds",
            "0..3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                algs: vec![
                    registry::find("randomized").unwrap(),
                    registry::find("always-awake").unwrap(),
                ],
                template: "ring:{n}".into(),
                sizes: vec![8, 16],
                seeds: vec![0, 1, 2],
                threads: 2,
                json: false,
                bench_out: None,
                executor: None,
                shards: None,
                energy: None,
            }
        );
        assert!(parse_args(&args(&[
            "sweep", "--alg", "prim", "--graph", "ring:8", "--sizes", "8"
        ]))
        .unwrap_err()
        .contains("{n}"));
        assert!(
            parse_args(&args(&["sweep", "--alg", "prim", "--graph", "ring:{n}"]))
                .unwrap_err()
                .contains("--sizes")
        );
    }

    #[test]
    fn parse_errors_are_helpful() {
        assert!(parse_args(&args(&["run", "--graph", "ring:8"]))
            .unwrap_err()
            .contains("--alg"));
        assert!(
            parse_args(&args(&["run", "--alg", "bogus", "--graph", "ring:8"]))
                .unwrap_err()
                .contains("unknown algorithm")
        );
        assert!(parse_args(&args(&["frobnicate", "--graph", "ring:8"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(matches!(parse_args(&args(&[])), Ok(Command::Help)));
    }

    #[test]
    fn graph_specs_build() {
        for spec in [
            "ring:12",
            "path:9",
            "star:7",
            "complete:6",
            "bintree:15",
            "grid:3x4",
            "random:14:0.2",
            "barbell:4:2",
            "caterpillar:4:2",
            "scale:64:3",
        ] {
            let g = build_graph(spec, 1).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(g.node_count() > 0, "{spec}");
        }
        assert!(build_graph("ring:2", 0).is_err());
        assert!(build_graph("mystery:3", 0).is_err());
        assert!(build_graph("grid:3", 0).is_err());
        assert!(build_graph("random:5:nope", 0).is_err());
        assert!(build_graph("scale:4:1", 0).is_err());
        assert!(build_graph("scale:9:9", 0).is_err());
    }

    #[test]
    fn run_and_verify_all_algorithms() {
        let g = build_graph("random:14:0.2", 3).unwrap();
        for alg in registry::ALGORITHMS {
            let out = run(alg, &g, 5).unwrap_or_else(|e| panic!("{}: {e}", alg.name));
            verify(alg, &g, &out).unwrap_or_else(|e| panic!("{}: {e}", alg.name));
        }
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let g = build_graph("ring:8", 1).unwrap();
        let alg = registry::find("randomized").unwrap();
        let out = run(alg, &g, 1).unwrap();
        let json = render_json(alg, &g, 1, &FaultPlan::default(), None, &out);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"awake_max\":"));
        assert!(json.contains("\"max_message_bits\":"));
        assert!(json.contains("\"seed\":1"));
        assert!(json.contains("\"injected_drops\":0"));
        assert!(json.contains("\"memory\":{\"graph_bytes\":"));
        assert!(json.contains("\"arena_peak_envelopes\":"));
        assert!(json.contains("\"peak_rss_bytes\":"));
        assert!(json.contains("\"fault_plan\":{\"fault_seed\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn check_command_passes_the_whole_registry() {
        let cmd = parse_args(&args(&["check", "--graph", "random:12:0.3", "--seed", "2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                algs: vec![],
                graph: "random:12:0.3".into(),
                seed: 2
            }
        );
        let (code, text) = execute(&cmd);
        assert_eq!(code, 0, "{text}");
        for spec in registry::ALGORITHMS {
            assert!(text.contains(spec.name), "missing {}: {text}", spec.name);
        }
        assert!(text.contains("budget"), "{text}");

        // A single named algorithm works too.
        let cmd = parse_args(&args(&["check", "--alg", "prim", "--graph", "ring:9"])).unwrap();
        let (code, text) = execute(&cmd);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.lines().count() == 1 && text.starts_with("ok: prim"),
            "{text}"
        );
    }

    #[test]
    fn parses_fault_flags_into_a_plan() {
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:16",
            "--fault-seed",
            "11",
            "--drop-ppm",
            "50000",
            "--dup-ppm",
            "1000",
            "--sleep-ppm",
            "2000",
            "--jitter",
            "3",
            "--crash",
            "4@20",
            "--crash",
            "2@9",
        ]))
        .unwrap();
        let Command::Run { faults, .. } = cmd else {
            unreachable!("expected run command");
        };
        assert_eq!(faults.fault_seed, 11);
        assert_eq!(faults.drop_ppm, 50_000);
        assert_eq!(faults.duplicate_ppm, 1_000);
        assert_eq!(faults.spurious_sleep_ppm, 2_000);
        assert_eq!(faults.wake_jitter, 3);
        assert_eq!(faults.crashes, vec![(2, 9), (4, 20)]);
        assert!(parse_args(&args(&[
            "run", "--alg", "prim", "--graph", "ring:8", "--crash", "3"
        ]))
        .unwrap_err()
        .contains("NODE@ROUND"));
        assert!(parse_args(&args(&[
            "run", "--alg", "prim", "--graph", "ring:8", "--crash", "3@0"
        ]))
        .unwrap_err()
        .contains("round"));
    }

    #[test]
    fn faulted_run_replays_bit_identically_and_reports_typed_errors() {
        // A mild plan the randomized algorithm survives is hard to pin
        // across seeds, so assert the classification contract instead:
        // the command either reports the reference answer or fails with
        // a typed error — and both outcomes replay byte-identically.
        let cmd = parse_args(&args(&[
            "run",
            "--alg",
            "randomized",
            "--graph",
            "ring:12",
            "--seed",
            "3",
            "--drop-ppm",
            "200000",
            "--fault-seed",
            "5",
            "--json",
        ]))
        .unwrap();
        let (code_a, text_a) = execute(&cmd);
        let (code_b, text_b) = execute(&cmd);
        let (text_a, text_b) = (scrub_rss(&text_a), scrub_rss(&text_b));
        assert_eq!((code_a, &text_a), (code_b, &text_b));
        if code_a == 0 {
            assert!(
                text_a.contains("\"fault_plan\":{\"fault_seed\":5"),
                "{text_a}"
            );
            assert!(text_a.contains("\"injected_drops\":"), "{text_a}");
        } else {
            assert!(text_a.starts_with("error:"), "{text_a}");
        }
    }

    #[test]
    fn chaos_command_is_deterministic_and_writes_the_matrix() {
        let path = std::env::temp_dir().join("sleeping-mst-chaos-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse_args(&args(&[
            "chaos", "--seed", "5", "--sizes", "6", "--trials", "1", "--out", &path_str,
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                seed: 5,
                sizes: vec![6],
                trials: 1,
                json: false,
                out: Some(path_str.clone()),
                executor: Executor::Calendar,
                shards: None,
                energy: None,
            }
        );
        let (code_a, text_a) = execute(&cmd);
        let matrix_a = std::fs::read_to_string(&path).unwrap();
        let (code_b, text_b) = execute(&cmd);
        let matrix_b = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(code_a, 0, "{text_a}");
        assert_eq!((code_a, &text_a), (code_b, &text_b));
        assert_eq!(matrix_a, matrix_b, "chaos matrix must be byte-stable");
        assert!(text_a.contains("| algorithm |"), "{text_a}");
        assert!(matrix_a.contains("\"matrix\":["), "{matrix_a}");
    }

    #[test]
    fn parses_report_command_with_defaults() {
        let cmd = parse_args(&args(&["report"])).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                sizes: vec![8, 12, 16, 24],
                seeds: vec![0, 1],
                executor: Executor::Calendar,
                json: false,
                out: None,
                md_out: None,
                energy: None,
            }
        );
        let cmd = parse_args(&args(&[
            "report", "--sizes", "6,8", "--seeds", "0..2", "--naive", "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                sizes: vec![6, 8],
                seeds: vec![0, 1],
                executor: Executor::Naive,
                json: true,
                out: None,
                md_out: None,
                energy: None,
            }
        );
    }

    #[test]
    fn report_command_writes_byte_identical_artifacts() {
        let json_path = std::env::temp_dir().join("sleeping-mst-report-test.json");
        let md_path = std::env::temp_dir().join("sleeping-mst-report-test.md");
        let cmd = parse_args(&args(&[
            "report",
            "--sizes",
            "6,8",
            "--seeds",
            "0",
            "--out",
            json_path.to_str().unwrap(),
            "--md-out",
            md_path.to_str().unwrap(),
        ]))
        .unwrap();
        let (code_a, text_a) = execute(&cmd);
        let json_a = std::fs::read_to_string(&json_path).unwrap();
        let md_a = std::fs::read_to_string(&md_path).unwrap();
        let (code_b, text_b) = execute(&cmd);
        let json_b = std::fs::read_to_string(&json_path).unwrap();
        let md_b = std::fs::read_to_string(&md_path).unwrap();
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&md_path).ok();
        assert_eq!(code_a, 0, "{text_a}");
        assert_eq!((code_a, &text_a), (code_b, &text_b));
        assert_eq!(json_a, json_b, "report JSON must be byte-stable");
        assert_eq!(md_a, md_b, "report markdown must be byte-stable");
        assert!(text_a.starts_with("# Table 1, measured"), "{text_a}");
        assert!(json_a.starts_with("{\"report\":\"table1-measured\""));
        for spec in registry::ALGORITHMS {
            assert!(md_a.contains(spec.name), "missing {}: {md_a}", spec.name);
        }
    }

    #[test]
    fn usage_lists_every_registry_algorithm() {
        let text = usage();
        for spec in registry::ALGORITHMS {
            assert!(text.contains(spec.name), "usage is missing {}", spec.name);
        }
    }

    #[test]
    fn execute_paths() {
        let (code, text) = execute(&Command::Help);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));

        let (code, text) = execute(&Command::Info {
            graph: "ring:16".into(),
            seed: 0,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("diameter"));

        let (code, _) = execute(&Command::Info {
            graph: "nope".into(),
            seed: 0,
        });
        assert_eq!(code, 2);

        let (code, text) = execute(&Command::Verify {
            alg: registry::find("randomized").unwrap(),
            graph: "ring:16".into(),
            seed: 3,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.starts_with("ok:"));
    }

    #[test]
    fn execute_sweep_text_and_json() {
        let cmd = Command::Sweep {
            algs: vec![registry::find("randomized").unwrap()],
            template: "ring:{n}".into(),
            sizes: vec![8, 12],
            seeds: vec![0, 1],
            threads: 2,
            json: false,
            bench_out: None,
            executor: None,
            shards: None,
            energy: None,
        };
        let (code, text) = execute(&cmd);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("| randomized | 8 | 2 |"), "{text}");

        let cmd_json = Command::Sweep {
            algs: vec![registry::find("randomized").unwrap()],
            template: "ring:{n}".into(),
            sizes: vec![8],
            seeds: vec![0],
            threads: 1,
            json: true,
            bench_out: None,
            executor: None,
            shards: None,
            energy: None,
        };
        let (code, text) = execute(&cmd_json);
        assert_eq!(code, 0, "{text}");
        assert!(text.trim_end().starts_with('[') && text.trim_end().ends_with(']'));
    }

    #[test]
    fn sweep_bench_out_writes_throughput_report() {
        let path = std::env::temp_dir().join("sleeping-mst-bench-out-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse_args(&args(&[
            "sweep",
            "--alg",
            "randomized",
            "--graph",
            "ring:{n}",
            "--sizes",
            "8,12",
            "--seeds",
            "0..2",
            "--threads",
            "1",
            "--bench-out",
            &path_str,
        ]))
        .unwrap();
        let (code, text) = execute(&cmd);
        assert_eq!(code, 0, "{text}");
        let report = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            report.contains("\"kind\":\"engine_throughput\""),
            "{report}"
        );
        assert!(report.contains("\"trials\":4"), "{report}");
        for key in [
            "\"wall_seconds\":",
            "\"runs_per_sec\":",
            "\"messages_per_sec\":",
            "\"rounds_per_sec\":",
            "\"messages_delivered\":",
            "\"max_message_bits\":",
            "\"log_constant\":",
        ] {
            assert!(report.contains(key), "missing {key} in {report}");
        }
    }

    #[test]
    fn bench_report_aggregates_deterministic_totals() {
        let family = |n: usize, seed: u64| build_graph(&format!("ring:{n}"), seed);
        let results = bench::Sweep::new(&family)
            .algorithm(registry::find("randomized").unwrap())
            .sizes([8])
            .seeds([0, 1])
            .threads(1)
            .run()
            .unwrap();
        let report =
            render_bench_report("ring:{n}", 1, &results, std::time::Duration::from_secs(2));
        let messages: u64 = results.iter().map(|r| r.stats.messages_delivered).sum();
        assert!(report.contains(&format!("\"messages_delivered\":{messages}")));
        assert!(report.contains(&format!(
            "\"messages_per_sec\":{:.1}",
            messages as f64 / 2.0
        )));
        assert!(report.contains("\"algorithms\":\"randomized\""));
        assert!(report.ends_with("}\n"));
    }

    #[test]
    fn run_json_is_bit_identical_across_executors() {
        let render = |executor: &str| {
            let (code, text) = execute(
                &parse_args(&args(&[
                    "run",
                    "--alg",
                    "randomized",
                    "--graph",
                    "random:14:0.2",
                    "--seed",
                    "6",
                    "--executor",
                    executor,
                    "--json",
                ]))
                .unwrap(),
            );
            assert_eq!(code, 0, "{executor}: {text}");
            scrub_rss(&text)
        };
        let calendar = render("calendar");
        assert_eq!(calendar, render("sync"));
        assert_eq!(calendar, render("naive"));
    }

    #[test]
    fn run_json_is_bit_identical_across_shard_counts() {
        // The chorded cycle at n = 512 keeps every node in lockstep, so
        // wide rounds actually cross the sharding gate; the JSON (minus
        // the process-RSS field) must match the serial baseline exactly.
        let render = |shards: &str| {
            let (code, text) = execute(
                &parse_args(&args(&[
                    "run",
                    "--alg",
                    "randomized",
                    "--graph",
                    "scale:512:2",
                    "--seed",
                    "4",
                    "--shards",
                    shards,
                    "--json",
                ]))
                .unwrap(),
            );
            assert_eq!(code, 0, "shards={shards}: {text}");
            text
        };
        let serial = scrub_rss(&render("1"));
        assert_eq!(serial, scrub_rss(&render("2")));
        assert_eq!(serial, scrub_rss(&render("4")));
        assert!(serial.contains("\"memory\":{\"graph_bytes\":"), "{serial}");
        assert!(serial.contains("\"arena_peak_envelopes\":"), "{serial}");
        assert!(serial.contains("\"peak_rss_bytes\":0"), "{serial}");
    }

    #[test]
    fn energy_run_json_is_bit_identical_across_executors_and_typed_on_exhaustion() {
        let render = |executor: &str| {
            let (code, text) = execute(
                &parse_args(&args(&[
                    "run",
                    "--alg",
                    "randomized",
                    "--graph",
                    "random:14:0.2",
                    "--seed",
                    "6",
                    "--energy-model",
                    "reference",
                    "--executor",
                    executor,
                    "--json",
                ]))
                .unwrap(),
            );
            assert_eq!(code, 0, "{executor}: {text}");
            scrub_rss(&text)
        };
        let calendar = render("calendar");
        assert!(
            calendar.contains("\"energy\":{\"model\":\"round:1000,tx:8,rx:4,idle:50\",\"total\":"),
            "{calendar}"
        );
        assert_eq!(calendar, render("sync"));
        assert_eq!(calendar, render("naive"));

        // A starvation budget fails with the typed exhaustion error
        // instead of passing off a partial forest.
        let (code, text) = execute(
            &parse_args(&args(&[
                "run",
                "--alg",
                "randomized",
                "--graph",
                "ring:12",
                "--budget",
                "1500",
            ]))
            .unwrap(),
        );
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("exhausted its energy budget"), "{text}");
    }

    #[test]
    fn bench_engine_writes_per_driver_rows() {
        let path = std::env::temp_dir().join("sleeping-mst-bench-engine-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse_args(&args(&[
            "bench-engine",
            "--sizes",
            "32",
            "--seed",
            "2",
            "--executors",
            "calendar,sync,naive",
            "--out",
            &path_str,
        ]))
        .unwrap();
        let (code, text) = execute(&cmd);
        let written = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(code, 0, "{text}");
        assert_eq!(text, written);
        for key in [
            "\"executor\":\"calendar\"",
            "\"executor\":\"sync\"",
            "\"executor\":\"naive\"",
            "\"rounds\":",
            "\"messages\":",
            "\"wall_seconds\":",
            "\"rounds_per_sec\":",
            "\"messages_per_sec\":",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn disconnected_prim_run_maps_to_nonzero_exit() {
        // barbell is connected; craft a template the builder accepts but
        // prim rejects is not possible via specs (all specs are connected),
        // so exercise the error path through the library call instead.
        let g = graphlib::GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(2, 3, 2)
            .build()
            .unwrap();
        let err = run(registry::find("prim").unwrap(), &g, 0).unwrap_err();
        assert!(err.contains("connected"), "{err}");
    }
}
