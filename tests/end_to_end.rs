//! Cross-crate integration tests: both sleeping algorithms and the
//! always-awake baseline against the sequential references, on the full
//! zoo of graph families.

use sleeping_mst::graphlib::{generators, mst, GraphBuilder, UnionFind, WeightedGraph};
use sleeping_mst::mst_core::{
    run_always_awake, run_deterministic, run_logstar, run_prim, run_randomized, run_spanning_tree,
};
use sleeping_mst::netsim::{SimConfig, Simulator};

fn zoo() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        ("ring16", generators::ring(16, 1).unwrap()),
        ("ring33", generators::ring(33, 2).unwrap()),
        ("path20", generators::path(20, 3).unwrap()),
        ("star12", generators::star(12, 4).unwrap()),
        ("grid4x5", generators::grid(4, 5, 5).unwrap()),
        ("complete9", generators::complete(9, 6).unwrap()),
        (
            "sparse24",
            generators::random_connected(24, 0.1, 7).unwrap(),
        ),
        ("dense16", generators::random_connected(16, 0.6, 8).unwrap()),
        ("tree30", generators::random_connected(30, 0.0, 9).unwrap()),
        (
            "two_nodes",
            GraphBuilder::new(2).edge(0, 1, 42).build().unwrap(),
        ),
        ("bintree15", generators::binary_tree(15, 10).unwrap()),
        ("caterpillar", generators::caterpillar(6, 2, 11).unwrap()),
        ("barbell", generators::barbell(5, 3, 12).unwrap()),
    ]
}

#[test]
fn randomized_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo() {
        let out = run_randomized(&g, 0xfeed).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges, mst::kruskal(&g).edges, "{name}");
    }
}

#[test]
fn deterministic_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo() {
        let out = run_deterministic(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges, mst::kruskal(&g).edges, "{name}");
    }
}

#[test]
fn always_awake_baseline_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo() {
        let out = run_always_awake(&g, 0xbeef).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges, mst::kruskal(&g).edges, "{name}");
    }
}

#[test]
fn logstar_variant_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo() {
        let out = run_logstar(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges, mst::kruskal(&g).edges, "{name}");
    }
}

#[test]
fn prim_baseline_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo() {
        let out = run_prim(&g, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges, mst::kruskal(&g).edges, "{name}");
    }
}

#[test]
fn spanning_tree_variant_spans_the_zoo() {
    for (name, g) in zoo() {
        let out = run_spanning_tree(&g, 0xcafe).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.edges.len(), g.node_count() - 1, "{name}");
        let mut uf = UnionFind::new(g.node_count());
        for &e in &out.edges {
            let edge = g.edge(e);
            assert!(uf.union(edge.u.index(), edge.v.index()), "{name}: cycle");
        }
        assert_eq!(uf.set_count(), 1, "{name}: not spanning");
    }
}

#[test]
fn sleeping_runs_never_lose_messages() {
    // The transmission schedule's whole point: every message is sent in a
    // round where its receiver is awake.
    for (name, g) in zoo() {
        let out = run_randomized(&g, 5).unwrap();
        assert_eq!(out.stats.messages_lost, 0, "{name} (randomized)");
        let out = run_deterministic(&g).unwrap();
        assert_eq!(out.stats.messages_lost, 0, "{name} (deterministic)");
    }
}

#[test]
fn congest_limit_holds_for_both_algorithms() {
    // O(log n) messages: a 128-bit envelope is a generous constant · log n
    // for these sizes; the run errors out if any message exceeds it.
    let g = generators::random_connected(40, 0.15, 11).unwrap();
    Simulator::new(&g, SimConfig::default().with_bit_limit(128))
        .run(sleeping_mst::mst_core::randomized::RandomizedMst::new)
        .expect("randomized exceeded CONGEST budget");
    Simulator::new(&g, SimConfig::default().with_bit_limit(128))
        .run(sleeping_mst::mst_core::deterministic::DeterministicMst::new)
        .expect("deterministic exceeded CONGEST budget");
}

#[test]
fn awake_complexity_shrinks_while_rounds_grow() {
    // The core trade-off: on a 64-node ring the randomized algorithm is
    // awake o(rounds) — verify a crude 5% ceiling.
    let g = generators::ring(64, 13).unwrap();
    let out = run_randomized(&g, 2).unwrap();
    assert!(
        out.stats.rounds > 1000,
        "rounds {} suspiciously small",
        out.stats.rounds
    );
    assert!(
        (out.stats.awake_max() as f64) < 0.05 * out.stats.rounds as f64,
        "awake {} vs rounds {}",
        out.stats.awake_max(),
        out.stats.rounds
    );
}

#[test]
fn deterministic_round_complexity_scales_with_id_bound() {
    // Same 12-node ring, ids in [1,12] vs sparse ids in [1,256]: the
    // N-stage coloring must stretch the run time roughly with N.
    let compact = generators::ring(12, 3).unwrap();
    let sparse = generators::with_id_space(generators::ring(12, 3).unwrap(), 256, 1).unwrap();
    let out_compact = run_deterministic(&compact).unwrap();
    let out_sparse = run_deterministic(&sparse).unwrap();
    assert!(
        out_sparse.stats.rounds > 4 * out_compact.stats.rounds,
        "sparse ids {} rounds vs compact {} rounds",
        out_sparse.stats.rounds,
        out_compact.stats.rounds
    );
    // Awake complexity must NOT scale with N.
    assert!(
        out_sparse.stats.awake_max() < 4 * out_compact.stats.awake_max().max(1),
        "awake blew up with id bound: {} vs {}",
        out_sparse.stats.awake_max(),
        out_compact.stats.awake_max()
    );
    assert_eq!(out_sparse.edges, mst::kruskal(&sparse).edges);
}

#[test]
fn randomized_seeds_change_schedules_not_results() {
    let g = generators::random_connected(22, 0.2, 17).unwrap();
    let reference = mst::kruskal(&g).edges;
    let mut distinct_rounds = std::collections::HashSet::new();
    for seed in 0..5 {
        let out = run_randomized(&g, seed).unwrap();
        assert_eq!(out.edges, reference, "seed {seed}");
        distinct_rounds.insert(out.stats.rounds);
    }
    assert!(
        distinct_rounds.len() > 1,
        "coin flips never changed the phase count"
    );
}
