//! Lemma 1 / Lemma 5, measured: the fragment count decays geometrically
//! across phases for both algorithms.
//!
//! Lemma 1 proves `E[F_{i+1}] ≤ (3/4)·F_i` for the randomized algorithm
//! (a fragment survives only if it isn't a tails fragment with a valid
//! MOE into a heads fragment). The deterministic analysis guarantees a
//! (much weaker) constant factor. Here we replay runs, snapshot the
//! forest at each phase boundary, and check the measured decay.

use std::collections::BTreeSet;

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::deterministic::DeterministicMst;
use sleeping_mst::mst_core::randomized::{RandomizedMst, BLOCKS_PER_PHASE};
use sleeping_mst::mst_core::timeline::Timeline;
use sleeping_mst::netsim::{SimConfig, Simulator};

/// Runs the randomized algorithm and returns the fragment count at the
/// start of each phase.
fn randomized_fragment_counts(n: usize, graph_seed: u64, run_seed: u64) -> Vec<usize> {
    let g = generators::random_connected(n, 0.1, graph_seed).unwrap();
    let phase_len = Timeline::new(n, BLOCKS_PER_PHASE).phase_len();
    let mut counts: Vec<usize> = Vec::new();
    let mut last_phase = u64::MAX;
    Simulator::new(&g, SimConfig::default().with_seed(run_seed))
        .run_with_observer(RandomizedMst::new, |round, states: &[RandomizedMst]| {
            let phase = (round - 1) / phase_len;
            if phase != last_phase {
                last_phase = phase;
                let frags: BTreeSet<u64> = states.iter().map(|s| s.ldt_view().fragment).collect();
                counts.push(frags.len());
            }
        })
        .unwrap();
    counts
}

#[test]
fn randomized_fragments_decay_geometrically_on_average() {
    // Average the per-phase survival ratio across seeds; Lemma 1 puts the
    // expectation at ≤ 3/4, so the measured mean should comfortably beat
    // a lenient 0.9.
    let mut ratios = Vec::new();
    for seed in 0..6 {
        let counts = randomized_fragment_counts(40, 11, seed);
        assert_eq!(counts[0], 40, "phase 0 starts with singleton fragments");
        assert_eq!(*counts.last().unwrap(), 1, "ends with one fragment");
        for w in counts.windows(2) {
            if w[0] > 1 {
                ratios.push(w[1] as f64 / w[0] as f64);
            }
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean < 0.9,
        "mean survival ratio {mean:.3} too weak for Lemma 1's 3/4 expectation"
    );
    // Fragment counts never increase.
    assert!(ratios.iter().all(|&r| r <= 1.0));
}

#[test]
fn randomized_phase_count_is_logarithmic() {
    // Lemma 1 ⇒ O(log n) phases w.h.p.; the constant 4·log_{4/3} n of the
    // paper is ≈ 9.6·log2 n, so 10·log2(n) is a safe ceiling at these sizes.
    for &n in &[24usize, 48, 96] {
        let counts = randomized_fragment_counts(n, 5, 7);
        let phases = counts.len();
        let bound = (10.0 * (n as f64).log2()).ceil() as usize;
        assert!(phases <= bound, "{phases} phases at n={n} exceeds {bound}");
    }
}

#[test]
fn deterministic_fragments_strictly_decrease_every_phase() {
    // The deterministic guarantee: at least every blue fragment merges, so
    // the count strictly decreases while more than one fragment remains.
    let n = 24;
    let g = generators::random_connected(n, 0.15, 9).unwrap();
    let big_n = g.max_external_id();
    let phase_len = Timeline::new(n, 9 + 3 * big_n + 6).phase_len();
    let mut counts: Vec<usize> = Vec::new();
    let mut last_phase = u64::MAX;
    Simulator::new(&g, SimConfig::default())
        .run_with_observer(
            DeterministicMst::new,
            |round, states: &[DeterministicMst]| {
                let phase = (round - 1) / phase_len;
                if phase != last_phase {
                    last_phase = phase;
                    let frags: BTreeSet<u64> =
                        states.iter().map(|s| s.ldt_view().fragment).collect();
                    counts.push(frags.len());
                }
            },
        )
        .unwrap();
    assert_eq!(counts[0], n);
    assert_eq!(*counts.last().unwrap(), 1);
    for w in counts.windows(2) {
        assert!(
            w[1] < w[0] || w[0] == 1,
            "no progress: {} -> {} fragments",
            w[0],
            w[1]
        );
    }
}
