//! Service-level battery for the `serve` daemon: the cache/coalesce
//! plane must be byte-invisible (every response fragment identical to a
//! cold direct execution), the admission controller must shed with a
//! typed error, the front-door counters must reconcile exactly, and the
//! loadgen artifact must be byte-deterministic modulo its wall-clock
//! group.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use proptest::collection::vec;
use proptest::prelude::*;

use bench::serve::admission::TokenBucket;
use bench::serve::protocol::{codes, render_error_body, render_run_result};
use bench::serve::{ServeConfig, Server};
use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::wire::{CanonicalRun, RunRequest};
use sleeping_mst::mst_core::MstScratch;
use sleeping_mst::netsim::FaultPlan;

fn test_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mst-serve-{}-{name}.sock", std::process::id()))
}

struct Client {
    writer: BufWriter<UnixStream>,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = UnixStream::connect(server.socket()).expect("connect");
        let write_half = stream.try_clone().expect("clone");
        Client {
            writer: BufWriter::new(write_half),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end().to_string()
    }

    fn request(&mut self, line: &str) -> Response {
        self.send(line);
        Response::parse(&self.recv())
    }
}

/// A textually-dissected response envelope. The fragment is the exact
/// byte range of the `result`/`error` value — no JSON round trip, so
/// byte comparisons against cold renders are honest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Response {
    id: u64,
    ok: bool,
    source: String,
    fragment: String,
}

impl Response {
    fn parse(line: &str) -> Response {
        let grab = |prefix: &str| -> Option<&str> {
            let start = line.find(prefix)? + prefix.len();
            Some(&line[start..])
        };
        let id = grab("{\"id\":")
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("envelope id");
        let ok = line.contains(",\"ok\":true,");
        let source = grab(",\"source\":\"")
            .and_then(|rest| rest.split('"').next())
            .expect("envelope source")
            .to_string();
        let key = if ok { ",\"result\":" } else { ",\"error\":" };
        let fragment = grab(key).expect("envelope body");
        let fragment = fragment[..fragment.len() - 1].to_string(); // strip envelope '}'
        Response {
            id,
            ok,
            source,
            fragment,
        }
    }
}

/// Server counters pulled from a `stats` response fragment.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Stats {
    received: u64,
    shed: u64,
    hits: u64,
    coalesced: u64,
    misses: u64,
    executed: u64,
    rejected: u64,
}

fn stats(client: &mut Client) -> Stats {
    let resp = client.request("{\"id\":999,\"cmd\":\"stats\"}");
    assert!(resp.ok && resp.source == "control", "{resp:?}");
    let field = |name: &str| -> u64 {
        let prefix = format!("\"{name}\":");
        let start = resp.fragment.find(&prefix).expect("stat field") + prefix.len();
        resp.fragment[start..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    Stats {
        received: field("received"),
        shed: field("shed"),
        hits: field("hits"),
        coalesced: field("coalesced"),
        misses: field("misses"),
        executed: field("executed"),
        rejected: field("rejected"),
    }
}

fn reconcile(s: &Stats) {
    assert_eq!(
        s.received,
        s.shed + s.hits + s.coalesced + s.misses,
        "front-door counters must partition received: {s:?}"
    );
    assert_eq!(
        s.executed, s.misses,
        "every miss executes exactly once: {s:?}"
    );
}

/// The cold path a daemon response must be byte-identical to: build the
/// graph, run with the canonical options, render — exactly what a
/// worker does, computed here without any serve machinery.
fn cold_run(run: &CanonicalRun, scratch: &mut MstScratch) -> (bool, String) {
    match generators::from_spec(&run.graph, run.seed) {
        Err(e) => (false, render_error_body(codes::BAD_GRAPH, &e)),
        Ok(graph) => match run
            .alg
            .run_with_options(&graph, &run.exec_options(), scratch)
        {
            Ok(out) => (
                true,
                render_run_result(
                    run.alg,
                    &graph,
                    run.seed,
                    run.faults.as_ref(),
                    run.energy.as_ref(),
                    &out,
                ),
            ),
            Err(e) => (false, render_error_body(e.to_json_code(), &e.to_string())),
        },
    }
}

const ALGS: &[&str] = &["randomized", "deterministic", "always-awake"];
const GRAPHS: &[&str] = &["ring:10", "grid:3x3", "star:9", "ring:0"];
const EXECUTORS: &[&str] = &["calendar", "sync", "naive"];

/// One pool entry of the proptest traffic: indices into the tables
/// above plus a seed and a fault toggle.
fn request_line(id: u64, (a, g, seed, faulty, e): (usize, usize, u64, bool, usize)) -> String {
    let faults = if faulty {
        ",\"faults\":{\"fault_seed\":1,\"drop_ppm\":5000}"
    } else {
        ""
    };
    format!(
        "{{\"id\":{id},\"cmd\":\"run\",\"alg\":\"{}\",\"graph\":\"{}\",\"seed\":{seed},\
         \"executor\":\"{}\"{faults}}}",
        ALGS[a], GRAPHS[g], EXECUTORS[e]
    )
}

fn canonical((a, g, seed, faulty, _): (usize, usize, u64, bool, usize)) -> CanonicalRun {
    RunRequest {
        alg: ALGS[a].into(),
        graph: GRAPHS[g].into(),
        seed,
        executor: None,
        shards: None,
        faults: if faulty {
            FaultPlan::seeded(1).with_drop_ppm(5000)
        } else {
            FaultPlan::default()
        },
        energy: None,
    }
    .canonicalize()
    .expect("pool algorithms are registered")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: cache correctness under random request sequences. The
    /// sequence runs twice back to back, so the replay half is served
    /// almost entirely from cache — and every response fragment (hit,
    /// miss, success, or deterministic error) must be byte-identical to
    /// a cold direct execution. Counters must reconcile exactly.
    #[test]
    fn cached_responses_are_byte_identical_to_cold_runs(
        sequence in vec((0usize..3, 0usize..4, 0u64..2, any::<bool>(), 0usize..3), 4..10),
    ) {
        let server = Server::start(ServeConfig::new(test_socket("proptest"))).unwrap();
        let mut client = Client::connect(&server);
        let mut scratch = MstScratch::new();

        let trace: Vec<_> = sequence.iter().chain(sequence.iter()).collect();
        for (j, &&entry) in trace.iter().enumerate() {
            let resp = client.request(&request_line(j as u64 + 1, entry));
            prop_assert_eq!(resp.id, j as u64 + 1);
            let run = canonical(entry);
            let (cold_ok, cold_fragment) = cold_run(&run, &mut scratch);
            prop_assert_eq!(resp.ok, cold_ok, "{:?}", entry);
            prop_assert_eq!(&resp.fragment, &cold_fragment, "{:?}", entry);
            // The replay half must come out of the cache.
            if j >= sequence.len() {
                prop_assert_eq!(&resp.source, "cache", "{:?}", entry);
            }
        }

        let distinct: BTreeSet<String> = sequence
            .iter()
            .map(|&entry| canonical(entry).cache_key())
            .collect();
        let s = stats(&mut client);
        reconcile(&s);
        prop_assert_eq!(s.received, trace.len() as u64);
        prop_assert_eq!(s.misses, distinct.len() as u64);
        prop_assert_eq!(s.hits, trace.len() as u64 - distinct.len() as u64);
        prop_assert_eq!(s.coalesced, 0, "closed loop never coalesces");
        prop_assert_eq!(s.shed + s.rejected, 0);

        server.begin_shutdown();
        let final_stats = server.join().unwrap();
        prop_assert_eq!(final_stats.counters.executed, distinct.len() as u64);
    }

    /// Satellite: the token bucket never admits more than capacity plus
    /// accrued refill, and a trace's admit/shed pattern replays exactly.
    #[test]
    fn bucket_admission_is_bounded_and_replayable(
        capacity in 0u64..10,
        refill in 0u64..5,
        arrivals in vec(0u64..2_000_000_000, 1..200),
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let pattern = |mut b: TokenBucket| -> Vec<bool> {
            arrivals.iter().map(|&t| b.try_admit(t)).collect()
        };
        let admitted = pattern(TokenBucket::new(capacity, refill));
        let count = admitted.iter().filter(|&&a| a).count() as u64;
        // Tokens that ever existed over the horizon: the initial burst
        // plus refill accrued through the last arrival (+1 for floors).
        let horizon = *arrivals.last().unwrap() as u128;
        let bound = capacity + (u128::from(refill) * horizon / 1_000_000_000) as u64 + 1;
        prop_assert!(count <= bound, "admitted {count} > bound {bound}");
        prop_assert_eq!(admitted, pattern(TokenBucket::new(capacity, refill)));
    }
}

/// Identical requests fired back to back coalesce onto one execution:
/// with the cache disabled, one worker runs the job and everyone gets
/// the same bytes.
#[test]
fn identical_in_flight_requests_coalesce_onto_one_execution() {
    let mut config = ServeConfig::new(test_socket("coalesce"));
    config.cache_capacity = 0; // only coalescing can dedupe
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(&server);

    // A deliberately heavy request so the burst lands while it runs.
    let line = |id: u64| {
        format!("{{\"id\":{id},\"cmd\":\"run\",\"alg\":\"randomized\",\"graph\":\"ring:128\",\"seed\":3}}")
    };
    for id in 1..=8 {
        client.send(&line(id));
    }
    let responses: Vec<Response> = (0..8).map(|_| Response::parse(&client.recv())).collect();

    let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=8).collect::<Vec<u64>>());
    for r in &responses {
        assert!(r.ok, "{r:?}");
        assert_eq!(
            &r.fragment, &responses[0].fragment,
            "coalesced bytes differ"
        );
    }
    let execs = responses.iter().filter(|r| r.source == "exec").count();
    let coalesced = responses.iter().filter(|r| r.source == "coalesced").count();
    assert_eq!((execs, coalesced), (1, 7), "{responses:?}");

    let s = stats(&mut client);
    reconcile(&s);
    assert_eq!((s.misses, s.coalesced, s.hits), (1, 7, 0));

    server.begin_shutdown();
    assert_eq!(server.join().unwrap().counters.executed, 1);
}

/// Over-budget requests shed immediately with the typed
/// `serve.over-capacity` error — they never queue.
#[test]
fn bucket_sheds_over_budget_requests_with_typed_error() {
    let mut config = ServeConfig::new(test_socket("shed"));
    config.bucket_capacity = 2;
    config.refill_per_sec = 0;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(&server);

    let mut shed = Vec::new();
    for id in 1..=5u64 {
        let resp = client.request(&format!(
            "{{\"id\":{id},\"cmd\":\"run\",\"alg\":\"prim\",\"graph\":\"ring:10\",\"seed\":{id}}}"
        ));
        if !resp.ok {
            shed.push(resp);
        }
    }
    assert_eq!(shed.len(), 3, "capacity 2, refill 0: exactly 3 of 5 shed");
    for r in &shed {
        assert_eq!(&r.source, "admission", "{r:?}");
        assert!(
            r.fragment.contains("\"code\":\"serve.over-capacity\""),
            "{r:?}"
        );
    }

    let s = stats(&mut client);
    reconcile(&s);
    assert_eq!((s.received, s.shed, s.misses, s.executed), (5, 3, 2, 2));

    server.begin_shutdown();
    server.join().unwrap();
}

/// Deterministic failures are cached like successes: the second bad
/// request is a cache hit carrying the identical typed error bytes.
#[test]
fn deterministic_errors_are_cached() {
    let server = Server::start(ServeConfig::new(test_socket("errcache"))).unwrap();
    let mut client = Client::connect(&server);

    let line = "{\"id\":1,\"cmd\":\"run\",\"alg\":\"prim\",\"graph\":\"ring:0\",\"seed\":0}";
    let first = client.request(line);
    assert!(!first.ok && first.source == "exec", "{first:?}");
    assert!(
        first.fragment.contains("\"code\":\"request.bad-graph\""),
        "{first:?}"
    );

    let second = client.request(line);
    assert!(!second.ok && second.source == "cache", "{second:?}");
    assert_eq!(second.fragment, first.fragment, "cached error bytes differ");

    let s = stats(&mut client);
    assert_eq!((s.hits, s.misses, s.executed), (1, 1, 1));

    server.begin_shutdown();
    server.join().unwrap();
}

/// Malformed lines get a typed reject without disturbing the
/// cacheable-request counters.
#[test]
fn malformed_requests_are_rejected_with_typed_errors() {
    let server = Server::start(ServeConfig::new(test_socket("reject"))).unwrap();
    let mut client = Client::connect(&server);

    for (line, code) in [
        ("this is not json", codes::PARSE),
        ("{\"id\":7,\"cmd\":\"warp\"}", codes::PARSE),
        ("{\"id\":8,\"cmd\":\"run\",\"alg\":\"bogus\",\"graph\":\"ring:8\"}", codes::BAD_ALGORITHM),
        ("{\"id\":9,\"cmd\":\"sweep\",\"template\":\"ring:64\"}", codes::BAD_TEMPLATE),
        (
            "{\"id\":10,\"cmd\":\"run\",\"alg\":\"prim\",\"graph\":\"ring:8\",\"executor\":\"warp\"}",
            codes::BAD_EXECUTOR,
        ),
    ] {
        let resp = client.request(line);
        assert!(!resp.ok, "{resp:?}");
        assert_eq!(&resp.source, "reject", "{resp:?}");
        assert!(
            resp.fragment.contains(&format!("\"code\":\"{code}\"")),
            "{resp:?} expected {code}"
        );
    }

    let s = stats(&mut client);
    assert_eq!((s.received, s.rejected), (0, 5));

    server.begin_shutdown();
    server.join().unwrap();
}

/// Batch request kinds (sweep/report/chaos) execute and cache like runs.
#[test]
fn batch_requests_are_served_and_cached() {
    let server = Server::start(ServeConfig::new(test_socket("batch"))).unwrap();
    let mut client = Client::connect(&server);

    let line = "{\"id\":1,\"cmd\":\"sweep\",\"algs\":\"prim\",\"template\":\"ring:{n}\",\
                \"sizes\":[8,12],\"seeds\":[0]}";
    let first = client.request(line);
    assert!(first.ok && first.source == "exec", "{first:?}");
    assert!(
        first.fragment.contains("\"algorithm\":\"prim\""),
        "{first:?}"
    );
    let second = client.request(line);
    assert!(second.ok && second.source == "cache", "{second:?}");
    assert_eq!(second.fragment, first.fragment);

    let chaos =
        client.request("{\"id\":3,\"cmd\":\"chaos\",\"seed\":1,\"sizes\":[8],\"trials\":1}");
    assert!(
        chaos.ok && chaos.fragment.contains("\"matrix\""),
        "truncated: {}",
        &chaos.fragment[..chaos.fragment.len().min(120)]
    );

    server.begin_shutdown();
    let final_stats = server.join().unwrap();
    assert_eq!(final_stats.counters.executed, 2);
}

// ---------------------------------------------------------------------------
// Loadgen determinism (satellite): the artifact is byte-identical across
// two cold daemon boots once the wall-clock group is neutralized.
// ---------------------------------------------------------------------------

fn neutralize_wall(artifact: &str) -> String {
    let start = artifact
        .find("\"wall\":{")
        .expect("artifact has a wall group");
    let end = start + artifact[start..].find('}').expect("wall group closes");
    format!(
        "{}\"wall\":{{}}{}",
        &artifact[..start],
        &artifact[end + 1..]
    )
}

fn loadgen_once(tag: &str) -> String {
    let socket = test_socket(&format!("loadgen-{tag}"));
    let out =
        std::env::temp_dir().join(format!("mst-bench-serve-{}-{tag}.json", std::process::id()));
    let mut daemon = std::process::Command::new(env!("CARGO_BIN_EXE_sleeping-mst"))
        .args(["serve", "--socket"])
        .arg(&socket)
        .args(["--workers", "3"])
        .spawn()
        .expect("spawn daemon");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .arg("--socket")
        .arg(&socket)
        .args([
            "--seed",
            "1",
            "--requests",
            "200",
            "--distinct",
            "12",
            "--shutdown",
        ])
        .arg("--out")
        .arg(&out)
        .status()
        .expect("run loadgen");
    assert!(status.success(), "loadgen failed");
    assert!(
        daemon.wait().expect("daemon exit").success(),
        "daemon failed"
    );
    let artifact = std::fs::read_to_string(&out).expect("read artifact");
    let _ = std::fs::remove_file(&out);
    artifact
}

#[test]
fn loadgen_artifact_is_deterministic_modulo_wall_clock() {
    let first = loadgen_once("a");
    let second = loadgen_once("b");
    assert_eq!(
        neutralize_wall(&first),
        neutralize_wall(&second),
        "loadgen artifacts diverge beyond the wall group"
    );
    // The repeat-heavy seeded trace must stay overwhelmingly cached.
    assert!(first.contains("\"hit_rate\":0.9400"), "{first}");
    assert!(
        first.contains("\"responses\":{\"ok\":200,\"err\":0}"),
        "{first}"
    );
    assert!(
        first.contains("\"sources\":{\"exec\":12,\"cache\":188,"),
        "{first}"
    );
}
