//! Property-based integration tests: the distributed algorithms agree
//! with the sequential references on arbitrary random inputs.

use proptest::prelude::*;

use sleeping_mst::graphlib::{generators, mst};
use sleeping_mst::mst_core::{run_deterministic, run_randomized};

proptest! {
    // Each case simulates a full distributed run; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_equals_kruskal(n in 2usize..28, p in 0.0f64..0.4, seed in 0u64..500, run_seed in 0u64..1000) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let out = run_randomized(&g, run_seed).unwrap();
        prop_assert_eq!(out.edges, mst::kruskal(&g).edges);
    }

    #[test]
    fn deterministic_equals_kruskal(n in 2usize..18, p in 0.0f64..0.4, seed in 0u64..500) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let out = run_deterministic(&g).unwrap();
        prop_assert_eq!(out.edges, mst::kruskal(&g).edges);
    }

    #[test]
    fn awake_complexity_never_explodes(n in 4usize..40, seed in 0u64..200) {
        let g = generators::random_connected(n, 0.15, seed).unwrap();
        let out = run_randomized(&g, seed).unwrap();
        // Extremely generous: c·log2(n) with c = 100. Catching runaway
        // awake time, not proving the constant.
        let bound = 100.0 * (n as f64).log2();
        prop_assert!((out.stats.awake_max() as f64) < bound,
            "awake {} at n={n}", out.stats.awake_max());
        prop_assert_eq!(out.stats.messages_lost, 0);
    }
}
