//! Golden snapshot tests for the observability plane (satellite 2):
//!
//! * the Table-1 report artifact for a small seeded panel is pinned by
//!   checksum and must regenerate byte-identically — across two runs in
//!   the same process *and* across all three time drivers;
//! * the per-phase span fingerprint of `Merging-Fragments` (the
//!   randomized algorithm) on the Figure-2 walkthrough graph
//!   (`examples/merging_trace.rs`: `path(8, 5)`, seed 3) is pinned span
//!   by span. Any drift here means either the execution schedule or the
//!   phase labeler moved.

use bench::report::{generate, ReportSpec};
use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::{registry, ExecOptions, MstScratch};
use sleeping_mst::netsim::Executor;

fn small_panel(executor: Executor) -> ReportSpec {
    ReportSpec {
        sizes: vec![6, 8],
        seeds: vec![0],
        executor,
        ..ReportSpec::default()
    }
}

/// FNV-1a 64 over the artifact bytes — enough to pin the whole JSON
/// without inlining 20 kB of it.
fn fnv64(bytes: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pinned checksum of the small-panel report JSON. If an intentional
/// change moves the artifact (new column, changed panel, algorithm
/// change), regenerate with `sleeping-mst report --sizes 6,8 --seeds 0
/// --json` and re-pin — but never because of executor choice, run order,
/// or re-running.
const REPORT_JSON_FNV: u64 = 0xc8d7_3477_f46b_5adf;

#[test]
fn report_json_is_pinned_and_executor_independent() {
    let first = generate(&small_panel(Executor::Calendar))
        .unwrap()
        .to_json();
    let again = generate(&small_panel(Executor::Calendar))
        .unwrap()
        .to_json();
    assert_eq!(first, again, "report must regenerate byte-identically");
    assert_eq!(fnv64(&first), REPORT_JSON_FNV, "report JSON drifted");

    for executor in [Executor::Sync, Executor::Naive] {
        let other = generate(&small_panel(executor)).unwrap().to_json();
        assert_eq!(
            first, other,
            "the {executor} driver must render identical report bytes"
        );
    }
}

#[test]
fn report_markdown_is_byte_stable() {
    let spec = small_panel(Executor::Calendar);
    let a = generate(&spec).unwrap().to_markdown();
    let b = generate(&spec).unwrap().to_markdown();
    assert_eq!(a, b);
    assert!(a.starts_with("# Table 1, measured"));
    for spec in registry::ALGORITHMS {
        assert!(a.contains(spec.name), "markdown is missing {}", spec.name);
    }
}

/// Each entry is `label:first_round-last_round:active_rounds:awake_node_rounds`.
const MERGING_FRAGMENTS_SPANS: &[&str] = &[
    "fragment-id-exchange:9-9:1:8",
    "bcast-moe:35-35:1:8",
    "coin-bcast:52-52:1:8",
    "coin-exchange:77-77:1:8",
    "bcast-validity:103-103:1:8",
    "merge-info:128-128:1:8",
    "fragment-id-exchange:179-179:1:8",
    "upcast-moe:204-204:1:4",
    "bcast-moe:205-205:1:8",
    "coin-bcast:222-222:1:8",
    "coin-exchange:247-247:1:8",
    "upcast-validity:272-272:1:4",
    "bcast-validity:273-273:1:8",
    "merge-info:298-298:1:8",
    "fragment-id-exchange:349-349:1:8",
    "upcast-moe:374-374:1:4",
    "bcast-moe:375-375:1:8",
    "coin-bcast:392-392:1:8",
    "coin-exchange:417-417:1:8",
    "upcast-validity:442-442:1:4",
    "bcast-validity:443-443:1:8",
    "merge-info:468-468:1:8",
    "fragment-id-exchange:519-519:1:8",
    "upcast-moe:544-544:1:6",
    "bcast-moe:545-545:1:8",
    "coin-bcast:562-562:1:8",
    "coin-exchange:587-587:1:8",
    "upcast-validity:612-612:1:6",
    "bcast-validity:613-613:1:8",
    "merge-info:638-638:1:8",
    "merge-up:663-663:1:2",
    "merge-down:664-664:1:2",
    "fragment-id-exchange:689-689:1:8",
    "upcast-moe:712-714:3:10",
    "bcast-moe:715-717:3:10",
    "coin-bcast:732-734:3:10",
    "coin-exchange:757-757:1:8",
    "upcast-validity:780-782:3:10",
    "bcast-validity:783-785:3:10",
    "merge-info:808-808:1:8",
    "merge-up:833-833:1:2",
    "merge-down:834-834:1:2",
    "fragment-id-exchange:859-859:1:8",
    "upcast-moe:882-884:3:11",
    "bcast-moe:885-887:3:11",
    "coin-bcast:902-904:3:11",
    "coin-exchange:927-927:1:8",
    "upcast-validity:950-952:3:11",
    "bcast-validity:953-955:3:11",
    "merge-info:978-978:1:8",
    "merge-up:1001-1003:3:6",
    "merge-down:1004-1006:3:6",
    "fragment-id-exchange:1029-1029:1:8",
    "upcast-moe:1050-1054:5:13",
    "bcast-moe:1055-1059:5:13",
];

#[test]
fn merging_fragments_phase_spans_are_pinned_on_the_figure2_graph() {
    let g = generators::path(8, 5).unwrap();
    let alg = registry::find("randomized").unwrap();
    let out = alg
        .run_with_options(
            &g,
            &ExecOptions::seeded(3).with_metrics(),
            &mut MstScratch::new(),
        )
        .unwrap();
    let got: Vec<String> = alg
        .phase_spans(&g, &out.metrics)
        .iter()
        .map(|s| {
            format!(
                "{}:{}-{}:{}:{}",
                s.label, s.first_round, s.last_round, s.active_rounds, s.awake_node_rounds
            )
        })
        .collect();
    assert_eq!(
        got.len(),
        MERGING_FRAGMENTS_SPANS.len(),
        "span count drifted"
    );
    for (i, (g, want)) in got.iter().zip(MERGING_FRAGMENTS_SPANS).enumerate() {
        assert_eq!(g, want, "span {i} drifted");
    }
}
