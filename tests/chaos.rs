//! Fault-plane integration tests (see `DESIGN.md`, "Fault plane").
//!
//! Three contracts are pinned here:
//!
//! 1. **Inert plans are free**: a `FaultPlan` with every intensity at
//!    zero is bit-identical to running with no plan at all, for every
//!    registry algorithm (the plan gate routes inert plans through the
//!    exact fault-free path).
//! 2. **Drops never corrupt**: under arbitrary message-drop-only plans,
//!    every algorithm either produces its exact reference output or
//!    fails with a typed [`RunError`] inside the round-budget watchdog —
//!    never a wrong tree, never a hang.
//! 3. **Crashing a leader cannot hang the run**: killing the node every
//!    fragment converges on (the Prim coordinator, node 0) surfaces as a
//!    typed error, bounded by the watchdog.

use proptest::prelude::*;

use bench::chaos::{run_chaos, ChaosSpec};
use sleeping_mst::graphlib::{generators, mst, UnionFind, WeightedGraph};
use sleeping_mst::mst_core::registry::ALGORITHMS;
use sleeping_mst::mst_core::{MstScratch, RunError};
use sleeping_mst::netsim::faults::{FaultPlan, PPM_SCALE};

/// `true` if `edges` is a spanning forest of `graph` (acyclic, one tree
/// per connected component).
fn is_spanning_forest(graph: &WeightedGraph, edges: &[graphlib::EdgeId]) -> bool {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    for &e in edges {
        let edge = graph.edge(e);
        if !uf.union(edge.u.index(), edge.v.index()) {
            return false;
        }
    }
    let mut components = UnionFind::new(n);
    for e in graph.edges() {
        components.union(e.u.index(), e.v.index());
    }
    uf.set_count() == components.set_count()
}

proptest! {
    // Every case runs all six algorithms through full simulations.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite contract 1: zero-intensity plans are bit-identical to no
    // plan. `FaultPlan::seeded(s)` has every intensity at zero no matter
    // the seed, so the fingerprint (edges, stats, phases) must match the
    // plain `run_with_scratch` path exactly.
    #[test]
    fn inert_plan_is_fingerprint_identical_for_every_algorithm(
        n in 3usize..14,
        p in 0.0f64..0.5,
        graph_seed in 0u64..500,
        run_seed in 0u64..1000,
        fault_seed in any::<u64>(),
    ) {
        let g = generators::random_connected(n, p, graph_seed).unwrap();
        let plan = FaultPlan::seeded(fault_seed);
        prop_assert!(plan.is_inert());
        let mut scratch = MstScratch::new();
        for spec in ALGORITHMS {
            let bare = spec.run_with_scratch(&g, run_seed, &mut scratch);
            let faulted = spec.run_with_faults(&g, run_seed, &plan, &mut scratch);
            match (bare, faulted) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.edges, &b.edges, "{}: edges diverge", spec.name);
                    prop_assert_eq!(&a.stats, &b.stats, "{}: stats diverge", spec.name);
                    prop_assert_eq!(a.phases, b.phases, "{}: phases diverge", spec.name);
                }
                (a, b) => prop_assert!(
                    false,
                    "{}: fault-free runs must succeed: bare={a:?} faulted={b:?}",
                    spec.name
                ),
            }
        }
    }

    // Satellite contract 2: message-drop-only plans can only delay or
    // break a run, never corrupt it. Success means the exact reference
    // output (Kruskal MST for `produces_mst` algorithms, a spanning
    // forest for the rest); everything else must be a typed error. The
    // watchdog bounds every run, so the test terminating at all is the
    // no-hang half of the claim.
    #[test]
    fn drop_only_plans_yield_reference_output_or_typed_error(
        n in 3usize..12,
        p in 0.0f64..0.5,
        graph_seed in 0u64..500,
        run_seed in 0u64..1000,
        fault_seed in any::<u64>(),
        drop_ppm in 0u32..=PPM_SCALE,
    ) {
        let g = generators::random_connected(n, p, graph_seed).unwrap();
        let plan = FaultPlan::seeded(fault_seed).with_drop_ppm(drop_ppm);
        let reference = mst::kruskal(&g).edges;
        let mut scratch = MstScratch::new();
        for spec in ALGORITHMS {
            match spec.run_with_faults(&g, run_seed, &plan, &mut scratch) {
                Ok(out) if spec.produces_mst => prop_assert_eq!(
                    &out.edges,
                    &reference,
                    "{}: completed with a non-minimum tree under drops",
                    spec.name
                ),
                Ok(out) => prop_assert!(
                    is_spanning_forest(&g, &out.edges),
                    "{}: completed with a non-spanning output under drops",
                    spec.name
                ),
                // Any RunError variant is an acceptable typed failure —
                // the match being exhaustive over Result is the point.
                Err(_typed) => {}
            }
        }
    }
}

// Satellite contract 3 (latent-hang audit): every registry algorithm's
// round loop runs through the simulator, so crashing the node the
// protocol coordinates through (node 0 — Prim's leader, the
// deterministic algorithm's fragment anchor) must end in a typed error
// or a still-correct output, within the watchdog budget.
#[test]
fn crashing_the_fragment_leader_never_hangs() {
    let g = generators::random_connected(10, 0.4, 7).unwrap();
    let reference = mst::kruskal(&g).edges;
    let mut scratch = MstScratch::new();
    for round in [1, 3, 9] {
        let plan = FaultPlan::seeded(0xc0ffee).with_crash(0, round);
        for spec in ALGORITHMS {
            match spec.run_with_faults(&g, 11, &plan, &mut scratch) {
                Ok(out) if spec.produces_mst => assert_eq!(
                    out.edges, reference,
                    "{} at crash round {round}: wrong tree",
                    spec.name
                ),
                Ok(out) => assert!(
                    is_spanning_forest(&g, &out.edges),
                    "{} at crash round {round}: non-spanning output",
                    spec.name
                ),
                Err(
                    RunError::Sim(_)
                    | RunError::Collect(_)
                    | RunError::Panicked { .. }
                    | RunError::Degraded { .. },
                ) => {}
                Err(other) => panic!(
                    "{} at crash round {round}: unexpected error class {other:?}",
                    spec.name
                ),
            }
        }
    }
}

// The chaos harness itself is a pure function of its spec: two runs at
// the same seed must serialize to byte-identical JSON (the replay
// contract the CLI's `chaos --json` output and the CI artifact rest on).
#[test]
fn chaos_report_is_byte_deterministic() {
    let spec = ChaosSpec {
        seed: 42,
        sizes: vec![6],
        trials: 1,
        executor: sleeping_mst::netsim::Executor::Calendar,
        ..ChaosSpec::default()
    };
    let first = run_chaos(&spec);
    let second = run_chaos(&spec);
    assert_eq!(first.to_json(), second.to_json());
    assert!(
        first.wrong_outputs().is_empty(),
        "chaos run produced wrong outputs: {:?}",
        first.wrong_outputs()
    );
}
