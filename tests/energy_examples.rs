//! The two energy examples run end-to-end on the unified
//! [`netsim::EnergyModel`] (satellite 3 of the energy plane):
//!
//! * `energy_comparison` prices the Table-1 panel under the reference
//!   model and must agree on the MST across all four algorithms;
//! * `radio_energy` drives the radio executor under the classic
//!   one-unit-per-active-round `radio` preset.
//!
//! Both are spawned through the real `cargo run --example` entry point,
//! so drift in the examples' use of the public API (the exact surface
//! the README points newcomers at) fails here rather than in a reader's
//! terminal.

use std::process::Command;

fn run_example(name: &str) -> (String, String) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("spawning example {name}: {e}"));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "example {name} failed ({:?}):\n{stderr}",
        out.status
    );
    (stdout, stderr)
}

#[test]
fn energy_comparison_example_runs_on_the_reference_model() {
    let (stdout, _) = run_example("energy_comparison");
    assert!(
        stdout.contains("energy model: round:1000,tx:8,rx:4,idle:50"),
        "example must announce the reference model spec:\n{stdout}"
    );
    for label in [
        "GHS always-awake",
        "Randomized-MST",
        "Deterministic-MST",
        "Corollary-1 (CV)",
    ] {
        // One row per panel size.
        assert_eq!(
            stdout.matches(label).count(),
            3,
            "missing rows for {label}:\n{stdout}"
        );
    }
    assert!(stdout.contains("energy max"), "priced column is gone");
}

#[test]
fn radio_energy_example_runs_on_the_radio_preset() {
    let (stdout, _) = run_example("radio_energy");
    assert!(
        stdout.contains("energy model: round:1,tx:0,rx:0,idle:0"),
        "example must announce the radio preset spec:\n{stdout}"
    );
    for rule in ["| Local", "| Detection", "| Silence"] {
        // Once in the broadcast table, once in the upcast table.
        assert_eq!(
            stdout.matches(rule).count(),
            2,
            "missing rows for collision rule {rule}:\n{stdout}"
        );
    }
}
