//! Integration tests of the Section 3 constructions: the reduction chain
//! executed by the *distributed* algorithms, and the congestion quantities
//! of Lemma 8 measured on real runs.

use sleeping_mst::graphlib::traversal;
use sleeping_mst::lowerbound::congestion::{awake_floor_from_bits, internal_traffic};
use sleeping_mst::lowerbound::grc::Grc;
use sleeping_mst::lowerbound::reduction::{
    css_spanning_connected, css_to_mst, mark_edges, mst_uses_unmarked,
};
use sleeping_mst::lowerbound::ring;
use sleeping_mst::lowerbound::sd::SdInstance;
use sleeping_mst::mst_core::{run_deterministic, run_randomized};

#[test]
fn distributed_mst_decides_set_disjointness_on_grc() {
    let grc = Grc::build(5, 16, 1).unwrap();
    for seed in 0..6 {
        let sd = SdInstance::random(grc.sd_bits(), seed);
        let marked = mark_edges(&grc, &sd);
        let weighted = css_to_mst(&grc.graph, &marked);
        let out = run_randomized(&weighted, seed + 100).unwrap();
        assert_eq!(
            !mst_uses_unmarked(&marked, &out.edges),
            sd.disjoint(),
            "randomized, seed {seed}"
        );
    }
    // One deterministic pass over each answer class.
    for sd in [
        SdInstance::random_disjoint(grc.sd_bits(), 7),
        SdInstance::random_intersecting(grc.sd_bits(), 7),
    ] {
        let marked = mark_edges(&grc, &sd);
        let weighted = css_to_mst(&grc.graph, &marked);
        let out = run_deterministic(&weighted).unwrap();
        assert_eq!(!mst_uses_unmarked(&marked, &out.edges), sd.disjoint());
    }
}

#[test]
fn css_oracle_matches_bfs_connectivity() {
    let grc = Grc::build(4, 16, 2).unwrap();
    for seed in 0..10 {
        let sd = SdInstance::random(grc.sd_bits(), seed);
        let marked = mark_edges(&grc, &sd);
        // Rebuild the marked subgraph and check connectivity with BFS.
        let mut b = sleeping_mst::graphlib::GraphBuilder::new(grc.n());
        for (i, e) in grc.graph.edges().iter().enumerate() {
            if marked[i] {
                b.edge(e.u.raw(), e.v.raw(), e.weight);
            }
        }
        let sub = b.build().unwrap();
        assert_eq!(
            css_spanning_connected(&grc.graph, &marked),
            traversal::is_connected(&sub),
            "seed {seed}"
        );
    }
}

#[test]
fn grc_diameter_is_small_but_awake_floor_is_not() {
    // The point of G_rc: tiny diameter (fast protocols exist) yet all
    // Alice↔Bob information must cross the O(log n) tree nodes.
    let grc = Grc::build(6, 64, 3).unwrap();
    let d = traversal::diameter(&grc.graph).unwrap();
    assert!(
        (d as usize) < grc.cols / 2,
        "diameter {d} not sublinear in c"
    );

    let out = run_randomized(&grc.graph, 9).unwrap();
    let traffic = internal_traffic(&grc, &out.stats);
    // Lemma 8's accounting identity on measured data: the busiest I node
    // was awake at least its received-bits / (degree · max-message-size).
    let max_deg = grc
        .internal
        .iter()
        .map(|&v| grc.graph.degree(v) as u64)
        .max()
        .unwrap();
    let floor = awake_floor_from_bits(traffic.max_bits, max_deg, 128);
    assert!(
        traffic.max_awake >= floor,
        "awake {} below information-theoretic floor {floor}",
        traffic.max_awake
    );
}

#[test]
fn ring_awake_ratio_is_flat_across_doublings() {
    // Theorem 3 shape check: awake/log2(n) within a 3x band while n grows 8x.
    let mut ratios = Vec::new();
    for &n in &[32usize, 64, 128, 256] {
        let g = ring::instance(n, 5).unwrap();
        let out = run_randomized(&g, 1).unwrap();
        ratios.push(out.stats.awake_max() as f64 / (n as f64).log2());
    }
    let (min, max) = ratios
        .iter()
        .fold((f64::INFINITY, 0f64), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    assert!(max / min < 3.0, "awake/log2(n) ratios {ratios:?} not flat");
}

#[test]
fn tradeoff_product_exceeds_n_for_all_algorithms() {
    // Theorem 4: awake × rounds ∈ Ω̃(n). Check the raw product ≥ n on G_rc.
    let grc = Grc::build(6, 32, 4).unwrap();
    let n = grc.n() as u128;
    let rand = run_randomized(&grc.graph, 3).unwrap();
    assert!(rand.stats.awake_round_product() >= n);
    let det = run_deterministic(&grc.graph).unwrap();
    assert!(det.stats.awake_round_product() >= n);
}
