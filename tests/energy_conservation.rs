//! Energy-conservation suite (satellite 1 of the energy plane): the
//! per-node ledger must *reconcile*, not merely accumulate. Every
//! registry algorithm runs on random connected graphs under a priced
//! [`netsim::EnergyModel`], and the ledger is checked against three
//! independent witnesses:
//!
//! 1. the run's other [`netsim::RunStats`] aggregates — the conservation
//!    identity `sum(energy_spent_by_node) == awake_total·round_cost +
//!    bits_sent·tx_bit_cost + bits_received·rx_bit_cost +
//!    idle_listen_rounds·idle_cost` holds exactly (integer arithmetic,
//!    no floats anywhere in the ledger);
//! 2. the metrics timeline — per-round `energy_spent` re-adds to the
//!    ledger total;
//! 3. the same run under every other time driver and under sharded
//!    sends (the full ledger vector must be bit-identical).
//!
//! The suite also pins inert-gating: a zero-cost model (budget or not)
//! takes the exact no-energy kernel path and is bit-identical to no
//! model at all, mirroring the inert-`FaultPlan` contract.

use proptest::prelude::*;

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::{registry, ExecOptions, MstScratch};
use sleeping_mst::netsim::{EnergyModel, Executor, RunStats};

/// The conservation identity, checked against the stats-side witnesses.
fn assert_conserved(name: &str, model: &EnergyModel, stats: &RunStats) {
    let awake_total: u64 = stats.awake_by_node.iter().sum();
    let bits_sent: u64 = stats.bits_by_edge.iter().sum();
    let bits_received: u64 = stats.bits_received_by_node.iter().sum();
    let expected = awake_total * model.round_cost
        + bits_sent * model.tx_bit_cost
        + bits_received * model.rx_bit_cost
        + stats.idle_listen_rounds * model.idle_cost;
    assert_eq!(
        stats.energy_total(),
        expected,
        "{name}: ledger does not reconcile (awake={awake_total} sent={bits_sent} \
         recv={bits_received} idle={})",
        stats.idle_listen_rounds
    );
    assert!(
        stats.energy_max() <= stats.energy_total(),
        "{name}: max exceeds total"
    );
}

proptest! {
    // Each case runs all six algorithms under three drivers and a shard
    // sweep; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On a random connected panel, every algorithm's energy ledger
    /// reconciles with its stats and its metrics timeline, and is
    /// bit-identical across {calendar, sync, naive} × {shards 1, 2, 4}.
    #[test]
    fn ledgers_conserve_and_agree_across_drivers_and_shards(
        n in 4usize..16, p in 0.1f64..0.5, seed in 0u64..200, run_seed in 0u64..100
    ) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let model = EnergyModel::reference();
        let mut scratch = MstScratch::new();
        for spec in registry::ALGORITHMS {
            let base = ExecOptions::seeded(run_seed)
                .with_energy(model)
                .with_metrics();
            let reference = spec
                .run_with_options(&g, &base, &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_conserved(spec.name, &model, &reference.stats);

            // Witness 2: the metrics timeline re-adds to the ledger.
            let timeline: u64 = reference
                .metrics
                .per_round
                .iter()
                .map(|r| r.energy_spent)
                .sum();
            prop_assert_eq!(timeline, reference.stats.energy_total(),
                "{}: timeline does not re-add", spec.name);
            prop_assert_eq!(reference.metrics.energy_spent(),
                reference.stats.energy_total(), "{}", spec.name);

            // Witness 3: bit-identical ledgers on every driver and shard
            // count (charging happens inside the one kernel).
            for executor in [Executor::Sync, Executor::Naive] {
                let other = spec
                    .run_with_options(&g, &base.clone().with_executor(executor), &mut scratch)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                prop_assert_eq!(&reference.stats, &other.stats,
                    "{}: {executor} ledger diverged", spec.name);
                prop_assert_eq!(&reference.metrics, &other.metrics,
                    "{}: {executor} timeline diverged", spec.name);
            }
            for shards in [2u32, 4] {
                let other = spec
                    .run_with_options(&g, &base.clone().with_shards(shards), &mut scratch)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                prop_assert_eq!(&reference.stats, &other.stats,
                    "{}: shards={shards} ledger diverged", spec.name);
            }
        }
    }

    /// Inert gating: a zero-cost model — with or without a budget — is
    /// bit-identical to running with no model at all, exactly like an
    /// inert fault plan takes the no-fault path.
    #[test]
    fn zero_cost_models_are_bit_identical_to_no_model(
        n in 4usize..14, seed in 0u64..100
    ) {
        let g = generators::random_connected(n, 0.3, seed).unwrap();
        let mut scratch = MstScratch::new();
        for spec in registry::ALGORITHMS {
            let plain = spec
                .run_with_options(&g, &ExecOptions::seeded(seed), &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            for inert in [
                EnergyModel::default(),
                // A budget over zero costs can never be spent: inert too.
                EnergyModel::default().with_budget(1),
            ] {
                let gated = spec
                    .run_with_options(
                        &g,
                        &ExecOptions::seeded(seed).with_energy(inert),
                        &mut scratch,
                    )
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                prop_assert_eq!(&plain.stats, &gated.stats,
                    "{}: inert model perturbed the run", spec.name);
                prop_assert_eq!(&plain.edges, &gated.edges, "{}", spec.name);
                prop_assert_eq!(gated.stats.energy_total(), 0, "{}", spec.name);
            }
        }
    }
}

/// Custom cost mixes reconcile too — each cost axis alone isolates one
/// term of the identity, so a bug in any single charging site fails the
/// axis that exercises it.
#[test]
fn each_cost_axis_reconciles_in_isolation() {
    let g = generators::random_connected(12, 0.3, 7).unwrap();
    let mut scratch = MstScratch::new();
    let axes = [
        EnergyModel::default().with_round_cost(3),
        EnergyModel::default().with_tx_bit_cost(2),
        EnergyModel::default().with_rx_bit_cost(5),
        EnergyModel::default().with_idle_cost(11),
        EnergyModel::reference(),
    ];
    for spec in registry::ALGORITHMS {
        for model in axes {
            let out = spec
                .run_with_options(&g, &ExecOptions::seeded(9).with_energy(model), &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_conserved(spec.name, &model, &out.stats);
            assert!(
                out.stats.energy_total() > 0,
                "{}: {} charged nothing — weak axis",
                spec.name,
                model.spec_string()
            );
        }
    }
}

/// `idle_listen_rounds` is counted whether or not a model is active, so
/// the no-model run already carries the idle witness the priced run will
/// be charged by — the counter itself must not depend on pricing.
#[test]
fn idle_listen_counter_is_model_independent() {
    let g = generators::random_connected(10, 0.3, 3).unwrap();
    let mut scratch = MstScratch::new();
    for spec in registry::ALGORITHMS {
        let plain = spec
            .run_with_options(&g, &ExecOptions::seeded(4), &mut scratch)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let priced = spec
            .run_with_options(
                &g,
                &ExecOptions::seeded(4).with_energy(EnergyModel::reference()),
                &mut scratch,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(
            plain.stats.idle_listen_rounds, priced.stats.idle_listen_rounds,
            "{}: idle counter depends on pricing",
            spec.name
        );
    }
}
