//! Metrics-conservation suite: the observability plane must *reconcile*,
//! not merely record. Every registry algorithm runs on random connected
//! graphs with per-round metrics on, and the [`netsim::Metrics`] stream
//! is checked against three independent witnesses:
//!
//! 1. the run's [`netsim::RunStats`] aggregates (per-round sums equal the
//!    totals, per-node awake timelines equal the awake counters, and the
//!    per-round conservation identity `sent + dups = delivered + lost +
//!    drops` holds);
//! 2. the same run under every other time driver — the round-synchronous
//!    driver and the naive `O(n)`-scan oracle (the full `Metrics` value
//!    must be bit-identical to the calendar driver's);
//! 3. the recorded [`netsim::Trace`] (event counts per round match the
//!    corresponding `RoundReport`).

use proptest::prelude::*;

use sleeping_mst::graphlib::{generators, WeightedGraph};
use sleeping_mst::mst_core::baseline::ghs_always_awake;
use sleeping_mst::mst_core::deterministic::{ColoringMode, DeterministicConfig, DeterministicMst};
use sleeping_mst::mst_core::prim::PrimMst;
use sleeping_mst::mst_core::randomized::{EdgeSelection, RandomizedConfig, RandomizedMst};
use sleeping_mst::mst_core::{registry, ExecOptions, MstScratch};
use sleeping_mst::netsim::{
    Executor, Metrics, Protocol, RunOutcome, RunStats, SimConfig, SimError, Simulator, Trace,
    TraceEvent,
};

/// Everything the reconciliation checks need from one run.
struct RunFacts {
    stats: RunStats,
    metrics: Metrics,
    trace: Trace,
}

fn unpack<P: Protocol>(r: Result<RunOutcome<P>, SimError>, name: &str) -> RunFacts {
    let out = r.unwrap_or_else(|e| panic!("{name}: {e}"));
    RunFacts {
        stats: out.stats,
        metrics: out.metrics,
        trace: out.trace,
    }
}

/// Runs registry algorithm `name` under the given time driver, using the
/// same protocol factories the registry runners use — one launch path,
/// parameterized only by [`SimConfig::with_executor`].
fn run_by_name(name: &str, g: &WeightedGraph, config: &SimConfig, executor: Executor) -> RunFacts {
    macro_rules! launch {
        ($factory:expr) => {
            unpack(
                Simulator::new(g, config.clone().with_executor(executor)).run($factory),
                name,
            )
        };
    }
    match name {
        "randomized" => launch!(RandomizedMst::new),
        "spanning-tree" => launch!(|ctx| RandomizedMst::with_config(
            ctx,
            RandomizedConfig {
                selection: EdgeSelection::MinPort,
                ..RandomizedConfig::default()
            }
        )),
        "deterministic" => {
            launch!(|ctx| DeterministicMst::with_config(ctx, DeterministicConfig::default()))
        }
        "logstar" => launch!(|ctx| DeterministicMst::with_config(
            ctx,
            DeterministicConfig {
                coloring: ColoringMode::ColeVishkin,
                ..DeterministicConfig::default()
            }
        )),
        "prim" => launch!(|ctx| PrimMst::new(ctx, 1)),
        "always-awake" => launch!(ghs_always_awake),
        other => panic!("no factory for `{other}`"),
    }
}

/// The stats-side reconciliation: every aggregate in `RunStats` that the
/// metrics stream also observes must be derivable from the stream.
fn reconcile_with_stats(name: &str, stats: &RunStats, metrics: &Metrics) {
    // Round indices are strictly increasing and only active rounds are
    // recorded (a report with zero awake nodes cannot exist).
    for pair in metrics.per_round.windows(2) {
        assert!(
            pair[0].round < pair[1].round,
            "{name}: rounds not increasing"
        );
    }
    for r in &metrics.per_round {
        assert!(r.awake > 0, "{name}: empty round {} recorded", r.round);
        assert_eq!(
            r.messages_sent + r.dup_deliveries,
            r.messages_delivered + r.messages_lost + r.injected_drops,
            "{name}: conservation identity fails in round {}",
            r.round
        );
    }

    // Per-round sums equal the run totals.
    let sum = |f: fn(&sleeping_mst::netsim::RoundReport) -> u64| -> u64 {
        metrics.per_round.iter().map(f).sum()
    };
    assert_eq!(
        sum(|r| r.messages_delivered),
        stats.messages_delivered,
        "{name}"
    );
    assert_eq!(sum(|r| r.messages_lost), stats.messages_lost, "{name}");
    assert_eq!(sum(|r| r.injected_drops), stats.injected_drops, "{name}");
    assert_eq!(sum(|r| r.dup_deliveries), stats.dup_deliveries, "{name}");
    assert_eq!(
        sum(|r| r.awake),
        stats.awake_by_node.iter().sum::<u64>(),
        "{name}: awake node-rounds"
    );
    assert_eq!(
        sum(|r| r.bits_sent),
        stats.bits_by_edge.iter().sum::<u64>(),
        "{name}: bits sent vs bits_by_edge"
    );

    // Per-node timelines reproduce the awake counters exactly, and the
    // timeline-derived awake complexity is the paper's measure.
    assert_eq!(
        metrics.awake_rounds_by_node.len(),
        stats.awake_by_node.len(),
        "{name}"
    );
    for (v, timeline) in metrics.awake_rounds_by_node.iter().enumerate() {
        assert_eq!(
            timeline.len() as u64,
            stats.awake_by_node[v],
            "{name}: node {v} timeline"
        );
        assert!(
            timeline.windows(2).all(|w| w[0] < w[1]),
            "{name}: node {v} timeline not sorted"
        );
    }
    assert_eq!(metrics.awake_complexity(), stats.awake_max(), "{name}");

    // The stream covers the whole run unconditionally: `stats.rounds`
    // counts only rounds where some node ran, so even a crash-stranded
    // stale wake (see the pinned case in `model_conformance.rs`) cannot
    // push it past the last recorded round.
    assert_eq!(metrics.last_round(), stats.rounds, "{name}: last round");

    // Per-round max edge congestion is bounded by that round's traffic
    // and at least as large as any single message.
    for r in &metrics.per_round {
        assert!(r.max_edge_bits <= r.bits_sent, "{name}");
        if r.messages_sent > 0 {
            assert!(r.max_edge_bits > 0, "{name}: sends but no congestion");
        }
    }
}

/// The trace-side reconciliation: per-round event counts match the
/// corresponding `RoundReport` field for field.
fn reconcile_with_trace(name: &str, metrics: &Metrics, trace: &Trace) {
    for r in &metrics.per_round {
        let mut awake = 0u64;
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut dropped = 0u64;
        let mut delivered_bits = 0u64;
        for e in trace.in_round(r.round) {
            match e {
                TraceEvent::Awake { .. } => awake += 1,
                TraceEvent::Delivered { bits, .. } => {
                    delivered += 1;
                    delivered_bits += *bits as u64;
                }
                TraceEvent::Lost { .. } => lost += 1,
                TraceEvent::Dropped { .. } => dropped += 1,
                TraceEvent::Halted { .. } | TraceEvent::Crashed { .. } => {}
            }
        }
        assert_eq!(awake, r.awake, "{name}: trace awake in round {}", r.round);
        assert_eq!(delivered, r.messages_delivered, "{name}: round {}", r.round);
        assert_eq!(lost, r.messages_lost, "{name}: round {}", r.round);
        assert_eq!(dropped, r.injected_drops, "{name}: round {}", r.round);
        // Lost messages still consume sender bits, so the delivered-only
        // trace total can only bound the metric from below.
        assert!(
            delivered_bits <= r.bits_sent,
            "{name}: round {} delivered bits {} > sent bits {}",
            r.round,
            delivered_bits,
            r.bits_sent
        );
    }
    // Every awake event belongs to a recorded round: total counts match.
    let trace_awake = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Awake { .. }))
        .count() as u64;
    assert_eq!(trace_awake, metrics.awake_total(), "{name}: total awake");
}

proptest! {
    // Each case runs all six algorithms under all three time drivers
    // with full tracing; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: on a random connected panel, every algorithm's metrics
    /// stream reconciles with its stats, with its trace, and — bit for
    /// bit — across all three time drivers.
    #[test]
    fn metrics_reconcile_across_stats_trace_and_executors(
        n in 4usize..18, p in 0.1f64..0.5, seed in 0u64..200, run_seed in 0u64..100
    ) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let config = SimConfig::default()
            .with_seed(run_seed)
            .with_metrics()
            .with_trace();
        for spec in registry::ALGORITHMS {
            let calendar = run_by_name(spec.name, &g, &config, Executor::Calendar);
            reconcile_with_stats(spec.name, &calendar.stats, &calendar.metrics);
            reconcile_with_trace(spec.name, &calendar.metrics, &calendar.trace);

            for executor in [Executor::Sync, Executor::Naive] {
                let other = run_by_name(spec.name, &g, &config, executor);
                reconcile_with_stats(spec.name, &other.stats, &other.metrics);
                reconcile_with_trace(spec.name, &other.metrics, &other.trace);

                prop_assert!(calendar.metrics == other.metrics,
                    "{}: {executor} disagrees on metrics", spec.name);
                prop_assert!(calendar.stats == other.stats,
                    "{}: {executor} disagrees on stats", spec.name);
            }
        }
    }
}

/// Satellite: the registry path (`ExecOptions::with_metrics`) carries the
/// same stream the raw simulator records, and the phase-span partition is
/// exact — spans tile the active rounds without gaps or overlaps, and
/// span totals re-add to the global totals.
#[test]
fn registry_metrics_and_phase_spans_partition_the_run() {
    let g = generators::random_connected(14, 0.3, 9).unwrap();
    let mut scratch = MstScratch::new();
    for spec in registry::ALGORITHMS {
        let out = spec
            .run_with_options(&g, &ExecOptions::seeded(5).with_metrics(), &mut scratch)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        reconcile_with_stats(spec.name, &out.stats, &out.metrics);

        let spans = spec.phase_spans(&g, &out.metrics);
        assert!(!spans.is_empty(), "{}", spec.name);
        assert_eq!(
            spans.iter().map(|s| s.active_rounds).sum::<u64>(),
            out.metrics.active_rounds() as u64,
            "{}: spans must tile the active rounds",
            spec.name
        );
        assert_eq!(
            spans.iter().map(|s| s.awake_node_rounds).sum::<u64>(),
            out.metrics.awake_total(),
            "{}",
            spec.name
        );
        assert_eq!(
            spans.iter().map(|s| s.messages_sent).sum::<u64>(),
            out.metrics.messages_sent(),
            "{}",
            spec.name
        );
        assert_eq!(
            spans.iter().map(|s| s.bits_sent).sum::<u64>(),
            out.metrics.bits_sent(),
            "{}",
            spec.name
        );
        for pair in spans.windows(2) {
            assert!(
                pair[0].last_round < pair[1].first_round,
                "{}: spans overlap",
                spec.name
            );
        }
        assert!(
            spans.iter().all(|s| s.label != "out-of-schedule"),
            "{}: a round fell outside the phase schedule: {:?}",
            spec.name,
            spans.iter().map(|s| s.label).collect::<Vec<_>>()
        );

        let totals = spec.phase_totals(&g, &out.metrics);
        assert_eq!(
            totals.iter().map(|t| t.awake_node_rounds).sum::<u64>(),
            out.metrics.awake_total(),
            "{}",
            spec.name
        );
    }
}

/// Satellite (off-switch equivalence): recording metrics must not perturb
/// execution. On the fingerprint-pinned graph of
/// `tests/model_conformance.rs`, every algorithm produces identical stats
/// and identical edge sets with metrics on and off — so the pinned
/// fingerprints hold on both sides of the switch — and the off side
/// leaves the outcome's metrics empty.
#[test]
fn metrics_switch_does_not_perturb_execution() {
    let g = generators::random_connected(16, 0.25, 11).unwrap();
    let mut scratch = MstScratch::new();
    for spec in registry::ALGORITHMS {
        let off = spec
            .run_with_options(&g, &ExecOptions::seeded(7), &mut scratch)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let on = spec
            .run_with_options(&g, &ExecOptions::seeded(7).with_metrics(), &mut scratch)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(
            off.metrics.is_empty(),
            "{}: off-switch leaked metrics",
            spec.name
        );
        assert_eq!(off.stats, on.stats, "{}: stats drifted", spec.name);
        assert_eq!(off.edges, on.edges, "{}: edges drifted", spec.name);
        assert!(!on.metrics.is_empty(), "{}", spec.name);
    }
}

/// Satellite: under injected faults the conservation identity still holds
/// per round — injected drops and duplicate deliveries are visible in the
/// stream and reconcile with the run totals.
#[test]
fn metrics_reconcile_under_injected_faults() {
    use sleeping_mst::netsim::FaultPlan;
    let g = generators::random_connected(12, 0.3, 5).unwrap();
    let mut scratch = MstScratch::new();
    let plan = FaultPlan::seeded(0xfa17)
        .with_drop_ppm(2_000)
        .with_duplicate_ppm(4_000);
    for spec in registry::ALGORITHMS {
        let out = spec
            .run_with_options(
                &g,
                &ExecOptions::seeded(7)
                    .with_metrics()
                    .with_faults(plan.clone()),
                &mut scratch,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        reconcile_with_stats(spec.name, &out.stats, &out.metrics);
        assert!(
            out.stats.injected_drops + out.stats.dup_deliveries > 0,
            "{}: plan injected nothing — weak test",
            spec.name
        );
    }
}
