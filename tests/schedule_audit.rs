//! Schedule discipline audit: replay a traced `Randomized-MST` run and
//! verify that **every** awake round of every node falls on one of its
//! (at most five) legal `Transmission-Schedule` offsets for that phase.
//!
//! This pins the paper's central mechanism end to end: a node's wake
//! pattern is fully determined by the round number and its LDT level, so
//! any off-schedule wake (or a level used before its phase boundary)
//! would show up here.

use std::collections::HashMap;

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::randomized::{RandomizedMst, BLOCKS_PER_PHASE};
use sleeping_mst::mst_core::schedule::ts_offsets;
use sleeping_mst::mst_core::timeline::Timeline;
use sleeping_mst::netsim::{SimConfig, Simulator, TraceEvent};

#[test]
fn every_awake_round_is_a_legal_schedule_offset() {
    let n = 20;
    let g = generators::random_connected(n, 0.2, 5).unwrap();
    let timeline = Timeline::new(n, BLOCKS_PER_PHASE);
    let phase_len = timeline.phase_len();

    // Levels are stable within a phase; snapshot them at the first active
    // round of each phase (all nodes have applied their merges by then —
    // phase-end updates happen while planning the next wake).
    let mut phase_levels: HashMap<u64, Vec<u64>> = HashMap::new();
    let out = Simulator::new(&g, SimConfig::default().with_seed(7).with_trace())
        .run_with_observer(RandomizedMst::new, |round, states: &[RandomizedMst]| {
            let phase = (round - 1) / phase_len;
            phase_levels
                .entry(phase)
                .or_insert_with(|| states.iter().map(|s| s.ldt_view().level).collect());
        })
        .unwrap();

    let mut audited = 0u64;
    for event in out.trace.events() {
        if let TraceEvent::Awake { round, node } = event {
            let pos = timeline.position(*round);
            let level = phase_levels
                .get(&pos.phase)
                .map(|levels| levels[node.index()])
                .expect("phase observed");
            let o = ts_offsets(n, level);
            let mut allowed = vec![o.down_send, o.side, o.up_receive];
            allowed.extend(o.down_receive);
            allowed.extend(o.up_send);
            assert!(
                allowed.contains(&pos.offset),
                "{node} awake at round {round} = {pos:?} but its level-{level} \
                 offsets are {allowed:?}"
            );
            audited += 1;
        }
    }
    // Sanity: the audit actually saw the whole execution.
    assert_eq!(audited, out.stats.awake_total());
    assert!(audited > 100, "suspiciously few awake events: {audited}");
}

#[test]
fn awake_events_match_stats_accounting() {
    let g = generators::ring(16, 3).unwrap();
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(2))
        .run(RandomizedMst::new)
        .unwrap();
    let mut counts = vec![0u64; 16];
    for event in out.trace.events() {
        if let TraceEvent::Awake { node, .. } = event {
            counts[node.index()] += 1;
        }
    }
    assert_eq!(counts, out.stats.awake_by_node);
}
