//! Model-conformance integration tests: every registered algorithm obeys
//! the sleeping model (Section 1.1) under the validating executor, the
//! checker rejects cheats through the public API, and the determinism
//! fixes of this layer (`HashMap` → `BTreeMap` etc.) left execution
//! pinned bit-for-bit.

use proptest::prelude::*;

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::registry;
use sleeping_mst::mst_core::{ExecOptions, MstScratch, RunError};
use sleeping_mst::netsim::{
    audit, EnergyModel, Envelope, FaultPlan, ModelRule, NextWake, NodeCtx, Outbox, Protocol, Round,
    SimConfig, ValidatingExecutor,
};

proptest! {
    // Each case runs every algorithm twice (determinism re-run) with
    // tracing on; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: the validating executor accepts all registry algorithms
    /// on the random panel — no model rule fires, the per-message budget
    /// `C·⌈log₂ n⌉` holds, and every run is same-seed reproducible.
    #[test]
    fn every_algorithm_validates_on_random_panel(
        n in 4usize..24, p in 0.1f64..0.5, seed in 0u64..300, run_seed in 0u64..100
    ) {
        let g = generators::random_connected(n, p, seed).unwrap();
        for spec in registry::ALGORITHMS {
            let check = spec
                .check(&g, run_seed)
                .unwrap_or_else(|e| panic!("{} on n={n} seed={seed}: {e}", spec.name));
            prop_assert!(check.max_message_bits as usize <= check.bit_budget,
                "{}: {} > {}", spec.name, check.max_message_bits, check.bit_budget);
            prop_assert!(check.log_constant <= spec.congest_constant);
        }
    }
}

/// Cheating fixture (public API): a protocol whose payload blows the
/// CONGEST budget. The oversized-message rule must fire.
#[test]
fn oversized_message_cheat_is_rejected() {
    #[derive(Debug)]
    struct Bloated;
    impl Protocol for Bloated {
        type Msg = u64;
        fn init(&mut self, _: &NodeCtx) -> NextWake {
            NextWake::At(1)
        }
        fn send(&mut self, ctx: &NodeCtx, _: Round, outbox: &mut Outbox<u64>) {
            outbox.extend(ctx.ports().map(|p| Envelope::new(p, u64::MAX)));
        }
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }
    let g = generators::ring(8, 1).unwrap();
    let err = ValidatingExecutor::new(&g, SimConfig::default())
        .with_congest_constant(4) // 4·⌈log₂ 8⌉ = 12 bits; the payload is 64
        .run(|_| Bloated)
        .unwrap_err();
    assert!(err.breaks(ModelRule::OversizedMessage), "{err}");
}

/// Cheating fixture (public API): stats that disagree with the recorded
/// trace — the conservation rule must fire. (Send-while-asleep needs a
/// forged *trace*, which only `netsim`'s internal tests can build; see
/// `netsim::validate::tests::audit_rejects_send_while_asleep`.)
#[test]
fn cooked_stats_cheat_is_rejected() {
    use sleeping_mst::netsim::{flood::Flood, Simulator};
    let g = generators::ring(8, 1).unwrap();
    let out = Simulator::new(&g, SimConfig::default().with_trace())
        .run(|ctx| Flood::new(ctx.node.raw() == 0))
        .unwrap();
    let mut stats = out.stats.clone();
    stats.messages_delivered += 1;
    let violations = audit(&stats, &out.trace, None);
    assert!(violations.iter().any(|v| v.rule == ModelRule::Conservation));
}

/// Satellite: the `HashMap` → `BTreeMap` determinism fixes left execution
/// untouched. These fingerprints were recorded before the conversion;
/// any drift in rounds, awake totals, message counts, or message widths
/// means a run is no longer bit-stable.
#[test]
fn execution_fingerprints_are_pinned() {
    let g = generators::random_connected(16, 0.25, 11).unwrap();
    let golden: &[(&str, u64, u64, u64, u64, u64)] = &[
        // (name, rounds, awake_total, delivered, lost, max_message_bits)
        ("randomized", 2715, 1182, 2496, 0, 24),
        ("deterministic", 8389, 1133, 1886, 0, 29),
        ("logstar", 7995, 2232, 2948, 0, 24),
        ("prim", 2052, 883, 2844, 0, 24),
        ("spanning-tree", 2385, 1034, 2221, 0, 24),
        ("always-awake", 2715, 43373, 2496, 0, 24),
    ];
    for &(name, rounds, awake_total, delivered, lost, max_bits) in golden {
        let spec = registry::find(name).unwrap();
        let out = spec.run(&g, 7).unwrap();
        assert_eq!(out.stats.rounds, rounds, "{name} rounds");
        assert_eq!(out.stats.awake_total(), awake_total, "{name} awake");
        assert_eq!(out.stats.messages_delivered, delivered, "{name} delivered");
        assert_eq!(out.stats.messages_lost, lost, "{name} lost");
        assert_eq!(out.stats.max_message_bits, max_bits, "{name} max bits");
    }
}

/// Satellite (stats-vs-metrics audit): `RunStats::rounds` counts only
/// rounds in which some node actually ran — identical to what the
/// metrics stream reports. An injected crash can strand a stale
/// scheduled wake: the time driver still surfaces the round, but every
/// wake in it is suppressed, so the kernel skips it *before* counting —
/// no `RoundReport` exists for it and `rounds` does not advance. This
/// fixture pins that unified semantics (`stats.rounds ==
/// metrics.last_round()`, crashes included) across every driver, so the
/// old divergence class — a popped-but-empty final round inflating
/// `rounds` past the metrics stream — can never silently return.
#[test]
fn crashed_stale_wake_does_not_inflate_rounds_past_the_metrics_stream() {
    use sleeping_mst::netsim::{Executor, Simulator};

    /// Node 0 wakes once in round 1 and halts; every other node sleeps
    /// until round 9. Crashing node 1 at round 3 leaves its round-9 wake
    /// in the queue: the driver surfaces round 9 with every wake
    /// suppressed, and the kernel must discard it — `rounds` stays 1.
    #[derive(Debug)]
    struct StaleWake;
    impl Protocol for StaleWake {
        type Msg = u64;
        fn init(&mut self, ctx: &NodeCtx) -> NextWake {
            if ctx.node.raw() == 0 {
                NextWake::At(1)
            } else {
                NextWake::At(9)
            }
        }
        fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<u64>) {}
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }

    let g = generators::path(2, 1).unwrap();
    for executor in [Executor::Calendar, Executor::Sync, Executor::Naive] {
        let config = SimConfig::default()
            .with_metrics()
            .with_faults(FaultPlan::seeded(1).with_crash(1, 3))
            .with_max_rounds(1_000)
            .with_executor(executor);
        let out = Simulator::new(&g, config).run(|_| StaleWake).unwrap();
        assert_eq!(out.stats.crashed_nodes, 1, "{executor}");
        assert_eq!(
            out.stats.rounds, 1,
            "{executor}: suppressed stale round must not count"
        );
        assert_eq!(
            out.metrics.last_round(),
            1,
            "{executor}: suppressed round must not be reported"
        );
        assert_eq!(out.metrics.active_rounds(), 1, "{executor}");
        assert_eq!(
            out.metrics.awake_rounds_by_node,
            vec![vec![1], vec![]],
            "{executor}"
        );
        assert_eq!(out.stats.rounds, out.metrics.last_round(), "{executor}");
    }
}

/// Satellite: energy-plane golden fingerprints. Each registry algorithm
/// runs under two energy configurations on the same panel graph as
/// `execution_fingerprints_are_pinned`:
///
/// * the unbudgeted reference model — the run completes and its full
///   ledger (total, per-node max, idle-listen rounds) is pinned;
/// * the reference model with a 5 000-unit per-node budget — far below
///   the ~100 awake rounds the cheapest algorithm needs, so every run
///   fails with a typed [`RunError::EnergyExhausted`], and the exhausted
///   `(node, round)` pair is pinned.
///
/// Charging happens inside the one kernel, so these fingerprints are
/// also what every other driver and shard count must produce (the
/// differential suites prove that identity; this test pins the values).
#[test]
fn energy_fingerprints_are_pinned() {
    fn fingerprint(
        spec: &registry::AlgorithmSpec,
        g: &sleeping_mst::graphlib::WeightedGraph,
        model: EnergyModel,
        scratch: &mut MstScratch,
    ) -> String {
        match spec.run_with_options(g, &ExecOptions::seeded(7).with_energy(model), scratch) {
            Ok(out) => format!(
                "ok energy={} max={} idle={} exhausted={}",
                out.stats.energy_total(),
                out.stats.energy_max(),
                out.stats.idle_listen_rounds,
                out.stats.exhausted_nodes
            ),
            Err(RunError::EnergyExhausted { node, round }) => {
                format!("err exhausted node={} round={}", node.raw(), round)
            }
            Err(other) => format!("err {other}"),
        }
    }

    let g = generators::random_connected(16, 0.25, 11).unwrap();
    let complete = EnergyModel::reference();
    let exhaust = EnergyModel::reference().with_budget(5_000);
    let golden: &[(&str, EnergyModel, &str)] = &[
        (
            "randomized",
            complete,
            "ok energy=1492108 max=127964 idle=446 exhausted=0",
        ),
        (
            "deterministic",
            complete,
            "ok energy=1388722 max=125010 idle=481 exhausted=0",
        ),
        (
            "logstar",
            complete,
            "ok energy=2619920 max=233594 idle=970 exhausted=0",
        ),
        (
            "prim",
            complete,
            "ok energy=1244384 max=116774 idle=194 exhausted=0",
        ),
        (
            "spanning-tree",
            complete,
            "ok energy=1296152 max=113978 idle=384 exhausted=0",
        ),
        (
            "always-awake",
            complete,
            "ok energy=45792658 max=2870778 idle=42637 exhausted=0",
        ),
        ("randomized", exhaust, "err exhausted node=0 round=149"),
        ("deterministic", exhaust, "err exhausted node=0 round=166"),
        ("logstar", exhaust, "err exhausted node=0 round=166"),
        ("prim", exhaust, "err exhausted node=0 round=149"),
        ("spanning-tree", exhaust, "err exhausted node=0 round=149"),
        ("always-awake", exhaust, "err exhausted node=0 round=5"),
    ];
    let mut scratch = MstScratch::new();
    for &(name, model, expected) in golden {
        let spec = registry::find(name).unwrap();
        let got = fingerprint(spec, &g, model, &mut scratch);
        assert_eq!(got, expected, "{name} under {}", model.spec_string());
    }
}

/// Satellite: fault-plane golden fingerprints. Each registry algorithm
/// runs under two light nonzero `FaultPlan`s (survivable — stats pinned,
/// fault counters nonzero) and one heavy plan (the typed failure class
/// pinned). Any drift means fault decisions are no longer the pure
/// function of `(fault_seed, tag, round, edge)` that the replay contract
/// promises (see `DESIGN.md`, "Fault plane").
#[test]
fn fault_fingerprints_are_pinned() {
    fn fingerprint(
        spec: &registry::AlgorithmSpec,
        g: &sleeping_mst::graphlib::WeightedGraph,
        plan: &FaultPlan,
        scratch: &mut MstScratch,
    ) -> String {
        match spec.run_with_faults(g, 7, plan, scratch) {
            Ok(out) => format!(
                "ok edges={} rounds={} drops={} dups={}",
                out.edges.len(),
                out.stats.rounds,
                out.stats.injected_drops,
                out.stats.dup_deliveries
            ),
            Err(RunError::Sim(_)) => "err sim".to_string(),
            Err(RunError::Panicked { .. }) => "err panic".to_string(),
            Err(RunError::Degraded { .. }) => "err degraded".to_string(),
            Err(other) => format!("err {other}"),
        }
    }

    let g = generators::random_connected(12, 0.3, 5).unwrap();
    let light_drop = FaultPlan::seeded(0xfa17).with_drop_ppm(2_000);
    let light_dup = FaultPlan::seeded(0xfa17).with_duplicate_ppm(4_000);
    let heavy = FaultPlan::seeded(0xfa17)
        .with_drop_ppm(80_000)
        .with_duplicate_ppm(60_000);
    let golden: &[(&str, &FaultPlan, &str)] = &[
        (
            "randomized",
            &light_drop,
            "ok edges=11 rounds=1806 drops=2 dups=0",
        ),
        (
            "deterministic",
            &light_drop,
            "ok edges=11 rounds=3879 drops=3 dups=0",
        ),
        (
            "logstar",
            &light_drop,
            "ok edges=11 rounds=3429 drops=2 dups=0",
        ),
        (
            "prim",
            &light_drop,
            "ok edges=11 rounds=1157 drops=2 dups=0",
        ),
        (
            "spanning-tree",
            &light_drop,
            "ok edges=11 rounds=1555 drops=1 dups=0",
        ),
        (
            "always-awake",
            &light_drop,
            "ok edges=11 rounds=1806 drops=2 dups=0",
        ),
        (
            "randomized",
            &light_dup,
            "ok edges=11 rounds=1806 drops=0 dups=4",
        ),
        (
            "deterministic",
            &light_dup,
            "ok edges=11 rounds=3879 drops=0 dups=4",
        ),
        (
            "logstar",
            &light_dup,
            "ok edges=11 rounds=3429 drops=0 dups=6",
        ),
        ("prim", &light_dup, "ok edges=11 rounds=1157 drops=0 dups=4"),
        (
            "spanning-tree",
            &light_dup,
            "ok edges=11 rounds=1555 drops=0 dups=5",
        ),
        (
            "always-awake",
            &light_dup,
            "ok edges=11 rounds=1806 drops=0 dups=4",
        ),
        ("randomized", &heavy, "err sim"),
        ("deterministic", &heavy, "err panic"),
        ("logstar", &heavy, "err panic"),
        ("prim", &heavy, "err sim"),
        ("spanning-tree", &heavy, "err sim"),
        ("always-awake", &heavy, "err sim"),
    ];
    let mut scratch = MstScratch::new();
    for (name, plan, expected) in golden {
        let spec = registry::find(name).unwrap();
        let got = fingerprint(spec, &g, plan, &mut scratch);
        assert_eq!(&got, expected, "{name} under {plan:?}");
    }
}
