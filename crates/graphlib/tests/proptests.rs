//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use graphlib::{generators, mst, traversal, GraphBuilder, NodeId, Port, UnionFind, WeightedGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kruskal, Prim, and Borůvka agree on arbitrary random connected graphs.
    #[test]
    fn mst_algorithms_agree(n in 2usize..60, p in 0.0f64..0.5, seed in 0u64..1000) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let k = mst::kruskal(&g);
        prop_assert_eq!(&k, &mst::prim(&g));
        prop_assert_eq!(&k, &mst::boruvka(&g));
        prop_assert_eq!(k.edges.len(), n - 1);
    }

    /// The MST is a spanning connected acyclic subgraph of minimum weight:
    /// swapping any non-tree edge in for the heaviest cycle edge can't help.
    #[test]
    fn mst_respects_cycle_property(n in 3usize..40, seed in 0u64..500) {
        let g = generators::random_connected(n, 0.2, seed).unwrap();
        let t = mst::kruskal(&g);
        // Every non-tree edge must be the heaviest edge on the cycle it
        // closes; verify via the path in the tree between its endpoints.
        let mut tree_adj = vec![Vec::new(); n];
        for &id in &t.edges {
            let e = g.edge(id);
            tree_adj[e.u.index()].push((e.v.index(), e.weight));
            tree_adj[e.v.index()].push((e.u.index(), e.weight));
        }
        for (i, e) in g.edges().iter().enumerate() {
            if t.contains(graphlib::EdgeId::new(i as u32)) {
                continue;
            }
            // BFS path max-weight from e.u to e.v in the tree.
            let mut best = vec![None; n];
            best[e.u.index()] = Some(0u64);
            let mut queue = std::collections::VecDeque::from([e.u.index()]);
            while let Some(x) = queue.pop_front() {
                for &(y, w) in &tree_adj[x] {
                    if best[y].is_none() {
                        best[y] = Some(best[x].unwrap().max(w));
                        queue.push_back(y);
                    }
                }
            }
            let path_max = best[e.v.index()].expect("tree spans the graph");
            prop_assert!(e.weight > path_max,
                "non-tree edge lighter than tree path: {} <= {}", e.weight, path_max);
        }
    }

    /// Union-find connectivity matches BFS component labels.
    #[test]
    fn union_find_matches_components(n in 1usize..40, edges in proptest::collection::vec((0u32..40, 0u32..40), 0..80)) {
        let mut b = GraphBuilder::new(n);
        let mut weight = 1u64;
        let mut seen = std::collections::HashSet::new();
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue;
            }
            b.edge(u, v, weight);
            weight += 1;
        }
        let g = b.build().unwrap();
        let labels = traversal::components(&g);
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.connected(i, j), labels[i] == labels[j]);
            }
        }
    }

    /// Generated rings: removing the heaviest edge gives the MST.
    #[test]
    fn ring_mst_drops_heaviest_edge(n in 3usize..100, seed in 0u64..200) {
        let g = generators::ring(n, seed).unwrap();
        let t = mst::kruskal(&g);
        let heaviest = g
            .edges()
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.weight)
            .map(|(i, _)| graphlib::EdgeId::new(i as u32))
            .unwrap();
        prop_assert!(!t.contains(heaviest));
        prop_assert_eq!(t.edges.len(), n - 1);
    }

    /// The streaming CSR constructor is observationally identical to the
    /// validating builder on the same edge sequence: same edge list, same
    /// port tables, same flat slot layout and weight array.
    #[test]
    fn streaming_csr_matches_builder(
        n in 2usize..40,
        raw in proptest::collection::vec((0u32..40, 0u32..40), 0..100),
        wseed in 0u64..1000,
    ) {
        let mut seen = std::collections::HashSet::new();
        let mut kept: Vec<(u32, u32, u64)> = Vec::new();
        for (u, v) in raw {
            let (u, v) = (u % n as u32, v % n as u32);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue;
            }
            // Pairwise-distinct weights, offset by the seed.
            kept.push((u, v, wseed + 1 + kept.len() as u64));
        }
        let built = GraphBuilder::new(n).edges(kept.iter().copied()).build().unwrap();
        let streamed = WeightedGraph::from_edge_stream(n, |emit| {
            for &(u, v, w) in &kept {
                emit(u, v, w);
            }
        })
        .unwrap();
        prop_assert_eq!(built.node_count(), streamed.node_count());
        prop_assert_eq!(built.edges(), streamed.edges());
        prop_assert_eq!(built.total_ports(), streamed.total_ports());
        prop_assert_eq!(built.flat_port_weights(), streamed.flat_port_weights());
        let flat = built.flat_port_weights();
        for v in built.nodes() {
            prop_assert_eq!(built.degree(v), streamed.degree(v));
            prop_assert_eq!(built.port_base(v), streamed.port_base(v));
            prop_assert_eq!(built.ports(v), streamed.ports(v));
            prop_assert_eq!(built.external_id(v), streamed.external_id(v));
            for p in 0..built.degree(v) {
                let port = Port::new(p as u32);
                // Slots are dense and the flat table agrees with the
                // port-local view the protocols consume.
                let slot = built.port_slot(v, port);
                prop_assert_eq!(slot, built.port_base(v) as usize + p);
                prop_assert_eq!(flat[slot], built.port_entry(v, port).weight);
            }
        }
        prop_assert!(streamed.memory_bytes() > 0);
    }

    /// The streaming chorded-cycle family (the `scale:N:C` spec) is
    /// connected, exactly sized, and carries pairwise-distinct weights.
    #[test]
    fn chorded_cycle_is_connected_with_exact_size(n in 5usize..200, seed in 0u64..500) {
        let c = ((n - 1) / 2 - 1).min(3);
        let g = generators::chorded_cycle(n, c, seed).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n + n * c);
        prop_assert!(traversal::is_connected(&g));
        let mut weights: Vec<u64> = g.edges().iter().map(|e| e.weight).collect();
        weights.sort_unstable();
        weights.dedup();
        prop_assert_eq!(weights.len(), g.edge_count());
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distance_is_1_lipschitz_on_edges(n in 2usize..50, p in 0.0f64..0.3, seed in 0u64..200) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let d = traversal::bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let du = d[e.u.index()].unwrap() as i64;
            let dv = d[e.v.index()].unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }
}
