//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use graphlib::{generators, mst, traversal, GraphBuilder, NodeId, UnionFind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kruskal, Prim, and Borůvka agree on arbitrary random connected graphs.
    #[test]
    fn mst_algorithms_agree(n in 2usize..60, p in 0.0f64..0.5, seed in 0u64..1000) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let k = mst::kruskal(&g);
        prop_assert_eq!(&k, &mst::prim(&g));
        prop_assert_eq!(&k, &mst::boruvka(&g));
        prop_assert_eq!(k.edges.len(), n - 1);
    }

    /// The MST is a spanning connected acyclic subgraph of minimum weight:
    /// swapping any non-tree edge in for the heaviest cycle edge can't help.
    #[test]
    fn mst_respects_cycle_property(n in 3usize..40, seed in 0u64..500) {
        let g = generators::random_connected(n, 0.2, seed).unwrap();
        let t = mst::kruskal(&g);
        // Every non-tree edge must be the heaviest edge on the cycle it
        // closes; verify via the path in the tree between its endpoints.
        let mut tree_adj = vec![Vec::new(); n];
        for &id in &t.edges {
            let e = g.edge(id);
            tree_adj[e.u.index()].push((e.v.index(), e.weight));
            tree_adj[e.v.index()].push((e.u.index(), e.weight));
        }
        for (i, e) in g.edges().iter().enumerate() {
            if t.contains(graphlib::EdgeId::new(i as u32)) {
                continue;
            }
            // BFS path max-weight from e.u to e.v in the tree.
            let mut best = vec![None; n];
            best[e.u.index()] = Some(0u64);
            let mut queue = std::collections::VecDeque::from([e.u.index()]);
            while let Some(x) = queue.pop_front() {
                for &(y, w) in &tree_adj[x] {
                    if best[y].is_none() {
                        best[y] = Some(best[x].unwrap().max(w));
                        queue.push_back(y);
                    }
                }
            }
            let path_max = best[e.v.index()].expect("tree spans the graph");
            prop_assert!(e.weight > path_max,
                "non-tree edge lighter than tree path: {} <= {}", e.weight, path_max);
        }
    }

    /// Union-find connectivity matches BFS component labels.
    #[test]
    fn union_find_matches_components(n in 1usize..40, edges in proptest::collection::vec((0u32..40, 0u32..40), 0..80)) {
        let mut b = GraphBuilder::new(n);
        let mut weight = 1u64;
        let mut seen = std::collections::HashSet::new();
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue;
            }
            b.edge(u, v, weight);
            weight += 1;
        }
        let g = b.build().unwrap();
        let labels = traversal::components(&g);
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.connected(i, j), labels[i] == labels[j]);
            }
        }
    }

    /// Generated rings: removing the heaviest edge gives the MST.
    #[test]
    fn ring_mst_drops_heaviest_edge(n in 3usize..100, seed in 0u64..200) {
        let g = generators::ring(n, seed).unwrap();
        let t = mst::kruskal(&g);
        let heaviest = g
            .edges()
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.weight)
            .map(|(i, _)| graphlib::EdgeId::new(i as u32))
            .unwrap();
        prop_assert!(!t.contains(heaviest));
        prop_assert_eq!(t.edges.len(), n - 1);
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distance_is_1_lipschitz_on_edges(n in 2usize..50, p in 0.0f64..0.3, seed in 0u64..200) {
        let g = generators::random_connected(n, p, seed).unwrap();
        let d = traversal::bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let du = d[e.u.index()].unwrap() as i64;
            let dv = d[e.v.index()].unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }
}
