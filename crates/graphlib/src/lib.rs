//! Weighted-graph substrate for the sleeping-model MST reproduction.
//!
//! This crate provides everything the distributed layers need from the
//! "graph world": a compact undirected weighted graph type with per-node
//! port numbering ([`WeightedGraph`]), deterministic generators for the
//! graph families used in the paper's experiments ([`generators`]),
//! sequential reference MST algorithms used as ground truth
//! ([`mst`]), and supporting structure such as a union-find
//! ([`UnionFind`]) and BFS-based graph properties ([`traversal`]).
//!
//! The paper assumes all edge weights are **distinct**, which makes the MST
//! unique; [`WeightedGraph`] enforces this at construction time so that any
//! two MST algorithms (distributed or sequential) must produce the same edge
//! set, which the test suites rely on heavily.
//!
//! # Example
//!
//! ```
//! use graphlib::{generators, mst};
//!
//! let graph = generators::random_connected(32, 0.2, 7)?;
//! let tree = mst::kruskal(&graph);
//! assert_eq!(tree.edges.len(), graph.node_count() - 1);
//! # Ok::<(), graphlib::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod union_find;

pub mod generators;
pub mod mst;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Edge, EdgeId, GraphBuilder, NodeId, Port, WeightedGraph};
pub use union_find::UnionFind;
