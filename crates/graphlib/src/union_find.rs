/// Disjoint-set forest with union by rank and path halving.
///
/// Used by the sequential Kruskal/Borůvka reference algorithms and by test
/// oracles that track fragment merges.
///
/// # Example
///
/// ```
/// use graphlib::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.set_count(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`'s set, halving the path on the way.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count_once() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 4));
        assert!(uf.union(4, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(3, 4));
        assert!(!uf.connected(2, 3));
        assert!(!uf.connected(5, 0));
    }

    #[test]
    fn chain_unions_collapse_to_one_set() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            assert!(uf.union(i - 1, i));
        }
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
