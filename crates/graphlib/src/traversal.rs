//! BFS-based structural queries: connectivity, components, distances, and
//! hop diameter.
//!
//! The paper's statements are all in terms of the *hop* (unweighted)
//! diameter `D`; [`diameter`] computes it exactly with one BFS per node,
//! which is fine at the simulation sizes used here, and
//! [`diameter_double_sweep`] gives a cheap lower bound for larger graphs.

use std::collections::VecDeque;

use crate::{NodeId, WeightedGraph};

/// BFS hop distances from `source`; `None` for unreachable nodes.
pub fn bfs_distances(graph: &WeightedGraph, source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.node_count()];
    if graph.node_count() == 0 {
        return dist;
    }
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for entry in graph.ports(u) {
            let v = entry.neighbor;
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// `true` if every node is reachable from node 0 (vacuously true for `n <= 1`).
pub fn is_connected(graph: &WeightedGraph) -> bool {
    if graph.node_count() <= 1 {
        return true;
    }
    bfs_distances(graph, NodeId::new(0))
        .iter()
        .all(Option::is_some)
}

/// Connected-component label per node, labels numbered from zero in
/// discovery order.
pub fn components(graph: &WeightedGraph) -> Vec<u32> {
    let n = graph.node_count();
    let mut label = vec![u32::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = next;
        let mut queue = VecDeque::from([NodeId::new(s as u32)]);
        while let Some(u) = queue.pop_front() {
            for entry in graph.ports(u) {
                let v = entry.neighbor;
                if label[v.index()] == u32::MAX {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Exact hop eccentricity of `source` (longest BFS distance), or `None` if
/// some node is unreachable.
pub fn eccentricity(graph: &WeightedGraph, source: NodeId) -> Option<u32> {
    let dist = bfs_distances(graph, source);
    dist.into_iter().try_fold(0, |acc, d| d.map(|d| acc.max(d)))
}

/// Exact hop diameter via all-pairs BFS (`O(n·m)`), or `None` if the graph
/// is disconnected or empty.
pub fn diameter(graph: &WeightedGraph) -> Option<u32> {
    if graph.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Some(best)
}

/// Double-sweep diameter estimate: BFS from node 0, then BFS from the
/// farthest node found. Always a lower bound on the true diameter, exact on
/// trees. Returns `None` on disconnected or empty graphs.
pub fn diameter_double_sweep(graph: &WeightedGraph) -> Option<u32> {
    if graph.node_count() == 0 {
        return None;
    }
    let first = bfs_distances(graph, NodeId::new(0));
    let mut far = NodeId::new(0);
    let mut far_d = 0;
    for (i, d) in first.iter().enumerate() {
        let d = (*d)?;
        if d > far_d {
            far_d = d;
            far = NodeId::new(i as u32);
        }
    }
    eccentricity(graph, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5, 0).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn connectivity_detects_split() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(2, 3, 2)
            .build()
            .unwrap();
        assert!(!is_connected(&g));
        assert_eq!(components(&g), vec![0, 0, 1, 1]);
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter(&generators::path(6, 0).unwrap()), Some(5));
        assert_eq!(diameter(&generators::ring(6, 0).unwrap()), Some(3));
        assert_eq!(diameter(&generators::ring(7, 0).unwrap()), Some(3));
        assert_eq!(diameter(&generators::star(9, 0).unwrap()), Some(2));
        assert_eq!(diameter(&generators::complete(5, 0).unwrap()), Some(1));
        assert_eq!(diameter(&generators::grid(3, 4, 0).unwrap()), Some(5));
    }

    #[test]
    fn diameter_none_when_disconnected_or_empty() {
        let g = GraphBuilder::new(3).edge(0, 1, 1).build().unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter_double_sweep(&g), None);
    }

    #[test]
    fn double_sweep_exact_on_trees_and_bounded_elsewhere() {
        let tree = generators::random_connected(50, 0.0, 8).unwrap();
        assert_eq!(diameter_double_sweep(&tree), diameter(&tree));
        for seed in 0..5 {
            let g = generators::random_connected(40, 0.1, seed).unwrap();
            let exact = diameter(&g).unwrap();
            let est = diameter_double_sweep(&g).unwrap();
            assert!(est <= exact);
            assert!(est * 2 >= exact, "double sweep is a 2-approximation");
        }
    }

    #[test]
    fn eccentricity_of_path_endpoints_and_middle() {
        let g = generators::path(7, 0).unwrap();
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(6));
        assert_eq!(eccentricity(&g, NodeId::new(3)), Some(3));
    }
}
