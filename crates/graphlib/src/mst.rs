//! Sequential reference MST algorithms.
//!
//! The distributed algorithms in `mst-core` are verified against these:
//! because [`WeightedGraph`] enforces distinct weights, the MST is unique,
//! so any correct algorithm must return exactly the same edge set.
//!
//! Three classical algorithms are provided — [`kruskal`], [`prim`], and
//! [`boruvka`] — both as ground truth and as a cross-check on each other in
//! the property-test suite.

use std::collections::BinaryHeap;

use crate::{EdgeId, NodeId, Port, UnionFind, WeightedGraph};

/// A spanning forest: the MST restricted to each connected component.
///
/// For a connected graph this is the unique MST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Edge ids of the forest, sorted ascending.
    pub edges: Vec<EdgeId>,
    /// Total weight of the forest.
    pub total_weight: u64,
}

impl SpanningForest {
    fn from_unsorted(graph: &WeightedGraph, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        let total_weight = graph.total_weight(edges.iter().copied());
        SpanningForest {
            edges,
            total_weight,
        }
    }

    /// `true` if `edge` belongs to the forest.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// Per-node incident forest edges, as a membership bitmap over
    /// `(node, port)` pairs — the exact output format the paper requires of
    /// a distributed MST ("every node knows which of its incident edges
    /// belong to the MST").
    ///
    /// Two flat bitsets, `O(m)` bits and `O(n + m)` time total: an edge
    /// membership pass over the forest, then one sweep of the CSR port
    /// array. (The historical `Vec<Vec<bool>>` version allocated per node
    /// and ran a `port_to` scan per forest-edge endpoint — quadratic-ish
    /// setup at scale-campaign sizes.)
    pub fn port_incidence(&self, graph: &WeightedGraph) -> PortIncidence {
        let mut in_forest = vec![0u64; graph.edge_count().div_ceil(64)];
        for &id in &self.edges {
            in_forest[id.index() / 64] |= 1 << (id.index() % 64);
        }
        let mut bits = vec![0u64; graph.total_ports().div_ceil(64)];
        for v in graph.nodes() {
            let base = graph.port_base(v) as usize;
            for (p, entry) in graph.ports(v).iter().enumerate() {
                let e = entry.edge.index();
                if (in_forest[e / 64] >> (e % 64)) & 1 == 1 {
                    let slot = base + p;
                    bits[slot / 64] |= 1 << (slot % 64);
                }
            }
        }
        PortIncidence { bits }
    }
}

/// Forest membership of every `(node, port)` pair, packed as one flat
/// bitset over the graph's global port slots (see
/// [`WeightedGraph::port_slot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortIncidence {
    bits: Vec<u64>,
}

impl PortIncidence {
    /// `true` if the edge behind `port` of `node` belongs to the forest.
    pub fn contains(&self, graph: &WeightedGraph, node: NodeId, port: Port) -> bool {
        self.contains_slot(graph.port_slot(node, port))
    }

    /// `true` if the global port slot (a dense index in
    /// `0..total_ports()`) belongs to the forest.
    pub fn contains_slot(&self, slot: usize) -> bool {
        (self.bits[slot / 64] >> (slot % 64)) & 1 == 1
    }

    /// Number of set `(node, port)` pairs — `2 ×` the forest's edge count
    /// when built against the forest's own graph.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Kruskal's algorithm via sorting and union-find.
///
/// Runs in `O(m log m)`. Works on disconnected graphs (returns the minimum
/// spanning forest).
///
/// # Example
///
/// ```
/// use graphlib::{generators, mst};
///
/// let g = generators::ring(8, 42)?;
/// let t = mst::kruskal(&g);
/// assert_eq!(t.edges.len(), 7); // ring MST drops exactly one edge
/// # Ok::<(), graphlib::GraphError>(())
/// ```
pub fn kruskal(graph: &WeightedGraph) -> SpanningForest {
    let mut order: Vec<EdgeId> = (0..graph.edge_count() as u32).map(EdgeId::new).collect();
    // lint:allow(determinism) -- edge weights are pairwise distinct (WeightedGraph invariant), keys never tie
    order.sort_unstable_by_key(|&id| graph.edge(id).weight);

    let mut uf = UnionFind::new(graph.node_count());
    let mut picked = Vec::with_capacity(graph.node_count().saturating_sub(1));
    for id in order {
        let e = graph.edge(id);
        if uf.union(e.u.index(), e.v.index()) {
            picked.push(id);
        }
    }
    SpanningForest::from_unsorted(graph, picked)
}

/// Prim's algorithm with a binary heap, restarted per component.
///
/// Runs in `O(m log n)`.
pub fn prim(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.node_count();
    let mut in_tree = vec![false; n];
    let mut picked = Vec::with_capacity(n.saturating_sub(1));

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        // Min-heap via Reverse ordering on (weight, edge).
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32)>> = BinaryHeap::new();
        for entry in graph.ports(NodeId::new(start as u32)) {
            heap.push(std::cmp::Reverse((
                entry.weight,
                entry.edge.raw(),
                entry.neighbor.raw(),
            )));
        }
        while let Some(std::cmp::Reverse((_, edge_raw, to_raw))) = heap.pop() {
            let to = to_raw as usize;
            if in_tree[to] {
                continue;
            }
            in_tree[to] = true;
            picked.push(EdgeId::new(edge_raw));
            for entry in graph.ports(NodeId::new(to_raw)) {
                if !in_tree[entry.neighbor.index()] {
                    heap.push(std::cmp::Reverse((
                        entry.weight,
                        entry.edge.raw(),
                        entry.neighbor.raw(),
                    )));
                }
            }
        }
    }
    SpanningForest::from_unsorted(graph, picked)
}

/// Borůvka's algorithm: repeated minimum-outgoing-edge contraction.
///
/// This is the sequential skeleton of the distributed GHS algorithm the
/// paper builds on — each round every fragment selects its minimum outgoing
/// edge (MOE) and fragments merge along selected edges. Useful both as a
/// reference MST and as an oracle for per-phase fragment counts.
pub fn boruvka(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    let mut picked = Vec::new();
    if n == 0 {
        return SpanningForest::from_unsorted(graph, picked);
    }

    loop {
        // best[f] = cheapest edge leaving fragment with representative f.
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        let mut any = false;
        for (i, e) in graph.edges().iter().enumerate() {
            let (ru, rv) = (uf.find(e.u.index()), uf.find(e.v.index()));
            if ru == rv {
                continue;
            }
            any = true;
            let id = EdgeId::new(i as u32);
            for r in [ru, rv] {
                let better = match best[r] {
                    None => true,
                    Some(cur) => graph.edge(cur).weight > e.weight,
                };
                if better {
                    best[r] = Some(id);
                }
            }
        }
        if !any {
            break;
        }
        for id in best.into_iter().flatten() {
            let e = graph.edge(id);
            if uf.union(e.u.index(), e.v.index()) {
                picked.push(id);
            }
        }
    }
    SpanningForest::from_unsorted(graph, picked)
}

/// Counts the Borůvka phases needed until one fragment remains — an oracle
/// for the phase counts of the distributed algorithms.
pub fn boruvka_phase_count(graph: &WeightedGraph) -> usize {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    let mut phases = 0;
    loop {
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        let mut any = false;
        for (i, e) in graph.edges().iter().enumerate() {
            let (ru, rv) = (uf.find(e.u.index()), uf.find(e.v.index()));
            if ru == rv {
                continue;
            }
            any = true;
            let id = EdgeId::new(i as u32);
            for r in [ru, rv] {
                let better = match best[r] {
                    None => true,
                    Some(cur) => graph.edge(cur).weight > e.weight,
                };
                if better {
                    best[r] = Some(id);
                }
            }
        }
        if !any {
            break;
        }
        phases += 1;
        for id in best.into_iter().flatten() {
            let e = graph.edge(id);
            uf.union(e.u.index(), e.v.index());
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    fn diamond() -> WeightedGraph {
        // 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), 0-2 (5)
        GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(2, 3, 3)
            .edge(3, 0, 4)
            .edge(0, 2, 5)
            .build()
            .unwrap()
    }

    #[test]
    fn kruskal_picks_cheapest_spanning_set() {
        let g = diamond();
        let t = kruskal(&g);
        assert_eq!(
            t.edges,
            vec![EdgeId::new(0), EdgeId::new(1), EdgeId::new(2)]
        );
        assert_eq!(t.total_weight, 6);
    }

    #[test]
    fn all_three_algorithms_agree_on_diamond() {
        let g = diamond();
        let k = kruskal(&g);
        assert_eq!(k, prim(&g));
        assert_eq!(k, boruvka(&g));
    }

    #[test]
    fn all_three_agree_on_random_graphs() {
        for seed in 0..10 {
            let g = generators::random_connected(40, 0.15, seed).unwrap();
            let k = kruskal(&g);
            assert_eq!(k, prim(&g), "prim disagrees at seed {seed}");
            assert_eq!(k, boruvka(&g), "boruvka disagrees at seed {seed}");
            assert_eq!(k.edges.len(), 39);
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        // Two components: {0,1,2} triangle and {3,4} edge.
        let g = GraphBuilder::new(5)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(0, 2, 3)
            .edge(3, 4, 4)
            .build()
            .unwrap();
        for t in [kruskal(&g), prim(&g), boruvka(&g)] {
            assert_eq!(t.edges.len(), 3);
            assert_eq!(t.total_weight, 1 + 2 + 4);
        }
    }

    #[test]
    fn port_incidence_marks_both_endpoints() {
        let g = diamond();
        let t = kruskal(&g);
        let inc = t.port_incidence(&g);
        // Edge (0,1) is in the MST: port 0 of node 0 and port 0 of node 1.
        let p01 = g.port_to(NodeId::new(0), NodeId::new(1)).unwrap();
        let p10 = g.port_to(NodeId::new(1), NodeId::new(0)).unwrap();
        assert!(inc.contains(&g, NodeId::new(0), p01));
        assert!(inc.contains(&g, NodeId::new(1), p10));
        // Edge (0,2) (weight 5) is not.
        let p02 = g.port_to(NodeId::new(0), NodeId::new(2)).unwrap();
        assert!(!inc.contains(&g, NodeId::new(0), p02));
        // Every forest edge contributes exactly two set slots.
        assert_eq!(inc.count(), 2 * t.edges.len());
    }

    #[test]
    fn port_incidence_agrees_with_port_to_scan_everywhere() {
        for seed in 0..5 {
            let g = generators::random_connected(30, 0.2, seed).unwrap();
            let t = kruskal(&g);
            let inc = t.port_incidence(&g);
            for v in g.nodes() {
                for (p, entry) in g.ports(v).iter().enumerate() {
                    assert_eq!(
                        inc.contains(&g, v, Port::new(p as u32)),
                        t.contains(entry.edge),
                        "seed {seed}, node {v}, port {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn contains_uses_sorted_edges() {
        let g = diamond();
        let t = kruskal(&g);
        assert!(t.contains(EdgeId::new(0)));
        assert!(!t.contains(EdgeId::new(4)));
    }

    #[test]
    fn single_node_and_empty_graphs() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(kruskal(&g).edges.is_empty());
        assert!(prim(&g).edges.is_empty());
        assert!(boruvka(&g).edges.is_empty());
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(boruvka(&g).edges.is_empty());
    }

    #[test]
    fn boruvka_phase_count_is_logarithmic_on_paths() {
        let g = generators::path(64, 3).unwrap();
        let phases = boruvka_phase_count(&g);
        assert!(phases <= 7, "expected <= log2(64)+1 phases, got {phases}");
        assert!(phases >= 3);
    }

    #[test]
    fn boruvka_phase_count_zero_for_singleton() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(boruvka_phase_count(&g), 0);
    }
}
