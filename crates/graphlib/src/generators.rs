//! Deterministic, seeded generators for the graph families used throughout
//! the paper's experiments.
//!
//! Every generator takes a `seed` and produces the same graph for the same
//! arguments, which keeps the distributed test suites reproducible. All
//! generated weights are pairwise distinct (drawn without replacement from a
//! `poly(n)`-sized space, as in the paper's Theorem 3 construction).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, GraphError, WeightedGraph};

/// Draws `count` distinct weights from `[1, span]` with a seeded RNG.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `span < count as u64` (the space
/// cannot host that many distinct values).
pub fn distinct_weights(count: usize, span: u64, seed: u64) -> Result<Vec<u64>, GraphError> {
    if span < count as u64 {
        return Err(GraphError::InvalidSize {
            reason: format!("weight span {span} too small for {count} distinct weights"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let w = rng.gen_range(1..=span);
        if seen.insert(w) {
            out.push(w);
        }
    }
    Ok(out)
}

fn weight_span(n: usize) -> u64 {
    // A poly(n) space large enough that rejection sampling stays cheap.
    let n = n.max(2) as u64;
    (n * n * n * 64).max(1 << 16)
}

/// A cycle on `n >= 3` nodes with random distinct weights — the family of
/// Theorem 3's awake-complexity lower bound.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n < 3`.
pub fn ring(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidSize {
            reason: format!("ring needs n >= 3, got {n}"),
        });
    }
    let weights = distinct_weights(n, weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    for (i, &w) in weights.iter().enumerate() {
        b.edge(i as u32, ((i + 1) % n) as u32, w);
    }
    b.build()
}

/// A path on `n >= 1` nodes with random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0`.
pub fn path(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize {
            reason: "path needs n >= 1".to_string(),
        });
    }
    let weights = distinct_weights(n.saturating_sub(1), weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    for (i, &w) in weights.iter().enumerate() {
        b.edge(i as u32, (i + 1) as u32, w);
    }
    b.build()
}

/// A star: node 0 joined to all others, random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0`.
pub fn star(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize {
            reason: "star needs n >= 1".to_string(),
        });
    }
    let weights = distinct_weights(n.saturating_sub(1), weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(0, i as u32, weights[i - 1]);
    }
    b.build()
}

/// The complete graph `K_n` with random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0`.
pub fn complete(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize {
            reason: "complete graph needs n >= 1".to_string(),
        });
    }
    let m = n * n.saturating_sub(1) / 2;
    let weights = distinct_weights(m, weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            b.edge(i as u32, j as u32, weights[k]);
            k += 1;
        }
    }
    b.build()
}

/// A `rows × cols` grid with random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if either dimension is zero.
pub fn grid(rows: usize, cols: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidSize {
            reason: format!("grid needs positive dimensions, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let m = rows * (cols - 1) + cols * (rows - 1);
    let weights = distinct_weights(m, weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut k = 0;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(at(r, c), at(r, c + 1), weights[k]);
                k += 1;
            }
            if r + 1 < rows {
                b.edge(at(r, c), at(r + 1, c), weights[k]);
                k += 1;
            }
        }
    }
    b.build()
}

/// An Erdős–Rényi style random graph forced connected: a random spanning
/// tree plus each remaining pair independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0` or `p` is not in `[0, 1]`.
// lint:allow(determinism) -- edge probability is a generator input handed to the seeded RNG, not simulation state
pub fn random_connected(n: usize, p: f64, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize {
            reason: "random graph needs n >= 1".to_string(),
        });
    }
    // lint:allow(determinism) -- range check on the probability parameter
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidSize {
            reason: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Random spanning tree: random permutation, attach each node to a
    // uniformly random earlier node (a random recursive tree).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let (a, b) = (order[i], order[j]);
        pairs.insert((a.min(b), a.max(b)));
    }
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            if !pairs.contains(&(i, j)) && rng.gen_bool(p) {
                pairs.insert((i, j));
            }
        }
    }

    let mut sorted: Vec<(u32, u32)> = pairs.into_iter().collect();
    sorted.sort_unstable();
    let weights = distinct_weights(sorted.len(), weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    for (k, (u, v)) in sorted.into_iter().enumerate() {
        b.edge(u, v, weights[k]);
    }
    b.build()
}

/// A complete binary tree on `n >= 1` nodes (heap-shaped: node `i`'s
/// children are `2i + 1` and `2i + 2`), random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0`.
pub fn binary_tree(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize {
            reason: "binary tree needs n >= 1".to_string(),
        });
    }
    let weights = distinct_weights(n.saturating_sub(1), weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(((i - 1) / 2) as u32, i as u32, weights[i - 1]);
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Random distinct weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if spine == 0 {
        return Err(GraphError::InvalidSize {
            reason: "caterpillar needs a spine".to_string(),
        });
    }
    let n = spine + spine * legs;
    let m = spine - 1 + spine * legs;
    let weights = distinct_weights(m, weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..spine - 1 {
        b.edge(i as u32, (i + 1) as u32, weights[k]);
        k += 1;
    }
    for s in 0..spine {
        for l in 0..legs {
            b.edge(s as u32, (spine + s * legs + l) as u32, weights[k]);
            k += 1;
        }
    }
    b.build()
}

/// A barbell: two cliques of `clique` nodes joined by a path of `bridge`
/// extra nodes. Random distinct weights. Stresses the merge logic with
/// dense regions separated by a thin cut.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if clique < 2 {
        return Err(GraphError::InvalidSize {
            reason: "barbell cliques need >= 2 nodes".to_string(),
        });
    }
    let n = 2 * clique + bridge;
    let m = clique * (clique - 1) + bridge + 1;
    let weights = distinct_weights(m, weight_span(n), seed)?;
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    let add = |b: &mut GraphBuilder, u: usize, v: usize, k: &mut usize| {
        b.edge(u as u32, v as u32, weights[*k]);
        *k += 1;
    };
    // Left clique: 0..clique. Right clique: clique+bridge..n.
    for i in 0..clique {
        for j in i + 1..clique {
            add(&mut b, i, j, &mut k);
            add(&mut b, clique + bridge + i, clique + bridge + j, &mut k);
        }
    }
    // Bridge path from node clique-1 through the bridge nodes to the
    // right clique's first node.
    let mut prev = clique - 1;
    for t in 0..bridge {
        add(&mut b, prev, clique + t, &mut k);
        prev = clique + t;
    }
    add(&mut b, prev, clique + bridge, &mut k);
    b.build()
}

/// SplitMix64 finalizer — the stateless hash behind the streaming
/// generator's per-node chord offsets and weight permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A chorded cycle: the `n`-cycle plus `chords` pseudo-random chords per
/// node — the sparse scale-campaign family. Built via
/// [`WeightedGraph::from_edge_stream`], so memory high-water is the final
/// CSR representation (`O(n + m)`), never an intermediate edge list; this
/// is the family the million-node runs use.
///
/// Structure is duplicate-free by construction, which is what licenses the
/// unvalidated streaming path: node `i`'s chord `c` spans the forward
/// cyclic gap `d = 2 + ((mix(seed ^ i) + c) mod avail)` where
/// `avail = (n - 1) / 2 - 1`. Every chord gap lies in `[2, (n - 1) / 2]`,
/// and an unordered pair with cyclic gaps `{d, n - d}` has exactly one gap
/// in that range (the complementary gap exceeds `n / 2`), so each chord
/// pair is emitted by exactly one `(i, c)`; gaps `>= 2` never collide with
/// the cycle edges (gap 1); and one node's `chords <= avail` consecutive
/// residues are pairwise distinct. Weights are a seeded affine-xor
/// bijection of the edge index over `[1, 2^⌈log₂ m⌉]` — pairwise distinct
/// and bounded by `2m`, so total weights stay far from `u64` overflow even
/// at `n = 10^7`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n < 5` or
/// `chords > (n - 1) / 2 - 1`.
pub fn chorded_cycle(n: usize, chords: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if n < 5 {
        return Err(GraphError::InvalidSize {
            reason: format!("chorded cycle needs n >= 5, got {n}"),
        });
    }
    let avail = (n - 1) / 2 - 1;
    if chords > avail {
        return Err(GraphError::InvalidSize {
            reason: format!("at most {avail} distinct chords per node for n = {n}, got {chords}"),
        });
    }
    let m = n + n * chords;
    let bits = 64 - (m as u64 - 1).leading_zeros();
    let mask = (1u64 << bits) - 1;
    let mult = mix(seed) | 1;
    let xor = mix(seed ^ 0xc2b2_ae3d_27d4_eb4f) & mask;
    let weight = move |k: u64| ((k ^ xor).wrapping_mul(mult) & mask) + 1;

    WeightedGraph::from_edge_stream(n, |emit| {
        let mut k = 0u64;
        for i in 0..n {
            emit(i as u32, ((i + 1) % n) as u32, weight(k));
            k += 1;
        }
        for i in 0..n {
            let base = (mix(seed ^ i as u64) % avail as u64) as usize;
            for c in 0..chords {
                let d = 2 + (base + c) % avail;
                emit(i as u32, ((i + d) % n) as u32, weight(k));
                k += 1;
            }
        }
    })
}

/// Remaps a graph's external node ids into a sparse `[1, id_span]` space.
///
/// The deterministic algorithm's running time is `O(n N log n)` where `N`
/// is the *largest id*, not the node count; this helper builds instances
/// where `N >> n` to exercise that dependence.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `id_span < n`.
pub fn with_id_space(
    mut graph: WeightedGraph,
    id_span: u64,
    seed: u64,
) -> Result<WeightedGraph, GraphError> {
    let n = graph.node_count();
    if id_span < n as u64 {
        return Err(GraphError::InvalidSize {
            reason: format!("id span {id_span} smaller than node count {n}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    let mut seen = HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=id_span);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    graph.set_external_ids(ids)?;
    Ok(graph)
}

/// Builds a graph from a colon-separated spec string — the one grammar
/// shared by the CLI, the serve daemon, and the loadgen traces:
/// `ring:64`, `path:20`, `star:16`, `complete:12`, `bintree:31`,
/// `grid:4x8`, `random:48:0.1`, `barbell:6:3`, `caterpillar:5:2`, or
/// `scale:1000000:2` (the streaming chorded-cycle family).
///
/// The spec string is part of the service plane's cache key, so the
/// grammar is deliberately strict: no whitespace tolerance, no aliases —
/// two spellings of the same graph would otherwise occupy two cache
/// slots.
///
/// # Errors
///
/// Returns a human-readable message on malformed specs or invalid sizes.
pub fn from_spec(spec: &str, seed: u64) -> Result<WeightedGraph, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    let int = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("'{s}' is not a positive integer"))
    };
    let graph: Result<WeightedGraph, GraphError> = match (kind, args.as_slice()) {
        ("ring", [n]) => ring(int(n)?, seed),
        ("path", [n]) => path(int(n)?, seed),
        ("star", [n]) => star(int(n)?, seed),
        ("complete", [n]) => complete(int(n)?, seed),
        ("bintree", [n]) => binary_tree(int(n)?, seed),
        ("grid", [dims]) => {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid spec '{dims}' must look like 4x8"))?;
            grid(int(r)?, int(c)?, seed)
        }
        ("random", [n, p]) => {
            // lint:allow(determinism) -- parsing the random:N:P probability operand, a generator input
            let p: f64 = p
                .parse()
                .map_err(|_| format!("'{p}' is not a probability"))?;
            random_connected(int(n)?, p, seed)
        }
        ("barbell", [k, b]) => barbell(int(k)?, int(b)?, seed),
        ("caterpillar", [s, l]) => caterpillar(int(s)?, int(l)?, seed),
        ("scale", [n, c]) => chorded_cycle(int(n)?, int(c)?, seed),
        _ => {
            return Err(format!(
                "unknown graph spec '{spec}' (expected ring:N, path:N, star:N, \
                 complete:N, bintree:N, grid:RxC, random:N:P, barbell:K:B, \
                 caterpillar:S:L, or scale:N:C)"
            ))
        }
    };
    graph.map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn distinct_weights_are_distinct_and_in_range() {
        let w = distinct_weights(100, 1000, 3).unwrap();
        assert_eq!(w.len(), 100);
        let set: HashSet<u64> = w.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert!(w.iter().all(|&x| (1..=1000).contains(&x)));
    }

    #[test]
    fn distinct_weights_rejects_tiny_span() {
        assert!(distinct_weights(10, 5, 0).is_err());
    }

    #[test]
    fn from_spec_builds_every_family_and_matches_direct_calls() {
        for spec in [
            "ring:12",
            "path:9",
            "star:7",
            "complete:6",
            "bintree:15",
            "grid:3x4",
            "random:14:0.2",
            "barbell:4:2",
            "caterpillar:4:2",
            "scale:64:3",
        ] {
            let g = from_spec(spec, 1).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(g.node_count() > 0, "{spec}");
        }
        // The spec path is the direct generator call, bit for bit.
        assert_eq!(from_spec("ring:16", 7).unwrap(), ring(16, 7).unwrap());
        assert_eq!(
            from_spec("random:14:0.2", 3).unwrap(),
            random_connected(14, 0.2, 3).unwrap()
        );
    }

    #[test]
    fn from_spec_rejects_malformed_specs() {
        assert!(from_spec("ring:2", 0).is_err());
        assert!(from_spec("mystery:3", 0).is_err());
        assert!(from_spec("grid:3", 0).is_err());
        assert!(from_spec("random:5:nope", 0).is_err());
        assert!(from_spec("ring:8 ", 0).is_err(), "no whitespace tolerance");
        assert!(from_spec("", 0).unwrap_err().contains("unknown graph spec"));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ring(16, 9).unwrap(), ring(16, 9).unwrap());
        assert_eq!(
            random_connected(20, 0.3, 4).unwrap(),
            random_connected(20, 0.3, 4).unwrap()
        );
        assert_ne!(ring(16, 9).unwrap(), ring(16, 10).unwrap());
    }

    #[test]
    fn ring_shape() {
        let g = ring(10, 0).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(traversal::is_connected(&g));
        assert!(ring(2, 0).is_err());
    }

    #[test]
    fn path_shape() {
        let g = path(10, 0).unwrap();
        assert_eq!(g.edge_count(), 9);
        assert!(traversal::is_connected(&g));
        let g = path(1, 0).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert!(path(0, 0).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(10, 0).unwrap();
        assert_eq!(g.degree(crate::NodeId::new(0)), 9);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn complete_shape() {
        let g = complete(7, 0).unwrap();
        assert_eq!(g.edge_count(), 21);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 0).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert!(traversal::is_connected(&g));
        assert!(grid(0, 4, 0).is_err());
    }

    #[test]
    fn random_connected_is_connected_at_p_zero() {
        for seed in 0..5 {
            let g = random_connected(30, 0.0, seed).unwrap();
            assert!(traversal::is_connected(&g));
            assert_eq!(g.edge_count(), 29, "p=0 yields exactly a tree");
        }
    }

    #[test]
    fn random_connected_densifies_with_p() {
        let sparse = random_connected(40, 0.0, 1).unwrap();
        let dense = random_connected(40, 0.5, 1).unwrap();
        assert!(dense.edge_count() > sparse.edge_count());
        assert!(traversal::is_connected(&dense));
    }

    #[test]
    fn random_connected_rejects_bad_p() {
        assert!(random_connected(10, -0.1, 0).is_err());
        assert!(random_connected(10, 1.5, 0).is_err());
    }

    #[test]
    fn with_id_space_remaps_ids() {
        let g = ring(8, 0).unwrap();
        let g = with_id_space(g, 1000, 5).unwrap();
        let ids: Vec<u64> = g.nodes().map(|v| g.external_id(v)).collect();
        let set: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(ids.iter().all(|&id| (1..=1000).contains(&id)));
        assert!(with_id_space(ring(8, 0).unwrap(), 4, 0).is_err());
    }

    #[test]
    fn single_node_star_and_path() {
        assert_eq!(star(1, 0).unwrap().edge_count(), 0);
        assert_eq!(complete(1, 0).unwrap().edge_count(), 0);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15, 0).unwrap();
        assert_eq!(g.edge_count(), 14);
        assert!(traversal::is_connected(&g));
        // A perfect binary tree on 15 nodes has depth 3.
        assert_eq!(traversal::eccentricity(&g, crate::NodeId::new(0)), Some(3));
        assert!(binary_tree(0, 0).is_err());
        assert_eq!(binary_tree(1, 0).unwrap().edge_count(), 0);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3, 0).unwrap();
        assert_eq!(g.node_count(), 5 + 15);
        assert_eq!(g.edge_count(), 4 + 15);
        assert!(traversal::is_connected(&g));
        // Spine nodes have degree legs + path neighbors; leaves degree 1.
        assert_eq!(g.degree(crate::NodeId::new(0)), 1 + 3);
        assert_eq!(g.degree(crate::NodeId::new(2)), 2 + 3);
        assert_eq!(g.degree(crate::NodeId::new(5)), 1);
        assert!(caterpillar(0, 3, 0).is_err());
    }

    #[test]
    fn chorded_cycle_shape_and_distinct_weights() {
        let g = chorded_cycle(64, 3, 7).unwrap();
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.edge_count(), 64 * 4);
        assert!(traversal::is_connected(&g));
        // The streaming path skips dedup validation, so distinctness is
        // re-proved here: pairs and weights must be pairwise unique.
        let mut pairs = HashSet::new();
        let mut weights = HashSet::new();
        for e in g.edges() {
            assert!(pairs.insert((e.u, e.v)), "duplicate pair {:?}", (e.u, e.v));
            assert!(weights.insert(e.weight), "duplicate weight {}", e.weight);
            assert!(e.weight >= 1 && e.weight <= 2 * g.edge_count() as u64);
        }
        // Each node: 2 cycle ports + `chords` outgoing + incoming chords.
        let total_degree: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total_degree, 2 * g.edge_count());
    }

    #[test]
    fn chorded_cycle_is_deterministic_and_seed_sensitive() {
        assert_eq!(
            chorded_cycle(40, 2, 5).unwrap(),
            chorded_cycle(40, 2, 5).unwrap()
        );
        assert_ne!(
            chorded_cycle(40, 2, 5).unwrap(),
            chorded_cycle(40, 2, 6).unwrap()
        );
        // Plain cycle when chords = 0.
        let g = chorded_cycle(9, 0, 1).unwrap();
        assert_eq!(g.edge_count(), 9);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn chorded_cycle_rejects_bad_sizes() {
        assert!(chorded_cycle(4, 0, 0).is_err());
        // n = 11: gaps 2..=5 are available, so at most 4 chords per node.
        assert!(chorded_cycle(11, 4, 0).is_ok());
        assert!(chorded_cycle(11, 5, 0).is_err());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2, 0).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 4 * 3 + 3);
        assert!(traversal::is_connected(&g));
        // Bridge interior nodes have degree 2.
        assert_eq!(g.degree(crate::NodeId::new(4)), 2);
        assert!(barbell(1, 0, 0).is_err());
        // Zero-length bridge joins the cliques directly.
        let g = barbell(3, 0, 1).unwrap();
        assert_eq!(g.node_count(), 6);
        assert!(traversal::is_connected(&g));
    }
}
