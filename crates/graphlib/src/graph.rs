use std::collections::HashMap;
use std::fmt;

use crate::GraphError;

/// Identifier of a node (processor) in the network, in `0..n`.
///
/// Node ids double as the unique `O(log n)`-bit identifiers the paper's
/// model hands to each processor. Generators may remap ids to larger ranges
/// (see [`crate::generators::with_id_space`]) to exercise the deterministic
/// algorithm's dependence on the maximum id `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the id as a `usize` index into node-indexed arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A port number local to one node.
///
/// The paper's model connects each incident edge to a distinct local port;
/// a node addresses its neighbors only through ports (KT0 knowledge), not
/// through their ids. Port `p` of node `u` is the `p`-th entry of `u`'s
/// adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(u32);

impl Port {
    /// Creates a port from a raw local index.
    pub const fn new(index: u32) -> Self {
        Port(index)
    }

    /// Returns the port as a `usize` index into port-indexed arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for Port {
    fn from(value: u32) -> Self {
        Port(value)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of an undirected edge, indexing into [`WeightedGraph::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the id as a `usize` index into edge-indexed arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint (always the smaller node id).
    pub u: NodeId,
    /// The other endpoint (always the larger node id).
    pub v: NodeId,
    /// The edge weight; unique within a [`WeightedGraph`].
    pub weight: u64,
}

impl Edge {
    /// Given one endpoint, returns the opposite endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.u {
            self.v
        } else if from == self.v {
            self.u
        } else {
            panic!(
                "node {from} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// One entry of a node's adjacency (port) table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortEntry {
    /// The neighbor reached through this port.
    pub neighbor: NodeId,
    /// Weight of the connecting edge.
    pub weight: u64,
    /// Global id of the connecting edge.
    pub edge: EdgeId,
    /// The neighbor's port for the same edge (the reverse direction),
    /// precomputed in [`GraphBuilder::build`] so delivery paths never scan
    /// an adjacency list to route a reply.
    pub back_port: Port,
}

/// An immutable, undirected, connected(-checkable) weighted graph with
/// distinct edge weights and per-node port numbering.
///
/// Construction goes through [`GraphBuilder`], which validates all of the
/// paper's structural assumptions (no self-loops, no parallel edges,
/// distinct weights), or through the streaming
/// [`WeightedGraph::from_edge_stream`] for million-node instances. The
/// port tables are stored in CSR form — one flat `PortEntry` array plus
/// an `n + 1` offset array — so a graph costs `O(n + m)` contiguous
/// memory with no per-node allocation, while the [`Port`]-indexed view
/// (the model's KT0 knowledge: a node sees only its ports and incident
/// weights) is unchanged.
///
/// # Example
///
/// ```
/// use graphlib::{GraphBuilder, NodeId, Port};
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1, 10)
///     .edge(1, 2, 20)
///     .build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// let entry = g.port_entry(NodeId::new(1), Port::new(0));
/// assert_eq!(entry.neighbor, NodeId::new(0));
/// # Ok::<(), graphlib::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR port tables: node `v`'s ports are
    /// `adj[offsets[v] as usize..offsets[v + 1] as usize]`.
    adj: Vec<PortEntry>,
    offsets: Vec<u32>,
    /// Optional remapped "external" ids (the `[1, N]` id space of the
    /// deterministic algorithm). `external_ids[i]` is node `i`'s id.
    external_ids: Vec<u64>,
}

impl WeightedGraph {
    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up an edge by id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId::new)
    }

    /// Degree (number of ports) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        (self.offsets[node.index() + 1] - self.offsets[node.index()]) as usize
    }

    /// The full port table of `node`, indexed by [`Port`].
    pub fn ports(&self, node: NodeId) -> &[PortEntry] {
        &self.adj[self.offsets[node.index()] as usize..self.offsets[node.index() + 1] as usize]
    }

    /// The port-table entry behind `port` of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range for `node`.
    pub fn port_entry(&self, node: NodeId, port: Port) -> PortEntry {
        self.ports(node)[port.index()]
    }

    /// Finds the port of `node` whose edge leads to `neighbor`, if the two
    /// nodes are adjacent.
    pub fn port_to(&self, node: NodeId, neighbor: NodeId) -> Option<Port> {
        self.ports(node)
            .iter()
            .position(|e| e.neighbor == neighbor)
            .map(|i| Port::new(i as u32))
    }

    /// Returns the edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<&Edge> {
        self.ports(u)
            .iter()
            .find(|e| e.neighbor == v)
            .map(|e| self.edge(e.edge))
    }

    /// Total number of port slots across all nodes (`2m`): the length of
    /// the flat CSR port array and the domain of [`Self::port_slot`].
    pub fn total_ports(&self) -> usize {
        self.adj.len()
    }

    /// The first global port slot of `node` in the flat CSR array; `node`'s
    /// port `p` occupies slot `port_base(node) + p`.
    pub fn port_base(&self, node: NodeId) -> u32 {
        self.offsets[node.index()]
    }

    /// The global slot of `(node, port)` in the flat CSR port array: a
    /// dense index in `0..total_ports()` usable for flat side tables
    /// (bitsets, weight arrays) without per-node allocation.
    pub fn port_slot(&self, node: NodeId, port: Port) -> usize {
        self.offsets[node.index()] as usize + port.index()
    }

    /// All port weights in one flat array, indexed by global port slot
    /// (see [`Self::port_slot`]). One allocation for the whole graph.
    pub fn flat_port_weights(&self) -> Vec<u64> {
        self.adj.iter().map(|e| e.weight).collect()
    }

    /// Heap bytes held by the graph representation (edges, CSR port
    /// array, offsets, external ids) — the `graph_bytes` figure the
    /// scale-campaign memory accounting reports.
    pub fn memory_bytes(&self) -> u64 {
        (self.edges.capacity() * std::mem::size_of::<Edge>()
            + self.adj.capacity() * std::mem::size_of::<PortEntry>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.external_ids.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Total weight of a set of edges.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, ids: I) -> u64 {
        ids.into_iter().map(|id| self.edge(id).weight).sum()
    }

    /// The "external" id of a node: the value a processor would present as
    /// its unique id. Defaults to `node index + 1` (ids in `[1, n]`) unless
    /// remapped by [`crate::generators::with_id_space`].
    pub fn external_id(&self, node: NodeId) -> u64 {
        self.external_ids[node.index()]
    }

    /// The largest external id `N`, an input the paper's deterministic
    /// algorithm assumes every node knows.
    pub fn max_external_id(&self) -> u64 {
        self.external_ids.iter().copied().max().unwrap_or(0)
    }

    /// Replaces the external id assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `ids.len() != n`, if any id is
    /// zero (ids live in `[1, N]`), or if ids are not pairwise distinct.
    pub fn set_external_ids(&mut self, ids: Vec<u64>) -> Result<(), GraphError> {
        if ids.len() != self.n {
            return Err(GraphError::InvalidSize {
                reason: format!("expected {} external ids, got {}", self.n, ids.len()),
            });
        }
        if ids.contains(&0) {
            return Err(GraphError::InvalidSize {
                reason: "external ids must be in [1, N]".to_string(),
            });
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(GraphError::InvalidSize {
                reason: "external ids must be distinct".to_string(),
            });
        }
        self.external_ids = ids;
        Ok(())
    }

    /// Builds a graph from a *replayable* edge stream without ever
    /// materializing an intermediate adjacency or edge list: the stream
    /// closure is invoked **twice** with an `emit(u, v, weight)` sink —
    /// once to count degrees (sizing the CSR arrays exactly), once to
    /// fill them in place. Memory high-water is the final `O(n + m)`
    /// representation itself, which is what makes `n = 10^6`-plus
    /// generator runs feasible.
    ///
    /// The stream must be deterministic (both invocations must emit the
    /// same edge sequence) and must satisfy the builder's structural
    /// contract by construction: no duplicate undirected pairs and
    /// pairwise-distinct weights. Unlike [`GraphBuilder::build`], those
    /// two properties are **not** validated here — hash-set dedup at
    /// `10^7` edges is exactly the cost this path exists to avoid — so
    /// only generators with a no-duplicates proof should use it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`]
    /// for malformed endpoints, and [`GraphError::InvalidSize`] if the
    /// two passes disagree or the graph exceeds `u32` port capacity.
    pub fn from_edge_stream<F>(n: usize, mut stream: F) -> Result<WeightedGraph, GraphError>
    where
        F: FnMut(&mut dyn FnMut(u32, u32, u64)),
    {
        // Pass 1: validate endpoints, count edges and per-node degrees.
        let mut degree = vec![0u32; n];
        let mut count = 0usize;
        let mut error: Option<GraphError> = None;
        stream(&mut |u, v, _w| {
            if error.is_some() {
                return;
            }
            if u as usize >= n {
                error = Some(GraphError::NodeOutOfRange { node: u, n });
            } else if v as usize >= n {
                error = Some(GraphError::NodeOutOfRange { node: v, n });
            } else if u == v {
                error = Some(GraphError::SelfLoop { node: u });
            } else {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
                count += 1;
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        let total_ports = checked_port_count(count)?;
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }

        // Pass 2: replay the stream into the exactly-sized CSR arrays.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![PLACEHOLDER_PORT; total_ports];
        let mut edges: Vec<Edge> = Vec::with_capacity(count);
        stream(&mut |u, v, weight| {
            if error.is_some() {
                return;
            }
            let (ui, vi) = (u as usize, v as usize);
            if edges.len() == count
                || ui >= n
                || vi >= n
                || u == v
                || cursor[ui] >= offsets[ui + 1]
                || cursor[vi] >= offsets[vi + 1]
            {
                error = Some(GraphError::InvalidSize {
                    reason: "edge stream changed between counting and filling passes".to_string(),
                });
                return;
            }
            let id = EdgeId::new(edges.len() as u32);
            let port_at_u = Port::new(cursor[ui] - offsets[ui]);
            let port_at_v = Port::new(cursor[vi] - offsets[vi]);
            adj[cursor[ui] as usize] = PortEntry {
                neighbor: NodeId::new(v),
                weight,
                edge: id,
                back_port: port_at_v,
            };
            adj[cursor[vi] as usize] = PortEntry {
                neighbor: NodeId::new(u),
                weight,
                edge: id,
                back_port: port_at_u,
            };
            cursor[ui] += 1;
            cursor[vi] += 1;
            edges.push(Edge {
                u: NodeId::new(u.min(v)),
                v: NodeId::new(u.max(v)),
                weight,
            });
        });
        if let Some(e) = error {
            return Err(e);
        }
        if edges.len() != count {
            return Err(GraphError::InvalidSize {
                reason: "edge stream changed between counting and filling passes".to_string(),
            });
        }

        let external_ids = (1..=n as u64).collect();
        Ok(WeightedGraph {
            n,
            edges,
            adj,
            offsets,
            external_ids,
        })
    }
}

/// Inert CSR slot value; every slot is overwritten during the fill pass.
const PLACEHOLDER_PORT: PortEntry = PortEntry {
    neighbor: NodeId::new(0),
    weight: 0,
    edge: EdgeId::new(0),
    back_port: Port::new(0),
};

/// `2m` with a `u32` capacity guard (ports and offsets are `u32`).
fn checked_port_count(edge_count: usize) -> Result<usize, GraphError> {
    let total = edge_count
        .checked_mul(2)
        .filter(|&t| t <= u32::MAX as usize);
    total.ok_or_else(|| GraphError::InvalidSize {
        reason: format!("{edge_count} edges exceed the u32 port-slot capacity"),
    })
}

/// Fills the CSR port array for `edges` (in insertion order), reproducing
/// exactly the port numbering of the historical per-node push loop: an
/// edge's port at each endpoint is the number of earlier edges incident to
/// that endpoint, so the `k`-th inserted edge lands on the same ports —
/// and the same precomputed back ports — as it always did. Every pinned
/// execution fingerprint depends on this order being preserved.
fn csr_fill(n: usize, edges: &[Edge]) -> Result<(Vec<PortEntry>, Vec<u32>), GraphError> {
    let total_ports = checked_port_count(edges.len())?;
    let mut offsets = vec![0u32; n + 1];
    for e in edges {
        offsets[e.u.index() + 1] += 1;
        offsets[e.v.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut adj = vec![PLACEHOLDER_PORT; total_ports];
    for (k, e) in edges.iter().enumerate() {
        let (ui, vi) = (e.u.index(), e.v.index());
        let id = EdgeId::new(k as u32);
        let port_at_u = Port::new(cursor[ui] - offsets[ui]);
        let port_at_v = Port::new(cursor[vi] - offsets[vi]);
        adj[cursor[ui] as usize] = PortEntry {
            neighbor: e.v,
            weight: e.weight,
            edge: id,
            back_port: port_at_v,
        };
        adj[cursor[vi] as usize] = PortEntry {
            neighbor: e.u,
            weight: e.weight,
            edge: id,
            back_port: port_at_u,
        };
        cursor[ui] += 1;
        cursor[vi] += 1;
    }
    Ok((adj, offsets))
}

/// Incremental builder for [`WeightedGraph`].
///
/// Accumulates edges, then [`GraphBuilder::build`] validates the structure.
/// The builder is non-consuming so graphs can be assembled in loops.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, u64)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge `(u, v)` with the given weight.
    pub fn edge(&mut self, u: u32, v: u32, weight: u64) -> &mut Self {
        self.edges.push((u, v, weight));
        self
    }

    /// Adds many edges at once.
    pub fn edges<I: IntoIterator<Item = (u32, u32, u64)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates and produces the immutable graph.
    ///
    /// # Errors
    ///
    /// Returns an error if any edge references a node outside `0..n`, is a
    /// self-loop, duplicates another edge's endpoints, or repeats a weight.
    /// Connectivity is *not* required here; use
    /// [`crate::traversal::is_connected`] when it matters.
    pub fn build(&self) -> Result<WeightedGraph, GraphError> {
        let n = self.n;
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut seen_weights = HashMap::with_capacity(self.edges.len());
        let mut seen_pairs = HashMap::with_capacity(self.edges.len());

        for &(u, v, weight) in &self.edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if let Some(_prev) = seen_weights.insert(weight, (u, v)) {
                return Err(GraphError::DuplicateWeight { weight });
            }
            let key = (u.min(v), u.max(v));
            if seen_pairs.insert(key, weight).is_some() {
                return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
            }
            edges.push(Edge {
                u: NodeId::new(key.0),
                v: NodeId::new(key.1),
                weight,
            });
        }

        let (adj, offsets) = csr_fill(n, &edges)?;
        let external_ids = (1..=n as u64).collect();
        Ok(WeightedGraph {
            n,
            edges,
            adj,
            offsets,
            external_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        GraphBuilder::new(3)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(0, 2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_adjacency_with_port_order() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        // Node 0's ports follow insertion order: first edge (0,1), then (0,2).
        let p0 = g.ports(NodeId::new(0));
        assert_eq!(p0[0].neighbor, NodeId::new(1));
        assert_eq!(p0[1].neighbor, NodeId::new(2));
        assert_eq!(p0[0].weight, 1);
        assert_eq!(p0[1].weight, 3);
    }

    #[test]
    fn port_to_finds_reverse_direction() {
        let g = triangle();
        let p = g.port_to(NodeId::new(2), NodeId::new(0)).unwrap();
        assert_eq!(g.port_entry(NodeId::new(2), p).neighbor, NodeId::new(0));
        assert_eq!(g.port_to(NodeId::new(2), NodeId::new(2)), None);
    }

    #[test]
    fn back_ports_invert_every_port() {
        let g = triangle();
        for v in g.nodes() {
            for (i, entry) in g.ports(v).iter().enumerate() {
                // The precomputed reverse port agrees with a linear scan…
                assert_eq!(Some(entry.back_port), g.port_to(entry.neighbor, v));
                // …and following it round-trips back to (v, port i).
                let back = g.port_entry(entry.neighbor, entry.back_port);
                assert_eq!(back.neighbor, v);
                assert_eq!(back.back_port, Port::new(i as u32));
                assert_eq!(back.edge, entry.edge);
            }
        }
    }

    #[test]
    fn edge_between_and_other() {
        let g = triangle();
        let e = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        assert_eq!(e.weight, 2);
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(1));
        assert!(g.edge_between(NodeId::new(0), NodeId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        let _ = e.other(NodeId::new(2));
    }

    #[test]
    fn rejects_duplicate_weight() {
        let err = GraphBuilder::new(3)
            .edge(0, 1, 5)
            .edge(1, 2, 5)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateWeight { weight: 5 });
    }

    #[test]
    fn rejects_duplicate_edge_even_with_flipped_endpoints() {
        let err = GraphBuilder::new(3)
            .edge(0, 1, 5)
            .edge(1, 0, 6)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let err = GraphBuilder::new(2).edge(1, 1, 5).build().unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
        let err = GraphBuilder::new(2).edge(0, 2, 5).build().unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2, n: 2 });
    }

    #[test]
    fn external_ids_default_to_one_based() {
        let g = triangle();
        assert_eq!(g.external_id(NodeId::new(0)), 1);
        assert_eq!(g.external_id(NodeId::new(2)), 3);
        assert_eq!(g.max_external_id(), 3);
    }

    #[test]
    fn external_ids_validate() {
        let mut g = triangle();
        assert!(g.set_external_ids(vec![5, 9, 2]).is_ok());
        assert_eq!(g.max_external_id(), 9);
        assert!(g.set_external_ids(vec![1, 2]).is_err());
        assert!(g.set_external_ids(vec![0, 1, 2]).is_err());
        assert!(g.set_external_ids(vec![4, 4, 2]).is_err());
    }

    #[test]
    fn total_weight_sums_selected_edges() {
        let g = triangle();
        let all: Vec<EdgeId> = (0..3).map(EdgeId::new).collect();
        assert_eq!(g.total_weight(all), 6);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_external_id(), 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(Port::new(1).to_string(), "p1");
        assert_eq!(EdgeId::new(0).to_string(), "e0");
    }

    #[test]
    fn global_port_slots_are_dense_and_ordered() {
        let g = triangle();
        assert_eq!(g.total_ports(), 6);
        let mut seen = vec![false; g.total_ports()];
        for v in g.nodes() {
            assert_eq!(g.port_base(v) as usize, g.port_slot(v, Port::new(0)));
            for p in 0..g.degree(v) {
                let slot = g.port_slot(v, Port::new(p as u32));
                assert!(!seen[slot], "slot {slot} assigned twice");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "port slots not dense");
    }

    #[test]
    fn flat_port_weights_match_port_tables() {
        let g = triangle();
        let flat = g.flat_port_weights();
        assert_eq!(flat.len(), g.total_ports());
        for v in g.nodes() {
            for (p, entry) in g.ports(v).iter().enumerate() {
                assert_eq!(flat[g.port_slot(v, Port::new(p as u32))], entry.weight);
            }
        }
    }

    #[test]
    fn memory_bytes_counts_the_csr_arrays() {
        let g = triangle();
        let floor = (3 * std::mem::size_of::<Edge>()
            + 6 * std::mem::size_of::<PortEntry>()
            + 4 * std::mem::size_of::<u32>()
            + 3 * std::mem::size_of::<u64>()) as u64;
        assert!(g.memory_bytes() >= floor, "{} < {floor}", g.memory_bytes());
        assert_eq!(GraphBuilder::new(0).build().unwrap().total_ports(), 0);
    }

    #[test]
    fn edge_stream_matches_builder_exactly() {
        // Interleaved insertion order exercises the cursor fill: ports and
        // back ports must equal the builder's push-order assignment.
        let spec = [(0u32, 1u32, 10u64), (2, 1, 20), (3, 0, 30), (1, 3, 40)];
        let built = {
            let mut b = GraphBuilder::new(4);
            for &(u, v, w) in &spec {
                b.edge(u, v, w);
            }
            b.build().unwrap()
        };
        let streamed = WeightedGraph::from_edge_stream(4, |emit| {
            for &(u, v, w) in &spec {
                emit(u, v, w);
            }
        })
        .unwrap();
        assert_eq!(built, streamed);
    }

    #[test]
    fn edge_stream_validates_endpoints() {
        let err = WeightedGraph::from_edge_stream(2, |emit| emit(0, 2, 1)).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2, n: 2 });
        let err = WeightedGraph::from_edge_stream(2, |emit| emit(1, 1, 1)).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn edge_stream_rejects_nondeterministic_streams() {
        let mut pass = 0;
        let err = WeightedGraph::from_edge_stream(3, |emit| {
            pass += 1;
            if pass == 1 {
                emit(0, 1, 1);
            } else {
                emit(0, 1, 1);
                emit(1, 2, 2);
            }
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidSize { .. }));
    }
}
