use std::error::Error;
use std::fmt;

/// Errors produced when building or generating graphs.
///
/// Every constructor in this crate validates its input eagerly; a
/// `GraphError` always describes a structural problem with the requested
/// graph, never an internal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A duplicate edge weight was supplied. The sleeping-model MST paper
    /// assumes distinct weights (making the MST unique) and this crate
    /// enforces that assumption.
    DuplicateWeight {
        /// The weight that appeared more than once.
        weight: u64,
    },
    /// The same unordered node pair was given two edges (multigraphs are
    /// not supported).
    DuplicateEdge {
        /// One endpoint of the repeated edge.
        u: u32,
        /// The other endpoint of the repeated edge.
        v: u32,
    },
    /// An edge references a node index outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied.
    SelfLoop {
        /// The node with the self-loop.
        node: u32,
    },
    /// The generated or supplied graph is not connected, but the requested
    /// construction requires connectivity.
    Disconnected,
    /// A generator was asked for an impossible size (for example a ring on
    /// fewer than three nodes).
    InvalidSize {
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateWeight { weight } => {
                write!(
                    f,
                    "duplicate edge weight {weight} (weights must be distinct)"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between nodes {u} and {v}")
            }
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidSize { reason } => write!(f, "invalid graph size: {reason}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::DuplicateWeight { weight: 7 };
        assert!(e.to_string().contains("duplicate edge weight 7"));
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidSize {
            reason: "n must be >= 3".into(),
        };
        assert!(e.to_string().contains("n must be >= 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
