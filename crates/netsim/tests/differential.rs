//! Differential tests: one generic kernel, three interchangeable time
//! drivers. The calendar driver (heap-jumping, the default behind
//! [`Simulator::run`]), the synchronous driver (ticks every round), and
//! the naive driver (O(n)-scan oracle, also reachable as
//! [`netsim::engine::run_naive`]) share the kernel body but disagree on
//! the entire scheduling core, so agreement here pins down the hot
//! path's observable semantics: final protocol states, the full
//! [`RunStats`] (awake counts, rounds, message delivery/loss, per-edge
//! bits), the execution trace, and the metrics stream.
//!
//! The legacy pairwise tests (calendar vs `run_naive`) are kept as-is;
//! the `all_three_drivers_*` section below runs the full driver matrix
//! through [`SimConfig::with_executor`] — including metrics on/off,
//! fault plans, and the sparse shapes (empty graph, single node,
//! all-asleep runs, one wake a million rounds out) where a calendar
//! jump and a round-by-round grind diverge most easily.

use proptest::prelude::*;

use graphlib::{generators, GraphBuilder};
use netsim::{
    engine, EnergyModel, Envelope, Executor, ExecutorScratch, FaultPlan, NextWake, NodeCtx, Outbox,
    Protocol, Round, SimConfig, SimError, Simulator, WakePolicy,
};

/// SplitMix64 — the same tiny generator the protocols in `mst-core` use
/// for their private coins. Deterministic from the seed alone.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A deliberately chaotic protocol: wakes on a private pseudo-random
/// schedule (derived from `ctx.rng_seed`, so both executors see the same
/// coins), sends random payloads on a random subset of ports each wake,
/// and folds everything it receives into an order-sensitive digest. Any
/// divergence in scheduling, routing, inbox ordering, or delivery/loss
/// between the executors changes the digest or the stats.
#[derive(Debug)]
struct Chaotic {
    rng: SplitMix64,
    wakes_left: u32,
    max_gap: u64,
    received: Vec<(Round, u32, u64)>,
    digest: u64,
}

impl Chaotic {
    fn new(ctx: &NodeCtx, wakes: u32, max_gap: u64) -> Self {
        Chaotic {
            rng: SplitMix64(ctx.rng_seed),
            wakes_left: wakes,
            max_gap,
            received: Vec::new(),
            digest: 0,
        }
    }
}

impl Protocol for Chaotic {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        if self.wakes_left == 0 {
            return NextWake::Halt;
        }
        NextWake::At(1 + self.rng.next() % self.max_gap)
    }

    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
        for p in ctx.ports() {
            if self.rng.next().is_multiple_of(2) {
                outbox.push(p, round ^ (self.rng.next() % 1024));
            }
        }
    }

    fn deliver(&mut self, _ctx: &NodeCtx, round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        for e in inbox {
            self.received.push((round, e.port.raw(), e.msg));
            self.digest = self
                .digest
                .rotate_left(7)
                .wrapping_add(round ^ u64::from(e.port.raw()).wrapping_mul(e.msg | 1));
        }
        self.wakes_left -= 1;
        if self.wakes_left == 0 {
            NextWake::Halt
        } else {
            NextWake::At(round + 1 + self.rng.next() % self.max_gap)
        }
    }
}

/// Runs both executors on the same instance and asserts full agreement.
fn assert_executors_agree(
    graph: &graphlib::WeightedGraph,
    master_seed: u64,
    wakes: u32,
    max_gap: u64,
) -> Result<(), TestCaseError> {
    let config = SimConfig::default().with_seed(master_seed).with_trace();
    let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);

    let fast = Simulator::new(graph, config.clone()).run(factory).unwrap();
    let slow = engine::run_naive(graph, &config, factory).unwrap();

    prop_assert_eq!(&fast.stats, &slow.stats);
    prop_assert_eq!(&fast.trace, &slow.trace);
    prop_assert_eq!(fast.states.len(), slow.states.len());
    for (a, b) in fast.states.iter().zip(&slow.states) {
        prop_assert_eq!(&a.received, &b.received);
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.wakes_left, b.wakes_left);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random sparse graphs, random seeds, sparse wake schedules (large
    /// gaps force the event-driven executor to skip long silent
    /// stretches the naive executor grinds through round by round).
    #[test]
    fn event_driven_matches_naive_on_random_graphs(
        n in 3usize..14,
        graph_seed in 0u64..1000,
        master_seed in 0u64..1000,
        wakes in 1u32..6,
        max_gap in 1u64..40,
    ) {
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        assert_executors_agree(&g, master_seed, wakes, max_gap)?;
    }

    /// Dense graphs maximize message traffic (and loss, since schedules
    /// rarely align), stressing routing and inbox assembly.
    #[test]
    fn event_driven_matches_naive_on_complete_graphs(
        n in 3usize..9,
        master_seed in 0u64..1000,
        wakes in 1u32..5,
        max_gap in 1u64..12,
    ) {
        let g = generators::complete(n, 11).unwrap();
        assert_executors_agree(&g, master_seed, wakes, max_gap)?;
    }

    /// One [`ExecutorScratch`] threaded through a *sequence* of random
    /// runs (different graphs, sizes, seeds, schedules) must behave
    /// exactly like allocating fresh buffers each time. This is the test
    /// that catches stale-buffer leaks: a wake-queue stamp, arena range,
    /// or stats vector surviving from run k would corrupt run k+1.
    #[test]
    fn reused_scratch_matches_naive_across_consecutive_runs(
        runs in proptest::collection::vec(
            (3usize..12, 0u64..1000, 0u64..1000, 1u32..5, 1u64..30), 2..6),
    ) {
        let mut scratch = ExecutorScratch::new();
        for &(n, graph_seed, master_seed, wakes, max_gap) in &runs {
            let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
            let config = SimConfig::default().with_seed(master_seed).with_trace();
            let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);

            let pooled = Simulator::new(&g, config.clone())
                .run_with_scratch(&mut scratch, factory)
                .unwrap();
            let slow = engine::run_naive(&g, &config, factory).unwrap();

            prop_assert_eq!(&pooled.stats, &slow.stats);
            prop_assert_eq!(&pooled.trace, &slow.trace);
            for (a, b) in pooled.states.iter().zip(&slow.states) {
                prop_assert_eq!(&a.received, &b.received);
                prop_assert_eq!(a.digest, b.digest);
            }
        }
    }

    /// Shrinking-size sequences are the nastiest reuse case: buffers sized
    /// for a big run must not leak entries into a smaller one (ranges,
    /// stamps, and per-node vectors all shrink).
    #[test]
    fn reused_scratch_survives_shrinking_graphs(
        master_seed in 0u64..1000,
        wakes in 1u32..5,
    ) {
        let mut scratch = ExecutorScratch::new();
        for n in [13usize, 7, 3] {
            let g = generators::complete(n, 11).unwrap();
            let config = SimConfig::default().with_seed(master_seed).with_trace();
            let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, 8);

            let pooled = Simulator::new(&g, config.clone())
                .run_with_scratch(&mut scratch, factory)
                .unwrap();
            let slow = engine::run_naive(&g, &config, factory).unwrap();
            prop_assert_eq!(&pooled.stats, &slow.stats);
            prop_assert_eq!(&pooled.trace, &slow.trace);
            for (a, b) in pooled.states.iter().zip(&slow.states) {
                prop_assert_eq!(a.digest, b.digest);
            }
        }
    }
}

/// The executors also agree on a real protocol run end to end: the
/// randomized MST algorithm's full message choreography over both
/// executors yields identical stats (a fixed-seed spot check — the
/// proptests above cover the scheduling space).
#[test]
fn executors_agree_under_dense_synchronous_load() {
    let g = generators::grid(4, 5, 9).unwrap();
    // Everyone awake every round for a while: zero loss, maximal traffic.
    struct Lockstep {
        left: u32,
        sum: u64,
    }
    impl Protocol for Lockstep {
        type Msg = u64;
        fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
            NextWake::At(1)
        }
        fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
            for p in ctx.ports() {
                outbox.push(p, round + u64::from(p.raw()));
            }
        }
        fn deliver(&mut self, _ctx: &NodeCtx, _round: Round, inbox: &[Envelope<u64>]) -> NextWake {
            self.sum += inbox.iter().map(|e| e.msg).sum::<u64>();
            self.left -= 1;
            if self.left == 0 {
                NextWake::Halt
            } else {
                NextWake::At(_round + 1)
            }
        }
    }
    let config = SimConfig::default().with_trace();
    let factory = |_: &NodeCtx| Lockstep { left: 20, sum: 0 };
    let fast = Simulator::new(&g, config.clone()).run(factory).unwrap();
    let slow = engine::run_naive(&g, &config, factory).unwrap();
    assert_eq!(fast.stats, slow.stats);
    assert_eq!(fast.trace, slow.trace);
    assert_eq!(fast.stats.messages_lost, 0);
    for (a, b) in fast.states.iter().zip(&slow.states) {
        assert_eq!(a.sum, b.sum);
    }
}

/// Runs both executors under the same [`FaultPlan`] and asserts full
/// agreement. Faults are adjudicated by stateless seeded streams keyed
/// on (round, node/edge), so the executors must reach identical
/// verdicts no matter how differently they schedule the rounds.
fn assert_executors_agree_with_faults(
    graph: &graphlib::WeightedGraph,
    master_seed: u64,
    wakes: u32,
    max_gap: u64,
    plan: FaultPlan,
) -> Result<(), TestCaseError> {
    let config = SimConfig::default()
        .with_seed(master_seed)
        .with_trace()
        .with_faults(plan);
    let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);

    let fast = Simulator::new(graph, config.clone()).run(factory).unwrap();
    let slow = engine::run_naive(graph, &config, factory).unwrap();

    prop_assert_eq!(&fast.stats, &slow.stats);
    prop_assert_eq!(&fast.trace, &slow.trace);
    prop_assert_eq!(fast.states.len(), slow.states.len());
    for (a, b) in fast.states.iter().zip(&slow.states) {
        prop_assert_eq!(&a.received, &b.received);
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.wakes_left, b.wakes_left);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fault plane must not open a gap between the executors: random
    /// plans mixing drops, duplicates, spurious sleeps, wake jitter, and
    /// crashes still yield bit-identical stats, traces, and states.
    #[test]
    fn executors_agree_under_random_fault_plans(
        n in 3usize..12,
        graph_seed in 0u64..500,
        master_seed in 0u64..500,
        wakes in 1u32..5,
        max_gap in 1u64..20,
        fault_seed in 0u64..1000,
        drop_ppm in 0u32..700_000,
        dup_ppm in 0u32..700_000,
        sleep_ppm in 0u32..600_000,
        jitter in 0u64..4,
        crashes in proptest::collection::vec((0u32..16, 1u64..30), 0..3),
    ) {
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        let mut plan = FaultPlan::seeded(fault_seed)
            .with_drop_ppm(drop_ppm)
            .with_duplicate_ppm(dup_ppm)
            .with_spurious_sleep_ppm(sleep_ppm)
            .with_wake_jitter(jitter);
        for &(node, round) in &crashes {
            plan = plan.with_crash(node % n as u32, round);
        }
        assert_executors_agree_with_faults(&g, master_seed, wakes, max_gap, plan)?;
    }

    /// Drop-heavy plans on dense graphs: the adjudication order inside a
    /// round (drop before the receiver-awake check, duplicate after
    /// delivery) must match between the executors under maximal traffic.
    #[test]
    fn executors_agree_under_heavy_drops_on_complete_graphs(
        n in 3usize..8,
        master_seed in 0u64..500,
        fault_seed in 0u64..1000,
        drop_ppm in 500_000u32..1_000_000,
        dup_ppm in 0u32..1_000_000,
    ) {
        let g = generators::complete(n, 11).unwrap();
        let plan = FaultPlan::seeded(fault_seed)
            .with_drop_ppm(drop_ppm)
            .with_duplicate_ppm(dup_ppm);
        assert_executors_agree_with_faults(&g, master_seed, 3, 6, plan)?;
    }
}

/// Runs the same instance under all three time drivers — selected purely
/// through [`SimConfig::with_executor`], the way every caller above the
/// engine does it — and asserts bit-identical outcomes: stats, trace,
/// metrics, and final protocol states.
fn assert_all_drivers_agree(
    graph: &graphlib::WeightedGraph,
    base: &SimConfig,
    wakes: u32,
    max_gap: u64,
) -> Result<(), TestCaseError> {
    let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);
    let reference = Simulator::new(graph, base.clone().with_executor(Executor::Calendar))
        .run(factory)
        .unwrap();
    for executor in [Executor::Sync, Executor::Naive] {
        let other = Simulator::new(graph, base.clone().with_executor(executor))
            .run(factory)
            .unwrap();
        prop_assert_eq!(&reference.stats, &other.stats, "{} stats", executor);
        prop_assert_eq!(&reference.trace, &other.trace, "{} trace", executor);
        prop_assert_eq!(&reference.metrics, &other.metrics, "{} metrics", executor);
        prop_assert_eq!(reference.states.len(), other.states.len());
        for (a, b) in reference.states.iter().zip(&other.states) {
            prop_assert_eq!(&a.received, &b.received);
            prop_assert_eq!(a.digest, b.digest);
            prop_assert_eq!(a.wakes_left, b.wakes_left);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full driver matrix on random graphs: metrics and tracing
    /// toggled independently, an optional fault plan (drops, spurious
    /// sleeps, wake jitter, crashes) layered on top. Driver choice must
    /// be observationally invisible in every combination.
    #[test]
    fn all_three_drivers_agree_on_random_graphs(
        n in 3usize..12,
        graph_seed in 0u64..500,
        master_seed in 0u64..500,
        wakes in 1u32..5,
        max_gap in 1u64..30,
        metrics in any::<bool>(),
        trace in any::<bool>(),
        faults in proptest::option::of((
            0u64..1000,
            0u32..600_000,
            0u32..500_000,
            0u64..3,
            proptest::collection::vec((0u32..16, 1u64..25), 0..3),
        )),
    ) {
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        let mut config = SimConfig::default().with_seed(master_seed);
        if metrics {
            config = config.with_metrics();
        }
        if trace {
            config = config.with_trace();
        }
        if let Some((fault_seed, drop_ppm, sleep_ppm, jitter, crashes)) = faults {
            let mut plan = FaultPlan::seeded(fault_seed)
                .with_drop_ppm(drop_ppm)
                .with_spurious_sleep_ppm(sleep_ppm)
                .with_wake_jitter(jitter);
            for &(node, round) in &crashes {
                plan = plan.with_crash(node % n as u32, round);
            }
            config = config.with_faults(plan);
        }
        assert_all_drivers_agree(&g, &config, wakes, max_gap)?;
    }

    /// Same matrix on sparse wake schedules with *huge* gaps: most
    /// surfaced rounds are separated by thousands of silent rounds the
    /// synchronous and naive drivers must grind through one by one while
    /// the calendar driver jumps. Any off-by-one in the grind (a round
    /// surfaced early, a stale wake surfaced late) breaks agreement.
    #[test]
    fn all_three_drivers_agree_across_long_silent_stretches(
        n in 2usize..6,
        graph_seed in 0u64..200,
        master_seed in 0u64..200,
        wakes in 1u32..4,
        max_gap in 500u64..4_000,
        metrics in any::<bool>(),
    ) {
        let g = generators::random_connected(n, 0.5, graph_seed).unwrap();
        let mut config = SimConfig::default().with_seed(master_seed).with_trace();
        if metrics {
            config = config.with_metrics();
        }
        assert_all_drivers_agree(&g, &config, wakes, max_gap)?;
    }
}

/// n = 0: no nodes, no wakes, nothing to schedule. Every driver must
/// return an empty zero-round outcome instead of panicking on an empty
/// heap / empty scan.
#[test]
fn all_three_drivers_agree_on_the_empty_graph() {
    let g = GraphBuilder::new(0).build().unwrap();
    let config = SimConfig::default().with_trace().with_metrics();
    assert_all_drivers_agree(&g, &config, 3, 10).unwrap();
    let out = Simulator::new(&g, config.with_executor(Executor::Naive))
        .run(|ctx: &NodeCtx| Chaotic::new(ctx, 3, 10))
        .unwrap();
    assert_eq!(out.stats.rounds, 0);
    assert_eq!(out.stats.awake_total(), 0);
    assert_eq!(out.metrics.last_round(), 0);
    assert!(out.states.is_empty());
}

/// n = 1: a single node with no ports wakes a few times, sends nothing,
/// and halts. The degenerate no-edges routing path must agree too.
#[test]
fn all_three_drivers_agree_on_a_single_node() {
    let g = GraphBuilder::new(1).build().unwrap();
    let config = SimConfig::default().with_trace().with_metrics();
    assert_all_drivers_agree(&g, &config, 4, 7).unwrap();
}

/// Every node halts at init: the run has *no* active round at all. The
/// calendar heap starts empty, the synchronous driver has no target to
/// tick toward, and the naive scan sees all-`None` on its first pass —
/// all three must report zero rounds and an empty metrics stream.
#[test]
fn all_three_drivers_agree_when_every_node_sleeps_forever() {
    #[derive(Debug)]
    struct NeverWakes;
    impl Protocol for NeverWakes {
        type Msg = u64;
        fn init(&mut self, _: &NodeCtx) -> NextWake {
            NextWake::Halt
        }
        fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<u64>) {}
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }
    let g = generators::ring(6, 1).unwrap();
    let base = SimConfig::default().with_trace().with_metrics();
    let mut traces = Vec::new();
    for executor in [Executor::Calendar, Executor::Sync, Executor::Naive] {
        let out = Simulator::new(&g, base.clone().with_executor(executor))
            .run(|_| NeverWakes)
            .unwrap();
        assert_eq!(out.stats.rounds, 0, "{executor}");
        assert_eq!(out.stats.awake_total(), 0, "{executor}");
        assert_eq!(out.stats.messages_delivered, 0, "{executor}");
        assert_eq!(out.metrics.last_round(), 0, "{executor}");
        assert_eq!(out.metrics.active_rounds(), 0, "{executor}");
        traces.push(out.trace);
    }
    // The init-time halt decisions are traced, but no round ever runs —
    // and the trace (init events only) is identical across drivers.
    assert_eq!(traces[0], traces[1]);
    assert_eq!(traces[0], traces[2]);
}

/// One node schedules a single wake a million rounds out; everyone else
/// halts immediately. The calendar driver jumps straight there; the
/// synchronous and naive drivers must grind through 999 999 silent
/// rounds without surfacing any of them. The message it sends goes to a
/// halted neighbor and must count as lost under every driver.
#[test]
fn all_three_drivers_agree_on_a_single_deep_wake() {
    const DEEP: u64 = 1_000_000;

    #[derive(Debug)]
    struct DeepSleeper;
    impl Protocol for DeepSleeper {
        type Msg = u64;
        fn init(&mut self, ctx: &NodeCtx) -> NextWake {
            if ctx.node.raw() == 0 {
                NextWake::At(DEEP)
            } else {
                NextWake::Halt
            }
        }
        fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
            for p in ctx.ports() {
                outbox.push(p, round);
            }
        }
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }

    let g = generators::path(2, 1).unwrap();
    let base = SimConfig::default().with_trace().with_metrics();
    let reference = Simulator::new(&g, base.clone().with_executor(Executor::Calendar))
        .run(|_| DeepSleeper)
        .unwrap();
    assert_eq!(reference.stats.rounds, DEEP);
    assert_eq!(reference.stats.awake_total(), 1);
    assert_eq!(reference.stats.messages_lost, 1);
    assert_eq!(reference.metrics.last_round(), DEEP);
    assert_eq!(reference.metrics.active_rounds(), 1);
    for executor in [Executor::Sync, Executor::Naive] {
        let out = Simulator::new(&g, base.clone().with_executor(executor))
            .run(|_| DeepSleeper)
            .unwrap();
        assert_eq!(out.stats, reference.stats, "{executor}");
        assert_eq!(out.trace, reference.trace, "{executor}");
        assert_eq!(out.metrics, reference.metrics, "{executor}");
    }
}

/// Like [`assert_all_drivers_agree`], but tolerant of typed failures: a
/// budgeted energy model can end the run in
/// [`SimError::EnergyExhausted`], and a non-identity [`WakePolicy`] can
/// starve a protocol into [`SimError::Stalled`] or the watchdog. All
/// three drivers must then fail with the *same* typed error — agreement
/// on failures is as load-bearing as agreement on outcomes.
fn assert_all_drivers_agree_or_fail_identically(
    graph: &graphlib::WeightedGraph,
    base: &SimConfig,
    wakes: u32,
    max_gap: u64,
) -> Result<(), TestCaseError> {
    let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);
    let reference =
        Simulator::new(graph, base.clone().with_executor(Executor::Calendar)).run(factory);
    for executor in [Executor::Sync, Executor::Naive] {
        let other = Simulator::new(graph, base.clone().with_executor(executor)).run(factory);
        match (&reference, &other) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.stats, &b.stats, "{} stats", executor);
                prop_assert_eq!(&a.trace, &b.trace, "{} trace", executor);
                prop_assert_eq!(&a.metrics, &b.metrics, "{} metrics", executor);
                for (sa, sb) in a.states.iter().zip(&b.states) {
                    prop_assert_eq!(&sa.received, &sb.received, "{}", executor);
                    prop_assert_eq!(sa.digest, sb.digest, "{}", executor);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "{} error", executor),
            (a, b) => prop_assert!(
                false,
                "{executor} diverged on success/failure: calendar={a:?} other={b:?}"
            ),
        }
    }
    Ok(())
}

/// Every wake-policy variant the proptests sweep, decoded from raw draws
/// (the vendored proptest has no combinators). Policies hash their
/// decisions statelessly like fault plans, so each variant must be
/// driver-invisible both alone and under a fault plan.
fn decode_policy(variant: u8, seed: u64, param: u64) -> WakePolicy {
    match variant % 4 {
        0 => WakePolicy::Block,
        1 => WakePolicy::DutyCycle { period: 1 + param },
        2 => WakePolicy::HeavyTail { seed, cap: param },
        _ => WakePolicy::AdversarialShift {
            seed,
            max_shift: param,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: every [`WakePolicy`] variant — with and without a
    /// fault plan layered on top, and with an optional priced energy
    /// model — is observationally identical across all three drivers.
    /// The policy rewrites wakes *after* fault jitter, so the stacking
    /// order is part of the pinned contract.
    #[test]
    fn all_three_drivers_agree_under_every_wake_policy(
        n in 3usize..12,
        graph_seed in 0u64..500,
        master_seed in 0u64..500,
        wakes in 1u32..5,
        max_gap in 1u64..20,
        policy_variant in 0u8..4,
        policy_seed in 0u64..1000,
        policy_param in 0u64..16,
        metrics in any::<bool>(),
        priced in any::<bool>(),
        faults in proptest::option::of((
            0u64..1000,
            0u32..500_000,
            0u32..400_000,
            0u64..3,
        )),
    ) {
        let policy = decode_policy(policy_variant, policy_seed, policy_param);
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        let mut config = SimConfig::default()
            .with_seed(master_seed)
            .with_trace()
            .with_wake_policy(policy);
        if metrics {
            config = config.with_metrics();
        }
        if priced {
            config = config.with_energy(EnergyModel::reference());
        }
        if let Some((fault_seed, drop_ppm, sleep_ppm, jitter)) = faults {
            config = config.with_faults(
                FaultPlan::seeded(fault_seed)
                    .with_drop_ppm(drop_ppm)
                    .with_spurious_sleep_ppm(sleep_ppm)
                    .with_wake_jitter(jitter),
            );
        }
        assert_all_drivers_agree_or_fail_identically(&g, &config, wakes, max_gap)?;
    }

    /// Satellite: budgeted runs agree across drivers whether the budget
    /// suffices or exhausts mid-run — including budgets so tight the
    /// first awake round already overdraws.
    #[test]
    fn all_three_drivers_agree_under_random_budgets(
        n in 3usize..10,
        graph_seed in 0u64..300,
        master_seed in 0u64..300,
        wakes in 1u32..4,
        max_gap in 1u64..12,
        budget in 0u64..40_000,
    ) {
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        let config = SimConfig::default()
            .with_seed(master_seed)
            .with_trace()
            .with_energy(EnergyModel::reference().with_budget(budget));
        assert_all_drivers_agree_or_fail_identically(&g, &config, wakes, max_gap)?;
    }
}

/// Edge case: a zero budget under the reference model is exhausted by
/// the very first awake round — every driver must type the failure as
/// [`SimError::EnergyExhausted`] with the identical (node, round), and
/// the exhausted node is the first waker in serial node order.
#[test]
fn zero_budget_exhausts_in_the_first_awake_round_under_every_driver() {
    #[derive(Debug)]
    struct WakeOnce;
    impl Protocol for WakeOnce {
        type Msg = u64;
        fn init(&mut self, _: &NodeCtx) -> NextWake {
            NextWake::At(1)
        }
        fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<u64>) {}
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }
    let g = generators::ring(5, 1).unwrap();
    let config = SimConfig::default().with_energy(EnergyModel::reference().with_budget(0));
    let mut verdicts = Vec::new();
    for executor in [Executor::Calendar, Executor::Sync, Executor::Naive] {
        let err = Simulator::new(&g, config.clone().with_executor(executor))
            .run(|_| WakeOnce)
            .unwrap_err();
        let SimError::EnergyExhausted { node, round } = err else {
            panic!("{executor}: expected exhaustion, got {err}");
        };
        assert_eq!(round, 1, "{executor}");
        assert_eq!(node.raw(), 0, "{executor}: first waker in node order");
        verdicts.push((node, round));
    }
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
}

/// Edge case: every node overdraws in the same wide broadcast round —
/// the whole network dies mid-broadcast at once. The adjudication runs
/// in serial node order after the round's deliveries, so the reported
/// node is node 0 under every driver *and every shard count* (exhaustion
/// is adjudicated outside the sharded half-step).
#[test]
fn whole_network_exhaustion_mid_broadcast_is_identical_across_drivers_and_shards() {
    let n = 300usize; // past the wide-round gate so shards engage
    let g = generators::chorded_cycle(n, 2, 7).unwrap();
    // Two lockstep broadcast rounds fit the budget, the third overdraws
    // every node in the same round.
    let model = EnergyModel::default()
        .with_round_cost(1000)
        .with_budget(2500);
    let factory = |_: &NodeCtx| WideWave {
        left: 10,
        digest: 0,
    };
    let mut verdicts = Vec::new();
    for executor in [Executor::Calendar, Executor::Sync, Executor::Naive] {
        for shards in [1u32, 2, 4] {
            let config = SimConfig::default()
                .with_energy(model)
                .with_executor(executor)
                .with_shards(shards);
            let err = Simulator::new(&g, config).run(factory).unwrap_err();
            let SimError::EnergyExhausted { node, round } = err else {
                panic!("{executor}/shards={shards}: expected exhaustion, got {err}");
            };
            assert_eq!(round, 3, "{executor}/shards={shards}");
            assert_eq!(node.raw(), 0, "{executor}/shards={shards}");
            verdicts.push((node, round));
        }
    }
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
}

/// Edge case: duty-cycle period 1 is the identity policy (every round is
/// on-cycle), so it must take the exact no-policy kernel path — bit-
/// identical stats, trace, metrics, and states versus [`WakePolicy::Block`].
#[test]
fn duty_cycle_period_one_is_bit_identical_to_block() {
    let g = generators::random_connected(10, 0.3, 5).unwrap();
    let factory = |ctx: &NodeCtx| Chaotic::new(ctx, 4, 9);
    let base = SimConfig::default()
        .with_seed(3)
        .with_trace()
        .with_metrics();
    let block = Simulator::new(&g, base.clone()).run(factory).unwrap();
    for policy in [
        WakePolicy::DutyCycle { period: 1 },
        WakePolicy::DutyCycle { period: 0 },
        WakePolicy::HeavyTail { seed: 9, cap: 0 },
        WakePolicy::AdversarialShift {
            seed: 9,
            max_shift: 0,
        },
    ] {
        assert!(policy.is_identity());
        let gated = Simulator::new(&g, base.clone().with_wake_policy(policy))
            .run(factory)
            .unwrap();
        assert_eq!(block.stats, gated.stats, "{policy:?}");
        assert_eq!(block.trace, gated.trace, "{policy:?}");
        assert_eq!(block.metrics, gated.metrics, "{policy:?}");
        for (a, b) in block.states.iter().zip(&gated.states) {
            assert_eq!(a.digest, b.digest, "{policy:?}");
        }
    }
}

/// A duty cycle actually *moves* wakes: under period 5 every surfaced
/// round is on-cycle under every driver (the policy applies after fault
/// jitter, inside the one kernel).
#[test]
fn duty_cycle_rounds_are_on_cycle_under_every_driver() {
    let g = generators::ring(8, 2).unwrap();
    let period = 5u64;
    let base = SimConfig::default()
        .with_seed(11)
        .with_metrics()
        .with_wake_policy(WakePolicy::DutyCycle { period });
    for executor in [Executor::Calendar, Executor::Sync, Executor::Naive] {
        let out = Simulator::new(&g, base.clone().with_executor(executor))
            .run(|ctx: &NodeCtx| Chaotic::new(ctx, 3, 13))
            .unwrap();
        for r in &out.metrics.per_round {
            assert_eq!(
                (r.round - 1) % period,
                0,
                "{executor}: round {} is off-cycle",
                r.round
            );
        }
        assert!(out.metrics.active_rounds() > 0, "{executor}");
    }
}

/// A maximally wide workload for the shard matrix: every node wakes in
/// lockstep every round, sends a weight-derived payload on every port,
/// and folds its inbox into an order-sensitive digest. With hundreds of
/// nodes awake per round this crosses the kernel's wide-round gate, so
/// `--shards K` actually fans the send half-step out across threads —
/// any divergence in partitioning, outbox merge order, fault
/// adjudication, or inbox assembly shows up in the digest or the stats.
#[derive(Debug)]
struct WideWave {
    left: u32,
    digest: u64,
}

impl Protocol for WideWave {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        NextWake::At(1)
    }

    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
        for p in ctx.ports() {
            outbox.push(p, round ^ ctx.port_weights[p.index()]);
        }
    }

    fn deliver(&mut self, _ctx: &NodeCtx, round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        for e in inbox {
            self.digest = self
                .digest
                .rotate_left(9)
                .wrapping_add(round ^ u64::from(e.port.raw()).wrapping_mul(e.msg | 1));
        }
        self.left -= 1;
        if self.left == 0 {
            NextWake::Halt
        } else {
            NextWake::At(round + 1)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharding the send half-step must be observationally invisible on
    /// the rounds it actually parallelizes: wide lockstep rounds on the
    /// chorded-cycle family (every node awake at once, far past the
    /// wide-round gate) yield the serial baseline's stats, metrics, and
    /// states at every shard count — across fault plans (drops exercise
    /// the per-shard verdict replay, duplicates the arena clone order)
    /// and with metrics recording toggled both ways.
    #[test]
    fn shard_counts_agree_on_wide_rounds(
        n in 150usize..280,
        master_seed in 0u64..500,
        rounds in 2u32..6,
        metrics in any::<bool>(),
        faults in proptest::option::of((0u64..1000, 0u32..400_000, 0u32..400_000)),
    ) {
        let g = generators::chorded_cycle(n, 2, 7).unwrap();
        let mut config = SimConfig::default().with_seed(master_seed);
        if metrics {
            config = config.with_metrics();
        }
        if let Some((fault_seed, drop_ppm, dup_ppm)) = faults {
            config = config.with_faults(
                FaultPlan::seeded(fault_seed)
                    .with_drop_ppm(drop_ppm)
                    .with_duplicate_ppm(dup_ppm),
            );
        }
        let factory = |_: &NodeCtx| WideWave { left: rounds, digest: 0 };
        let serial = Simulator::new(&g, config.clone().with_shards(1))
            .run(factory)
            .unwrap();
        prop_assert!(serial.stats.messages_delivered > 0);
        for shards in [2u32, 7] {
            let sharded = Simulator::new(&g, config.clone().with_shards(shards))
                .run(factory)
                .unwrap();
            prop_assert_eq!(&serial.stats, &sharded.stats, "shards={}", shards);
            prop_assert_eq!(&serial.metrics, &sharded.metrics, "shards={}", shards);
            for (a, b) in serial.states.iter().zip(&sharded.states) {
                prop_assert_eq!(a.digest, b.digest, "shards={}", shards);
                prop_assert_eq!(a.left, b.left, "shards={}", shards);
            }
        }
    }

    /// Below the wide-round gate (small graphs, sparse chaotic wakes) a
    /// shard request falls back to the serial path round by round; the
    /// knob must still be invisible there — including with tracing on,
    /// which pins every round serial regardless of the shard count.
    #[test]
    fn shard_counts_agree_on_narrow_runs(
        n in 3usize..12,
        graph_seed in 0u64..300,
        master_seed in 0u64..300,
        wakes in 1u32..5,
        max_gap in 1u64..20,
        metrics in any::<bool>(),
        trace in any::<bool>(),
    ) {
        let g = generators::random_connected(n, 0.3, graph_seed).unwrap();
        let mut config = SimConfig::default().with_seed(master_seed);
        if metrics {
            config = config.with_metrics();
        }
        if trace {
            config = config.with_trace();
        }
        let factory = |ctx: &NodeCtx| Chaotic::new(ctx, wakes, max_gap);
        let serial = Simulator::new(&g, config.clone().with_shards(1))
            .run(factory)
            .unwrap();
        for shards in [2u32, 7] {
            let sharded = Simulator::new(&g, config.clone().with_shards(shards))
                .run(factory)
                .unwrap();
            prop_assert_eq!(&serial.stats, &sharded.stats, "shards={}", shards);
            prop_assert_eq!(&serial.trace, &sharded.trace, "shards={}", shards);
            prop_assert_eq!(&serial.metrics, &sharded.metrics, "shards={}", shards);
            for (a, b) in serial.states.iter().zip(&sharded.states) {
                prop_assert_eq!(&a.received, &b.received, "shards={}", shards);
                prop_assert_eq!(a.digest, b.digest, "shards={}", shards);
                prop_assert_eq!(a.wakes_left, b.wakes_left, "shards={}", shards);
            }
        }
    }
}
