//! The sharded-lane boundary, pinned three ways: the engagement
//! threshold is exactly [`SHARD_MIN_AWAKE`] = 128 awake nodes (unit
//! cases at 127/128/129), the decision and the lane partition are pure
//! functions of `(awake set, shards, record_trace)` (proptests), and
//! full runs straddling the threshold are bit-identical across shard
//! counts (the contract the decision is allowed to exist under).

use proptest::prelude::*;

use graphlib::generators;
use netsim::engine::shard_chunk_len;
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round, SimConfig, Simulator};

// --- engagement threshold: exact unit cases ---------------------------

#[test]
fn threshold_is_exactly_128_awake() {
    // 127 awake: serial, regardless of the configured shard count.
    assert_eq!(shard_chunk_len(127, 2, false), None);
    assert_eq!(shard_chunk_len(127, 4, false), None);
    // 128 awake: the sharded path engages.
    assert_eq!(shard_chunk_len(128, 2, false), Some(64));
    assert_eq!(shard_chunk_len(128, 4, false), Some(32));
    // 129 awake: ceil-divided chunks, last lane short.
    assert_eq!(shard_chunk_len(129, 2, false), Some(65));
    assert_eq!(shard_chunk_len(129, 4, false), Some(33));
}

#[test]
fn single_shard_and_traced_runs_never_engage() {
    assert_eq!(shard_chunk_len(1_000_000, 1, false), None);
    assert_eq!(shard_chunk_len(1_000_000, 0, false), None);
    // Trace payload formatting is sequential; tracing forces serial.
    assert_eq!(shard_chunk_len(1_000_000, 4, true), None);
    assert_eq!(shard_chunk_len(128, 2, true), None);
}

#[test]
fn oversubscribed_shards_raise_the_gate() {
    // The gate is max(128, shards): more shards than awake nodes would
    // spawn empty workers, so the gate rises with the shard count.
    assert_eq!(shard_chunk_len(200, 256, false), None);
    assert_eq!(shard_chunk_len(255, 256, false), None);
    assert_eq!(shard_chunk_len(256, 256, false), Some(1));
    assert_eq!(shard_chunk_len(300, 256, false), Some(2));
}

// --- purity and partition shape: proptests ----------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The decision is a pure function of its three inputs: calling it
    /// twice (or a thousand times) with the same inputs yields the same
    /// answer — no hidden state, no wall-clock, no thread identity.
    #[test]
    fn decision_is_pure(awake_len in 0usize..100_000, shards in 0u32..64, trace in any::<bool>()) {
        let first = shard_chunk_len(awake_len, shards, trace);
        for _ in 0..4 {
            prop_assert_eq!(shard_chunk_len(awake_len, shards, trace), first);
        }
    }

    /// Whenever the sharded path engages, chunking the ascending awake
    /// set by the returned length is a partition: lanes concatenate back
    /// to the exact awake set, every lane is non-empty, lane count never
    /// exceeds the shard count, and the slices are contiguous in node
    /// order (the property the disjoint `split_at_mut` in the kernel
    /// depends on).
    #[test]
    fn lane_partition_is_exact(
        awake_len in 1usize..5_000,
        offset in 0u32..1000,
        stride in 1u32..5,
        shards in 2u32..17,
    ) {
        // An arbitrary ascending awake set — the partition must depend
        // on nothing but its length.
        let awake: Vec<u32> = (0..awake_len as u32).map(|i| offset + i * stride).collect();
        match shard_chunk_len(awake.len(), shards, false) {
            None => prop_assert!(awake.len() < 128.max(shards as usize)),
            Some(chunk_len) => {
                prop_assert!(awake.len() >= 128);
                let lanes: Vec<&[u32]> = awake.chunks(chunk_len).collect();
                prop_assert!(lanes.len() <= shards as usize);
                prop_assert!(lanes.iter().all(|lane| !lane.is_empty()));
                let rejoined: Vec<u32> = lanes.concat();
                prop_assert_eq!(rejoined, awake);
            }
        }
    }

    /// Same awake set ⇒ same lane slices, independent of which nodes the
    /// set happens to contain: two different awake sets of equal length
    /// produce identical chunk boundaries.
    #[test]
    fn partition_depends_only_on_the_awake_set_size(
        awake_len in 128usize..5_000,
        shards in 2u32..9,
    ) {
        let dense: Vec<u32> = (0..awake_len as u32).collect();
        let sparse: Vec<u32> = (0..awake_len as u32).map(|i| i * 7 + 3).collect();
        let chunk = shard_chunk_len(awake_len, shards, false);
        prop_assert!(chunk.is_some());
        let chunk_len = chunk.expect("engaged above the gate");
        let dense_bounds: Vec<usize> = dense.chunks(chunk_len).map(<[u32]>::len).collect();
        let sparse_bounds: Vec<usize> = sparse.chunks(chunk_len).map(<[u32]>::len).collect();
        prop_assert_eq!(dense_bounds, sparse_bounds);
    }
}

// --- full runs straddling the threshold -------------------------------

/// Dense round-synchronous traffic: with `n` nodes all awake every
/// round, the engagement decision is exercised at exactly `n` awake.
struct Lockstep {
    left: u32,
    sum: u64,
}

impl Protocol for Lockstep {
    type Msg = u64;
    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        NextWake::At(1)
    }
    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
        for p in ctx.ports() {
            outbox.push(p, round + u64::from(p.raw()));
        }
    }
    fn deliver(&mut self, _ctx: &NodeCtx, round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        self.sum += inbox.iter().map(|e| e.msg).sum::<u64>();
        self.left -= 1;
        if self.left == 0 {
            NextWake::Halt
        } else {
            NextWake::At(round + 1)
        }
    }
}

/// Runs the ring of size `n` under `shards` and returns (stats, sums).
fn lockstep_run(n: usize, shards: u32) -> (netsim::RunStats, Vec<u64>) {
    let g = generators::ring(n, 7).expect("ring generator");
    let config = SimConfig::default().with_seed(11).with_shards(shards);
    let out = Simulator::new(&g, config)
        .run(|_| Lockstep { left: 12, sum: 0 })
        .expect("lockstep run");
    let sums = out.states.iter().map(|s| s.sum).collect();
    (out.stats, sums)
}

#[test]
fn runs_at_127_128_129_awake_are_shard_invariant() {
    // 127: below the gate everywhere (serial even at --shards 4).
    // 128: exactly at the gate — the sharded path's first engagement.
    // 129: one past it — an uneven final lane.
    for n in [127usize, 128, 129] {
        let serial = lockstep_run(n, 1);
        for shards in [2u32, 4] {
            let sharded = lockstep_run(n, shards);
            assert_eq!(
                serial.0, sharded.0,
                "stats diverged at n={n} shards={shards}"
            );
            assert_eq!(
                serial.1, sharded.1,
                "states diverged at n={n} shards={shards}"
            );
        }
    }
}
