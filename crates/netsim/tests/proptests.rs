//! Property-based tests of the simulator's accounting invariants.

use proptest::prelude::*;

use graphlib::generators;
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round, SimConfig, Simulator};

/// A node that wakes at an arbitrary (per-node) schedule of rounds, sends
/// a unit message on every port at each wake, and halts after its last
/// scheduled round.
#[derive(Debug, Clone)]
struct Scheduled {
    rounds: Vec<Round>, // strictly increasing
    at: usize,
    received: u64,
}

impl Scheduled {
    fn new(mut rounds: Vec<Round>) -> Self {
        rounds.sort_unstable();
        rounds.dedup();
        Scheduled {
            rounds,
            at: 0,
            received: 0,
        }
    }
}

impl Protocol for Scheduled {
    type Msg = ();

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        match self.rounds.first() {
            Some(&r) => NextWake::At(r),
            None => NextWake::Halt,
        }
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<()>) {
        outbox.extend(ctx.ports().map(|p| Envelope::new(p, ())));
    }

    fn deliver(&mut self, _ctx: &NodeCtx, _round: Round, inbox: &[Envelope<()>]) -> NextWake {
        self.received += inbox.len() as u64;
        self.at += 1;
        match self.rounds.get(self.at) {
            Some(&r) => NextWake::At(r),
            None => NextWake::Halt,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every sent message is either delivered or lost, and
    /// deliveries happen exactly when both endpoints share an awake round.
    #[test]
    fn message_conservation(
        n in 3usize..12,
        schedules in proptest::collection::vec(
            proptest::collection::vec(1u64..40, 1..6), 3..12),
    ) {
        prop_assume!(schedules.len() >= n);
        let g = generators::ring(n, 1).unwrap();
        let scheds: Vec<Vec<Round>> = schedules[..n].to_vec();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| Scheduled::new(scheds[ctx.node.index()].clone()))
            .unwrap();

        // Expected sends: per node, degree × number of distinct rounds.
        let mut expected_sent = 0u64;
        let mut norm: Vec<std::collections::BTreeSet<Round>> = Vec::new();
        for s in &scheds {
            let set: std::collections::BTreeSet<Round> = s.iter().copied().collect();
            expected_sent += 2 * set.len() as u64; // ring degree 2
            norm.push(set);
        }
        prop_assert_eq!(out.stats.messages_sent(), expected_sent);

        // Expected deliveries: for each directed edge (u → v), |rounds(u) ∩ rounds(v)|.
        let mut expected_delivered = 0u64;
        for u in 0..n {
            for v in [(u + 1) % n, (u + n - 1) % n] {
                expected_delivered += norm[u].intersection(&norm[v]).count() as u64;
            }
        }
        prop_assert_eq!(out.stats.messages_delivered, expected_delivered);
        prop_assert_eq!(
            out.stats.messages_lost,
            expected_sent - expected_delivered
        );

        // Awake accounting equals the distinct scheduled rounds.
        for (i, set) in norm.iter().enumerate() {
            prop_assert_eq!(out.stats.awake_by_node[i], set.len() as u64);
        }

        // Run time is the last round anyone was scheduled.
        let last = norm.iter().filter_map(|s| s.iter().max()).max().copied().unwrap();
        prop_assert_eq!(out.stats.rounds, last);
    }

    /// Determinism: identical configs produce identical outcomes.
    #[test]
    fn runs_are_deterministic(n in 3usize..10, seed in 0u64..50) {
        let g = generators::ring(n, seed).unwrap();
        let sched: Vec<Vec<Round>> = (0..n).map(|i| vec![1 + (i as u64 * 3) % 7, 9]).collect();
        let a = Simulator::new(&g, SimConfig::default().with_seed(seed))
            .run(|ctx| Scheduled::new(sched[ctx.node.index()].clone()))
            .unwrap();
        let b = Simulator::new(&g, SimConfig::default().with_seed(seed))
            .run(|ctx| Scheduled::new(sched[ctx.node.index()].clone()))
            .unwrap();
        prop_assert_eq!(a.stats, b.stats);
    }

    /// Bits accounting: per-edge bits equal messages crossing the edge (a
    /// unit message is 1 bit), and received bits sum only deliveries.
    #[test]
    fn bit_accounting(n in 3usize..10, round in 1u64..20) {
        let g = generators::ring(n, 0).unwrap();
        // Everyone awake in the same single round: all messages delivered.
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Scheduled::new(vec![round]))
            .unwrap();
        prop_assert_eq!(out.stats.messages_lost, 0);
        // Each edge carries exactly 2 unit messages (one per direction).
        prop_assert!(out.stats.bits_by_edge.iter().all(|&b| b == 2));
        prop_assert_eq!(
            out.stats.bits_received_by_node.iter().sum::<u64>(),
            out.stats.messages_delivered
        );
    }
}
