//! Engine-level semantics of the fault plane: each fault kind observed
//! in isolation through a tiny deterministic protocol, plus the
//! pay-for-what-you-use guarantee (inert plan ≡ no plan).

use graphlib::generators;
use netsim::{
    Envelope, FaultPlan, NextWake, NodeCtx, Outbox, Protocol, Round, SimConfig, SimError,
    Simulator, TraceEvent,
};

/// Every node wakes in `my_round`, sends a unit message on every port,
/// counts what it receives, and halts.
#[derive(Debug)]
struct OneShot {
    my_round: Round,
    received: usize,
}

impl Protocol for OneShot {
    type Msg = ();

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        NextWake::At(self.my_round)
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<()>) {
        outbox.extend(ctx.ports().map(|p| Envelope::new(p, ())));
    }

    fn deliver(&mut self, _ctx: &NodeCtx, _round: Round, inbox: &[Envelope<()>]) -> NextWake {
        self.received += inbox.len();
        NextWake::Halt
    }
}

fn lockstep(round: Round) -> impl Fn(&NodeCtx) -> OneShot {
    move |_| OneShot {
        my_round: round,
        received: 0,
    }
}

#[test]
fn full_drop_plan_destroys_every_message() {
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(1).with_drop_ppm(netsim::faults::PPM_SCALE);
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    // All 12 transmissions are destroyed in flight: none delivered, none
    // lost to sleep (everyone was awake), all accounted as injected.
    assert_eq!(out.stats.messages_delivered, 0);
    assert_eq!(out.stats.messages_lost, 0);
    assert_eq!(out.stats.injected_drops, 12);
    assert!(out.states.iter().all(|s| s.received == 0));
    // The sender still paid for the transmission.
    assert!(out.stats.bits_by_edge.iter().all(|&b| b == 2));
    let dropped = out
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
        .count();
    assert_eq!(dropped, 12);
}

#[test]
fn full_duplicate_plan_doubles_every_delivery() {
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(1).with_duplicate_ppm(netsim::faults::PPM_SCALE);
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    assert_eq!(out.stats.messages_delivered, 24);
    assert_eq!(out.stats.dup_deliveries, 12);
    assert_eq!(out.stats.messages_lost, 0);
    // Every node sees both copies of both neighbor messages.
    assert!(out.states.iter().all(|s| s.received == 4));
    assert_eq!(out.trace.deliveries().count(), 24);
}

#[test]
fn crash_plan_halts_the_node_before_it_acts() {
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(0).with_crash(2, 5);
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    // Node 2 crashes at its first wake (round 7 ≥ crash round 5): it
    // never sends, and its neighbors' messages to it are model losses.
    assert_eq!(out.stats.crashed_nodes, 1);
    assert_eq!(out.stats.awake_by_node[2], 0);
    assert_eq!(out.stats.messages_delivered, 8);
    assert_eq!(out.stats.messages_lost, 2);
    assert_eq!(out.states[2].received, 0);
    assert!(out
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Crashed { round: 7, node } if node.raw() == 2)));
    // A crash round in the future leaves the node untouched.
    let plan = FaultPlan::seeded(0).with_crash(2, 100);
    let out = Simulator::new(&g, SimConfig::default().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    assert_eq!(out.stats.crashed_nodes, 0);
    assert_eq!(out.stats.messages_delivered, 12);
}

#[test]
fn permanent_spurious_sleep_hits_the_round_budget() {
    let g = generators::ring(4, 0).unwrap();
    let plan = FaultPlan::seeded(3).with_spurious_sleep_ppm(netsim::faults::PPM_SCALE);
    let err = Simulator::new(
        &g,
        SimConfig::default().with_max_rounds(64).with_faults(plan),
    )
    .run(lockstep(1))
    .unwrap_err();
    // Every wake suppressed forever: the nodes can never act, and the
    // run is cut off by the (typed) round budget, not a hang.
    assert!(matches!(err, SimError::MaxRoundsExceeded { .. }));
}

#[test]
fn moderate_spurious_sleep_delays_but_preserves_liveness() {
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(9).with_spurious_sleep_ppm(400_000);
    let out = Simulator::new(&g, SimConfig::default().with_faults(plan.clone()))
        .run(lockstep(3))
        .unwrap();
    // Everyone eventually woke exactly once and halted.
    assert!(out.stats.awake_by_node.iter().all(|&a| a == 1));
    assert!(out.stats.rounds >= 3);
    // Determinism: the same plan replays bit-identically.
    let again = Simulator::new(&g, SimConfig::default().with_faults(plan))
        .run(lockstep(3))
        .unwrap();
    assert_eq!(out.stats, again.stats);
}

#[test]
fn wake_jitter_slips_schedules_deterministically() {
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(4).with_wake_jitter(5);
    let base = Simulator::new(&g, SimConfig::default())
        .run(lockstep(7))
        .unwrap();
    let jittered = Simulator::new(&g, SimConfig::default().with_faults(plan.clone()))
        .run(lockstep(7))
        .unwrap();
    assert!(jittered.stats.rounds >= base.stats.rounds);
    // Slipped schedules misalign the lockstep: some messages get lost.
    assert!(jittered.stats.messages_delivered < base.stats.messages_delivered);
    let again = Simulator::new(&g, SimConfig::default().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    assert_eq!(jittered.stats, again.stats);
}

#[test]
fn inert_plan_is_bit_identical_to_no_plan() {
    let g = generators::random_connected(12, 0.3, 5).unwrap();
    let bare = Simulator::new(&g, SimConfig::default().with_trace())
        .run(lockstep(4))
        .unwrap();
    // A zero-intensity plan — even with a wild seed — changes nothing.
    let inert = Simulator::new(
        &g,
        SimConfig::default()
            .with_trace()
            .with_faults(FaultPlan::seeded(0xdead_beef)),
    )
    .run(lockstep(4))
    .unwrap();
    assert_eq!(bare.stats, inert.stats);
    assert_eq!(bare.trace, inert.trace);
    assert_eq!(inert.stats.injected_drops, 0);
    assert_eq!(inert.stats.dup_deliveries, 0);
    assert_eq!(inert.stats.crashed_nodes, 0);
}

#[cfg(feature = "validate")]
#[test]
fn audit_reconciles_faulted_runs() {
    use netsim::audit;
    let g = generators::complete(6, 2).unwrap();
    let plan = FaultPlan::seeded(8)
        .with_drop_ppm(300_000)
        .with_duplicate_ppm(300_000)
        .with_crash(1, 4);
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_faults(plan))
        .run(lockstep(4))
        .unwrap();
    assert!(out.stats.injected_drops > 0, "drop stream never fired");
    assert!(out.stats.dup_deliveries > 0, "duplicate stream never fired");
    assert_eq!(out.stats.crashed_nodes, 1);
    // The model audit accounts for every injected fault: dropped
    // messages are not losses, duplicate copies are deliveries, the
    // crashed node is asleep — no violation anywhere.
    assert_eq!(audit(&out.stats, &out.trace, Some(64)), Vec::new());
}

#[cfg(feature = "validate")]
#[test]
fn audit_catches_forged_drop_counts() {
    use netsim::{audit, ModelRule};
    let g = generators::ring(6, 0).unwrap();
    let plan = FaultPlan::seeded(1).with_drop_ppm(netsim::faults::PPM_SCALE);
    let out = Simulator::new(&g, SimConfig::default().with_trace().with_faults(plan))
        .run(lockstep(7))
        .unwrap();
    let mut stats = out.stats.clone();
    stats.injected_drops -= 1; // cook the books
    let violations = audit(&stats, &out.trace, None);
    assert!(
        violations.iter().any(|v| v.rule == ModelRule::Conservation),
        "{violations:?}"
    );
}
