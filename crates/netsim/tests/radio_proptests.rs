//! Property-based tests of the radio-model executor's accounting.

use proptest::prelude::*;

use graphlib::generators;
use netsim::radio::{CollisionRule, Heard, RadioAction, RadioProtocol, RadioSimulator};
use netsim::{NextWake, NodeCtx, Round};

/// Each node follows a fixed per-round action script, then halts.
#[derive(Debug, Clone)]
struct Scripted {
    /// (round, action) pairs; 0 = transmit own id, 1 = listen, 2 = idle.
    script: Vec<(Round, u8)>,
    at: usize,
    heard_msgs: u64,
    heard_collisions: u64,
}

impl Scripted {
    fn new(mut script: Vec<(Round, u8)>) -> Self {
        script.sort_unstable();
        script.dedup_by_key(|e| e.0);
        Scripted {
            script,
            at: 0,
            heard_msgs: 0,
            heard_collisions: 0,
        }
    }
}

impl RadioProtocol for Scripted {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        match self.script.first() {
            Some(&(r, _)) => NextWake::At(r),
            None => NextWake::Halt,
        }
    }

    fn act(&mut self, ctx: &NodeCtx, _round: Round) -> RadioAction<u64> {
        match self.script[self.at].1 {
            0 => RadioAction::Transmit(ctx.external_id),
            1 => RadioAction::Listen,
            _ => RadioAction::Idle,
        }
    }

    fn heard(&mut self, _ctx: &NodeCtx, _round: Round, outcome: Heard<u64>) -> NextWake {
        match outcome {
            Heard::One(_) => self.heard_msgs += 1,
            Heard::All(v) => self.heard_msgs += v.len() as u64,
            Heard::Collision => self.heard_collisions += 1,
            _ => {}
        }
        self.at += 1;
        match self.script.get(self.at) {
            Some(&(r, _)) => NextWake::At(r),
            None => NextWake::Halt,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Energy equals the number of transmit/listen rounds, and the Local
    /// rule delivers exactly (transmitting neighbor, listening node) pairs.
    #[test]
    fn radio_accounting(
        n in 3usize..10,
        scripts in proptest::collection::vec(
            proptest::collection::vec((1u64..25, 0u8..3), 1..6), 3..10),
    ) {
        prop_assume!(scripts.len() >= n);
        let g = generators::ring(n, 1).unwrap();
        let protos: Vec<Scripted> =
            scripts[..n].iter().map(|s| Scripted::new(s.clone())).collect();
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|ctx| protos[ctx.node.index()].clone())
            .unwrap();

        // Expected energy: transmit + listen entries per node.
        for (i, p) in protos.iter().enumerate() {
            let expected: u64 = p.script.iter().filter(|&&(_, a)| a != 2).count() as u64;
            prop_assert_eq!(out.stats.energy_by_node[i], expected, "node {}", i);
        }

        // Expected receptions under Local: for each directed ring edge
        // (u → v), rounds where u transmits and v listens.
        let mut expected_recv = 0u64;
        let action_at = |i: usize, r: Round| {
            protos[i].script.iter().find(|&&(rr, _)| rr == r).map(|&(_, a)| a)
        };
        for v in 0..n {
            for u in [(v + 1) % n, (v + n - 1) % n] {
                for &(r, a) in &protos[u].script {
                    if a == 0 && action_at(v, r) == Some(1) {
                        expected_recv += 1;
                    }
                }
            }
        }
        prop_assert_eq!(out.stats.receptions, expected_recv);
        let total_heard: u64 = out.states.iter().map(|s| s.heard_msgs).sum();
        prop_assert_eq!(total_heard, expected_recv);
        prop_assert_eq!(out.stats.collisions, 0, "Local never collides");
    }

    /// Under Detection, per listener-round: 0 transmitting neighbors →
    /// nothing, 1 → a message, ≥2 → a collision; totals must match.
    #[test]
    fn detection_counts_collisions_exactly(
        n in 3usize..9,
        transmit_round in 1u64..5,
        transmitters in proptest::collection::vec(any::<bool>(), 3..9),
    ) {
        prop_assume!(transmitters.len() >= n);
        let g = generators::ring(n, 2).unwrap();
        let out = RadioSimulator::new(&g, CollisionRule::Detection)
            .run(|ctx| {
                let a = if transmitters[ctx.node.index()] { 0 } else { 1 };
                Scripted::new(vec![(transmit_round, a)])
            })
            .unwrap();
        let mut expected_msgs = 0u64;
        let mut expected_cols = 0u64;
        for v in 0..n {
            if transmitters[v] {
                continue; // v listened
            }
            let tx = usize::from(transmitters[(v + 1) % n])
                + usize::from(transmitters[(v + n - 1) % n]);
            match tx {
                0 => {}
                1 => expected_msgs += 1,
                _ => expected_cols += 1,
            }
        }
        let heard: u64 = out.states.iter().map(|s| s.heard_msgs).sum();
        let cols: u64 = out.states.iter().map(|s| s.heard_collisions).sum();
        prop_assert_eq!(heard, expected_msgs);
        prop_assert_eq!(cols, expected_cols);
        prop_assert_eq!(out.stats.collisions, expected_cols);
    }
}
