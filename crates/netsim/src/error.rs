use std::error::Error;
use std::fmt;

use graphlib::{NodeId, Port};

use crate::Round;

/// Errors raised while executing a protocol on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node sent through a port it does not have.
    PortOutOfRange {
        /// The sending node.
        node: NodeId,
        /// The invalid port.
        port: Port,
        /// The round of the send.
        round: Round,
    },
    /// A message exceeded the configured CONGEST bit limit.
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// The round of the send.
        round: Round,
        /// Encoded size of the offending message.
        bits: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A node asked to wake at a round that is not in the future.
    WakeNotInFuture {
        /// The offending node.
        node: NodeId,
        /// The round the request was made in.
        round: Round,
        /// The requested (invalid) wake round.
        requested: Round,
    },
    /// The round budget was exhausted before every node halted.
    MaxRoundsExceeded {
        /// The configured budget.
        limit: Round,
        /// Number of nodes still running.
        running: usize,
    },
    /// Every remaining node is asleep forever (no scheduled wake) but has
    /// not halted — the protocol deadlocked.
    Stalled {
        /// Number of nodes stuck asleep.
        running: usize,
        /// The last round that executed.
        round: Round,
    },
    /// A node spent past its energy budget
    /// ([`EnergyModel::budget`](crate::EnergyModel::budget)) and was
    /// forced asleep permanently. Carries the *first* exhaustion of the
    /// run (earliest round, lowest node id within it) — adjudicated in
    /// serial node order, so identical across drivers and shard counts.
    EnergyExhausted {
        /// The first node to exhaust its budget.
        node: NodeId,
        /// The round its ledger went past the budget.
        round: Round,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PortOutOfRange { node, port, round } => {
                write!(f, "node {node} sent through nonexistent port {port} in round {round}")
            }
            SimError::MessageTooLarge { node, round, bits, limit } => write!(
                f,
                "node {node} sent a {bits}-bit message in round {round}, exceeding the {limit}-bit congest limit"
            ),
            SimError::WakeNotInFuture { node, round, requested } => write!(
                f,
                "node {node} in round {round} requested a wake at round {requested}, which is not in the future"
            ),
            SimError::MaxRoundsExceeded { limit, running } => {
                write!(f, "round budget of {limit} exhausted with {running} nodes still running")
            }
            SimError::Stalled { running, round } => write!(
                f,
                "protocol stalled after round {round}: {running} nodes asleep forever without halting"
            ),
            SimError::EnergyExhausted { node, round } => write!(
                f,
                "node {node} exhausted its energy budget in round {round} and was forced asleep"
            ),
        }
    }
}

impl Error for SimError {}

/// Every stable [`SimError`] wire code, in declaration order — the
/// vocabulary [`SimError::to_json_code`] draws from. Service responses
/// embed these codes, so they are frozen: renaming one is a wire-format
/// break that [`parse_sim_code`] round-trip tests will catch.
pub const SIM_ERROR_CODES: &[&str] = &[
    "sim.port-out-of-range",
    "sim.message-too-large",
    "sim.wake-not-in-future",
    "sim.max-rounds-exceeded",
    "sim.stalled",
    "sim.energy-exhausted",
];

/// Resolves a wire code back to its canonical `&'static str` (the exact
/// value [`SimError::to_json_code`] returns), or `None` for unknown
/// codes. Serde-free round-trip support for typed service errors.
pub fn parse_sim_code(code: &str) -> Option<&'static str> {
    SIM_ERROR_CODES.iter().copied().find(|&c| c == code)
}

impl SimError {
    /// The stable, machine-readable wire code for this error variant —
    /// what a service response puts in its `"code"` field. Codes carry
    /// no per-instance detail (that stays in [`fmt::Display`]); they are
    /// the typed part of the encoding and never change spelling.
    pub fn to_json_code(&self) -> &'static str {
        match self {
            SimError::PortOutOfRange { .. } => "sim.port-out-of-range",
            SimError::MessageTooLarge { .. } => "sim.message-too-large",
            SimError::WakeNotInFuture { .. } => "sim.wake-not-in-future",
            SimError::MaxRoundsExceeded { .. } => "sim.max-rounds-exceeded",
            SimError::Stalled { .. } => "sim.stalled",
            SimError::EnergyExhausted { .. } => "sim.energy-exhausted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every variant, for exhaustive code tests.
    fn all_variants() -> Vec<SimError> {
        vec![
            SimError::PortOutOfRange {
                node: NodeId::new(1),
                port: Port::new(7),
                round: 2,
            },
            SimError::MessageTooLarge {
                node: NodeId::new(1),
                round: 2,
                bits: 99,
                limit: 64,
            },
            SimError::WakeNotInFuture {
                node: NodeId::new(1),
                round: 5,
                requested: 5,
            },
            SimError::MaxRoundsExceeded {
                limit: 10,
                running: 3,
            },
            SimError::Stalled {
                running: 2,
                round: 9,
            },
            SimError::EnergyExhausted {
                node: NodeId::new(4),
                round: 12,
            },
        ]
    }

    #[test]
    fn wire_codes_round_trip_and_are_distinct() {
        let variants = all_variants();
        assert_eq!(
            variants.len(),
            SIM_ERROR_CODES.len(),
            "new variant? add its code"
        );
        let mut seen = std::collections::BTreeSet::new();
        for e in &variants {
            let code = e.to_json_code();
            assert!(seen.insert(code), "duplicate code {code}");
            // Round trip: the code parses back to the identical static str.
            assert_eq!(parse_sim_code(code), Some(code));
            // Codes are wire-safe: lowercase, dotted namespace, no spaces.
            assert!(code.starts_with("sim."), "{code}");
            assert!(
                code.bytes()
                    .all(|b| b.is_ascii_lowercase() || b == b'.' || b == b'-'),
                "{code}"
            );
        }
        assert_eq!(parse_sim_code("sim.no-such-error"), None);
    }

    #[test]
    fn display_mentions_key_fields() {
        let e = SimError::MessageTooLarge {
            node: NodeId::new(3),
            round: 17,
            bits: 512,
            limit: 64,
        };
        let s = e.to_string();
        assert!(s.contains("v3") && s.contains("512") && s.contains("64"));

        let e = SimError::Stalled {
            running: 2,
            round: 9,
        };
        assert!(e.to_string().contains("stalled"));

        let e = SimError::EnergyExhausted {
            node: NodeId::new(4),
            round: 12,
        };
        let s = e.to_string();
        assert!(s.contains("v4") && s.contains("12") && s.contains("energy"));
    }
}
