use std::error::Error;
use std::fmt;

use graphlib::{NodeId, Port};

use crate::Round;

/// Errors raised while executing a protocol on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node sent through a port it does not have.
    PortOutOfRange {
        /// The sending node.
        node: NodeId,
        /// The invalid port.
        port: Port,
        /// The round of the send.
        round: Round,
    },
    /// A message exceeded the configured CONGEST bit limit.
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// The round of the send.
        round: Round,
        /// Encoded size of the offending message.
        bits: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A node asked to wake at a round that is not in the future.
    WakeNotInFuture {
        /// The offending node.
        node: NodeId,
        /// The round the request was made in.
        round: Round,
        /// The requested (invalid) wake round.
        requested: Round,
    },
    /// The round budget was exhausted before every node halted.
    MaxRoundsExceeded {
        /// The configured budget.
        limit: Round,
        /// Number of nodes still running.
        running: usize,
    },
    /// Every remaining node is asleep forever (no scheduled wake) but has
    /// not halted — the protocol deadlocked.
    Stalled {
        /// Number of nodes stuck asleep.
        running: usize,
        /// The last round that executed.
        round: Round,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PortOutOfRange { node, port, round } => {
                write!(f, "node {node} sent through nonexistent port {port} in round {round}")
            }
            SimError::MessageTooLarge { node, round, bits, limit } => write!(
                f,
                "node {node} sent a {bits}-bit message in round {round}, exceeding the {limit}-bit congest limit"
            ),
            SimError::WakeNotInFuture { node, round, requested } => write!(
                f,
                "node {node} in round {round} requested a wake at round {requested}, which is not in the future"
            ),
            SimError::MaxRoundsExceeded { limit, running } => {
                write!(f, "round budget of {limit} exhausted with {running} nodes still running")
            }
            SimError::Stalled { running, round } => write!(
                f,
                "protocol stalled after round {round}: {running} nodes asleep forever without halting"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = SimError::MessageTooLarge {
            node: NodeId::new(3),
            round: 17,
            bits: 512,
            limit: 64,
        };
        let s = e.to_string();
        assert!(s.contains("v3") && s.contains("512") && s.contains("64"));

        let e = SimError::Stalled {
            running: 2,
            round: 9,
        };
        assert!(e.to_string().contains("stalled"));
    }
}
