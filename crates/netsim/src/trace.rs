//! Optional execution traces, used by the examples and the golden tests of
//! the `Merging-Fragments` walkthrough (Figures 2–5).

use graphlib::{NodeId, Port};

use crate::Round;

/// One observable event of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node was awake in a round.
    Awake {
        /// The round.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was delivered.
    Delivered {
        /// The round.
        round: Round,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Receiver-side port.
        port: Port,
        /// Wire size in bits.
        bits: usize,
        /// Debug rendering of the payload.
        payload: String,
    },
    /// A message was lost because the receiver slept.
    Lost {
        /// The round.
        round: Round,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A node halted.
    Halted {
        /// The round after which the node halted (0 = during `init`).
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was destroyed in flight by an injected fault
    /// ([`FaultPlan::drop_ppm`](crate::FaultPlan::drop_ppm)) — distinct
    /// from [`TraceEvent::Lost`], which is the model's sleeping-receiver
    /// loss.
    Dropped {
        /// The round.
        round: Round,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A node was halted permanently by an injected crash
    /// ([`FaultPlan::crashes`](crate::FaultPlan::crashes)).
    Crashed {
        /// The round of the node's first suppressed wake.
        round: Round,
        /// The node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The round the event belongs to.
    pub fn round(&self) -> Round {
        match self {
            TraceEvent::Awake { round, .. }
            | TraceEvent::Delivered { round, .. }
            | TraceEvent::Lost { round, .. }
            | TraceEvent::Halted { round, .. }
            | TraceEvent::Dropped { round, .. }
            | TraceEvent::Crashed { round, .. } => *round,
        }
    }
}

/// An ordered list of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round() == round)
    }

    /// Delivered-message events only.
    pub fn deliveries(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_filters() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(TraceEvent::Awake {
            round: 1,
            node: NodeId::new(0),
        });
        t.push(TraceEvent::Delivered {
            round: 1,
            from: NodeId::new(0),
            to: NodeId::new(1),
            port: Port::new(0),
            bits: 4,
            payload: "x".into(),
        });
        t.push(TraceEvent::Halted {
            round: 2,
            node: NodeId::new(0),
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.in_round(1).count(), 2);
        assert_eq!(t.deliveries().count(), 1);
        assert_eq!(t.events()[2].round(), 2);
    }
}
