//! Synchronous CONGEST + sleeping-model network simulator.
//!
//! This crate implements the distributed computing model of the paper
//! (Section 1.1):
//!
//! * computation proceeds in **synchronous rounds** numbered from 1;
//! * in each round, every *awake* node may do local computation, send a
//!   (possibly distinct) message through each of its ports, and receive the
//!   messages its awake neighbors sent it **in the same round**;
//! * a node may go to **sleep** until a future round of its choosing; a
//!   sleeping node does nothing, and messages addressed to it are **lost**;
//! * only awake rounds count toward a node's awake complexity, while the
//!   run time counts every round until the last node halts.
//!
//! Execution is a single generic kernel parameterized by a time driver
//! ([`Executor`]): the default calendar driver is event-driven — rounds in
//! which every node sleeps are skipped in `O(log n)` time, so algorithms
//! with tiny awake complexity but huge round complexity (the whole point
//! of the paper) simulate in time proportional to the total number of
//! *node-awake* events, not rounds. A round-synchronous driver and a
//! naive `O(n)`-scan oracle driver produce bit-identical outcomes for
//! benchmarking and differential testing.
//!
//! Nodes interact with the world only through the [`Protocol`] trait and
//! the [`NodeCtx`] handed to them, which deliberately exposes only the
//! paper's initial knowledge (KT0): the node's own id, its port count and
//! per-port edge weights, `n`, and the id bound `N`. Neighbor identities
//! must be *learned* through messages.
//!
//! # Example
//!
//! ```
//! use graphlib::generators;
//! use netsim::{flood, SimConfig, Simulator};
//!
//! // Flood a token from node 0 across a ring, always awake.
//! let graph = generators::ring(8, 1)?;
//! let outcome = Simulator::new(&graph, SimConfig::default())
//!     .run(|ctx| flood::Flood::new(ctx.node.raw() == 0))?;
//! assert!(outcome.states.iter().all(|f| f.informed()));
//! assert_eq!(outcome.stats.rounds, 5); // ring diameter + final re-send round
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod payload;
mod protocol;
mod sim;
mod stats;
mod trace;

pub mod energy;
pub mod engine;
pub mod faults;
pub mod flood;
pub mod metrics;
pub mod radio;
#[cfg(feature = "validate")]
pub mod validate;

pub use energy::{EnergyModel, WakePolicy};
pub use engine::{Executor, ExecutorScratch};
pub use error::{parse_sim_code, SimError, SIM_ERROR_CODES};
pub use faults::FaultPlan;
pub use metrics::{Metrics, PhaseSpan, PhaseTotals, RoundReport};
pub use payload::{bits_for_range, bits_for_value, Payload};
pub use protocol::{Envelope, NextWake, NodeCtx, Outbox, PortWeights, Protocol};
pub use sim::{RunOutcome, SimConfig, Simulator};
pub use stats::RunStats;
pub use trace::{Trace, TraceEvent};
#[cfg(feature = "validate")]
pub use validate::{audit, ModelRule, ValidateError, ValidatingExecutor, Violation};

/// A round number; rounds are numbered from 1 as in the paper.
pub type Round = u64;
