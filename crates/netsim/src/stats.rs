//! Run metrics: the quantities the paper's theorems are about.

use crate::Round;

/// Aggregated metrics of one protocol execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Run time: the last scheduled round the executor processed (0 if the
    /// protocol halted before round 1). This is the final round popped from
    /// the wake queue — counted even if every wake scheduled for it had
    /// been superseded in the meantime.
    pub rounds: Round,
    /// Awake rounds per node, indexed by node.
    pub awake_by_node: Vec<u64>,
    /// Messages successfully delivered.
    pub messages_delivered: u64,
    /// Messages lost because the receiver was asleep.
    pub messages_lost: u64,
    /// Total bits sent per edge, indexed by [`graphlib::EdgeId`]. Includes
    /// lost messages (the sender still transmitted them).
    pub bits_by_edge: Vec<u64>,
    /// Total bits received per node (delivered messages only), indexed by
    /// node — Lemma 8 lower-bounds awake time by received bits / log n.
    pub bits_received_by_node: Vec<u64>,
    /// Largest single-message wire size of the run, in bits, counting both
    /// delivered and lost messages (the sender transmitted either way).
    /// This is the quantity the CONGEST `O(log n)` discipline bounds; the
    /// per-algorithm constant `C` with `max_message_bits ≤ C·⌈log₂ n⌉` is
    /// what [`RunStats::log_constant`] reports and `EXPERIMENTS.md` records.
    pub max_message_bits: u64,
    /// Messages destroyed in flight by an injected fault
    /// ([`FaultPlan::drop_ppm`](crate::FaultPlan::drop_ppm)). Disjoint
    /// from [`RunStats::messages_lost`], which counts only model losses
    /// (receiver asleep).
    pub injected_drops: u64,
    /// Extra copies delivered by an injected duplication fault
    /// ([`FaultPlan::duplicate_ppm`](crate::FaultPlan::duplicate_ppm)).
    /// Each extra copy is *also* counted in
    /// [`RunStats::messages_delivered`], so conservation audits reconcile.
    pub dup_deliveries: u64,
    /// Nodes halted by an injected crash
    /// ([`FaultPlan::crashes`](crate::FaultPlan::crashes)).
    pub crashed_nodes: u64,
    /// Heap bytes of the input graph representation
    /// ([`graphlib::WeightedGraph::memory_bytes`]) — the dominant memory
    /// term of a large-`n` run, recorded so `run --json` and the bench
    /// panels can report bytes/node. Deterministic in the input graph.
    pub graph_bytes: u64,
    /// High-water envelope count of the delivery arena: the largest
    /// number of in-flight messages buffered in any single round. Scaled
    /// by the envelope size this bounds the executor's transient memory.
    /// Deterministic (a function of the delivery schedule, identical
    /// across drivers and shard counts).
    pub arena_peak_envelopes: u64,
    /// Nano-joules spent per node under the configured
    /// [`EnergyModel`](crate::EnergyModel), indexed by node. All zeros
    /// when no active model is configured. Satisfies the conservation
    /// identity `sum == awake_total·round_cost + bits_sent·tx_bit_cost +
    /// bits_received·rx_bit_cost + idle_listen_rounds·idle_cost`, and is
    /// bit-identical across every driver and shard count.
    pub energy_spent_by_node: Vec<u64>,
    /// Nodes that spent past their energy budget and were forced asleep
    /// permanently (the crash machinery). Nonzero only under a budgeted
    /// model; any exhaustion also fails the run with
    /// [`SimError::EnergyExhausted`](crate::SimError).
    pub exhausted_nodes: u64,
    /// Awake node-rounds whose delivery half-step handed the node zero
    /// messages (idle listening) — the quantity
    /// [`EnergyModel::idle_cost`](crate::EnergyModel::idle_cost) prices.
    /// Counted whether or not an energy model is active.
    pub idle_listen_rounds: u64,
}

impl RunStats {
    pub(crate) fn new(n: usize, m: usize) -> Self {
        RunStats {
            rounds: 0,
            awake_by_node: vec![0; n],
            messages_delivered: 0,
            messages_lost: 0,
            bits_by_edge: vec![0; m],
            bits_received_by_node: vec![0; n],
            max_message_bits: 0,
            injected_drops: 0,
            dup_deliveries: 0,
            crashed_nodes: 0,
            graph_bytes: 0,
            arena_peak_envelopes: 0,
            energy_spent_by_node: vec![0; n],
            exhausted_nodes: 0,
            idle_listen_rounds: 0,
        }
    }

    /// Re-initializes recycled stats for a fresh run on an `n`-node,
    /// `m`-edge graph, keeping the vector storage (scratch-pool reuse; see
    /// `ExecutorScratch::recycle`).
    pub(crate) fn reset(&mut self, n: usize, m: usize) {
        self.rounds = 0;
        self.messages_delivered = 0;
        self.messages_lost = 0;
        self.awake_by_node.clear();
        self.awake_by_node.resize(n, 0);
        self.bits_by_edge.clear();
        self.bits_by_edge.resize(m, 0);
        self.bits_received_by_node.clear();
        self.bits_received_by_node.resize(n, 0);
        self.max_message_bits = 0;
        self.injected_drops = 0;
        self.dup_deliveries = 0;
        self.crashed_nodes = 0;
        self.graph_bytes = 0;
        self.arena_peak_envelopes = 0;
        self.energy_spent_by_node.clear();
        self.energy_spent_by_node.resize(n, 0);
        self.exhausted_nodes = 0;
        self.idle_listen_rounds = 0;
    }

    /// The paper's awake complexity: the maximum number of awake rounds
    /// over all nodes.
    pub fn awake_max(&self) -> u64 {
        self.awake_by_node.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged awake complexity (see the related-work discussion of
    /// Chatterjee–Gmyr–Pandurangan).
    // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
    pub fn awake_avg(&self) -> f64 {
        if self.awake_by_node.is_empty() {
            0.0 // lint:allow(determinism) -- reporting-only average
        } else {
            // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
            self.awake_by_node.iter().sum::<u64>() as f64 / self.awake_by_node.len() as f64
        }
    }

    /// Total awake node-rounds (the simulator's work measure).
    pub fn awake_total(&self) -> u64 {
        self.awake_by_node.iter().sum()
    }

    /// The awake × run-time product of Theorem 4's trade-off.
    pub fn awake_round_product(&self) -> u128 {
        u128::from(self.awake_max()) * u128::from(self.rounds)
    }

    /// Heaviest per-edge traffic, in bits.
    pub fn max_edge_bits(&self) -> u64 {
        self.bits_by_edge.iter().copied().max().unwrap_or(0)
    }

    /// Total messages transmitted (delivered + lost).
    pub fn messages_sent(&self) -> u64 {
        self.messages_delivered + self.messages_lost
    }

    /// Total nano-joules spent across all nodes (0 without an active
    /// energy model).
    pub fn energy_total(&self) -> u64 {
        self.energy_spent_by_node.iter().sum()
    }

    /// Largest per-node energy spend, in nano-joules — the energy
    /// analogue of [`RunStats::awake_max`].
    pub fn energy_max(&self) -> u64 {
        self.energy_spent_by_node.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged energy spend.
    // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
    pub fn energy_avg(&self) -> f64 {
        if self.energy_spent_by_node.is_empty() {
            0.0 // lint:allow(determinism) -- reporting-only average
        } else {
            // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
            self.energy_total() as f64 / self.energy_spent_by_node.len() as f64
        }
    }

    /// The observed CONGEST constant: the smallest `C` with
    /// `max_message_bits ≤ C·⌈log₂ n⌉` for an `n`-node run (0 if no message
    /// was sent). This is the per-algorithm `log n` constant the model
    /// conformance checker enforces and `EXPERIMENTS.md` reports.
    pub fn log_constant(&self, n: usize) -> u64 {
        let log_n = crate::bits_for_range(n.max(2) as u64) as u64;
        self.max_message_bits.div_ceil(log_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let stats = RunStats {
            rounds: 10,
            awake_by_node: vec![3, 7, 5],
            messages_delivered: 11,
            messages_lost: 4,
            bits_by_edge: vec![8, 64, 32],
            bits_received_by_node: vec![10, 20, 30],
            max_message_bits: 21,
            injected_drops: 0,
            dup_deliveries: 0,
            crashed_nodes: 0,
            graph_bytes: 0,
            arena_peak_envelopes: 0,
            energy_spent_by_node: vec![100, 700, 400],
            exhausted_nodes: 0,
            idle_listen_rounds: 2,
        };
        assert_eq!(stats.awake_max(), 7);
        assert_eq!(stats.energy_total(), 1200);
        assert_eq!(stats.energy_max(), 700);
        assert!((stats.energy_avg() - 400.0).abs() < 1e-9);
        assert_eq!(stats.awake_total(), 15);
        assert!((stats.awake_avg() - 5.0).abs() < 1e-9);
        assert_eq!(stats.awake_round_product(), 70);
        assert_eq!(stats.max_edge_bits(), 64);
        assert_eq!(stats.messages_sent(), 15);
        // 21 bits on a 3-node graph: ⌈log₂ 3⌉ = 2, ⌈21/2⌉ = 11.
        assert_eq!(stats.log_constant(3), 11);
    }

    #[test]
    fn log_constant_degenerate() {
        let stats = RunStats::new(1, 0);
        assert_eq!(stats.log_constant(1), 0);
        let mut stats = RunStats::new(2, 1);
        stats.max_message_bits = 5;
        // n clamped to 2: ⌈log₂ 2⌉ = 1.
        assert_eq!(stats.log_constant(0), 5);
    }

    #[test]
    fn empty_stats() {
        let stats = RunStats::new(0, 0);
        assert_eq!(stats.awake_max(), 0);
        assert_eq!(stats.awake_avg(), 0.0);
        assert_eq!(stats.max_edge_bits(), 0);
    }
}
