//! Seeded, fully deterministic fault injection for the executors.
//!
//! A [`FaultPlan`] perturbs a run at the model boundary — messages
//! vanish or arrive twice, wakes slip, nodes crash — without touching a
//! single protocol line. Every decision is a pure function of
//! `(fault_seed, stream tag, key)`, so:
//!
//! * the same `(SimConfig, FaultPlan)` pair replays bit-identically, on
//!   either executor (the fault differential proptests pin this);
//! * decisions are **order-independent**: there is no mutable RNG cursor
//!   that the two executors could advance in different interleavings —
//!   each stream hashes its own key (`(round, sender, port)` for message
//!   faults, `(round, node)` for sleep faults, `(node, requested round)`
//!   for jitter) through a SplitMix64-style finalizer;
//! * the streams are mutually independent: distinct tag constants keep a
//!   drop decision from ever correlating with the duplicate decision for
//!   the same message.
//!
//! Intensities are integers in **parts per million** ([`PPM_SCALE`]) so
//! [`FaultPlan`] — and therefore [`SimConfig`](crate::SimConfig) — stays
//! `Eq` and hashable-by-value, and so a plan serialized into a report can
//! be replayed exactly (no float round-tripping).
//!
//! A plan with every intensity at zero and no crashes is *inert*
//! ([`FaultPlan::is_inert`]); the executors skip the fault path entirely
//! for inert plans, making fault support pay-for-what-you-use: a run
//! under an inert plan is bit-identical to a run with no plan at all.

use crate::Round;

/// Intensity denominator: an intensity of `PPM_SCALE` means "always".
pub const PPM_SCALE: u32 = 1_000_000;

// Stream tags: arbitrary distinct odd constants that separate the
// decision streams drawn from one `fault_seed`.
const TAG_DROP: u64 = 0xd3c5_a7e9_1b4f_6a21;
const TAG_DUPLICATE: u64 = 0x5e8b_2c91_f0d7_43b5;
const TAG_SLEEP: u64 = 0x9f31_6d05_8ae4_c773;
const TAG_JITTER: u64 = 0x27c8_514e_b96a_0d8f;

/// SplitMix64-style stateless mixer: one draw per `(tag, a, b)` key.
fn decide(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xff51_afd7_ed55_8ccd))
        .wrapping_add(b.wrapping_mul(0xc4ce_b9fe_1a85_ec53));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `true` with probability `ppm / PPM_SCALE` for this key.
fn hit(seed: u64, tag: u64, a: u64, b: u64, ppm: u32) -> bool {
    ppm != 0 && decide(seed, tag, a, b) % u64::from(PPM_SCALE) < u64::from(ppm)
}

/// A deterministic fault-injection plan.
///
/// All five fault kinds of the chaos harness in one value. The plan is
/// plain data — construct it literally or through the builder methods —
/// and threading it through a run is
/// [`SimConfig::with_faults`](crate::SimConfig::with_faults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every fault decision stream. Independent of the run's
    /// `master_seed`: the same protocol coins can be replayed under many
    /// different fault histories and vice versa.
    pub fault_seed: u64,
    /// Probability (ppm) that a transmitted message is destroyed in
    /// flight, keyed by `(round, sender, sender port)`. A dropped message
    /// is accounted as `injected_drops`, not as a model loss.
    pub drop_ppm: u32,
    /// Probability (ppm) that a *delivered* message arrives twice, keyed
    /// like drops. The extra copy counts in both `messages_delivered` and
    /// `dup_deliveries`.
    pub duplicate_ppm: u32,
    /// Probability (ppm) that a node's scheduled wake is suppressed for
    /// one round, keyed by `(round, node)`: the node sleeps through the
    /// round (messages to it are lost as usual) and retries in the next.
    pub spurious_sleep_ppm: u32,
    /// Maximum extra rounds added to every requested wake; the actual
    /// slip is drawn uniformly from `0..=wake_jitter` per `(node,
    /// requested round)`. Zero disables jitter.
    pub wake_jitter: u64,
    /// `(node, round)` pairs: the node halts permanently at its first
    /// scheduled wake in or after that round (counted in
    /// `crashed_nodes`). Kept sorted by [`FaultPlan::with_crash`].
    pub crashes: Vec<(u32, Round)>,
}

impl FaultPlan {
    /// An inert plan carrying only a decision-stream seed.
    #[must_use]
    pub fn seeded(fault_seed: u64) -> Self {
        FaultPlan {
            fault_seed,
            ..FaultPlan::default()
        }
    }

    /// Returns the plan with a message-drop intensity.
    #[must_use]
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Returns the plan with a duplicate-delivery intensity.
    #[must_use]
    pub fn with_duplicate_ppm(mut self, ppm: u32) -> Self {
        self.duplicate_ppm = ppm;
        self
    }

    /// Returns the plan with a spurious-sleep intensity.
    #[must_use]
    pub fn with_spurious_sleep_ppm(mut self, ppm: u32) -> Self {
        self.spurious_sleep_ppm = ppm;
        self
    }

    /// Returns the plan with a maximum wake jitter.
    #[must_use]
    pub fn with_wake_jitter(mut self, max_extra_rounds: u64) -> Self {
        self.wake_jitter = max_extra_rounds;
        self
    }

    /// Returns the plan with `node` crashing at its first wake in or
    /// after `round`. The crash list stays sorted, so two plans built
    /// from the same crashes in any order compare equal.
    #[must_use]
    pub fn with_crash(mut self, node: u32, round: Round) -> Self {
        self.crashes.push((node, round));
        self.crashes.sort_unstable();
        self
    }

    /// `true` when the plan cannot affect a run: every intensity zero
    /// and no crashes. The executors take the exact no-fault path for
    /// inert plans (the zero-intensity fingerprint proptests pin this).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.drop_ppm == 0
            && self.duplicate_ppm == 0
            && self.spurious_sleep_ppm == 0
            && self.wake_jitter == 0
            && self.crashes.is_empty()
    }

    /// Whether the message `sender` transmitted through `sender_port` in
    /// `round` is destroyed in flight.
    #[inline]
    #[must_use]
    pub fn drops(&self, round: Round, sender: u32, sender_port: u32) -> bool {
        hit(
            self.fault_seed,
            TAG_DROP,
            round,
            (u64::from(sender) << 32) | u64::from(sender_port),
            self.drop_ppm,
        )
    }

    /// Whether the (delivered) message `sender` transmitted through
    /// `sender_port` in `round` arrives a second time.
    #[inline]
    #[must_use]
    pub fn duplicates(&self, round: Round, sender: u32, sender_port: u32) -> bool {
        hit(
            self.fault_seed,
            TAG_DUPLICATE,
            round,
            (u64::from(sender) << 32) | u64::from(sender_port),
            self.duplicate_ppm,
        )
    }

    /// Whether `node`'s scheduled wake in `round` is suppressed (the
    /// node sleeps through it and retries in `round + 1`).
    #[inline]
    #[must_use]
    pub fn suppresses(&self, round: Round, node: u32) -> bool {
        hit(
            self.fault_seed,
            TAG_SLEEP,
            round,
            u64::from(node),
            self.spurious_sleep_ppm,
        )
    }

    /// The wake round actually scheduled when `node` requests
    /// `requested`: slipped by `0..=wake_jitter` extra rounds.
    #[inline]
    #[must_use]
    pub fn jittered(&self, node: u32, requested: Round) -> Round {
        if self.wake_jitter == 0 {
            return requested;
        }
        let extra = decide(self.fault_seed, TAG_JITTER, u64::from(node), requested)
            % (self.wake_jitter + 1);
        requested.saturating_add(extra)
    }

    /// The earliest round at which `node` is condemned to crash, if any.
    #[must_use]
    pub fn crash_round(&self, node: u32) -> Option<Round> {
        // The list is sorted by (node, round), so the first hit is the
        // earliest crash round for the node.
        self.crashes
            .iter()
            .find(|&&(v, _)| v == node)
            .map(|&(_, r)| r)
    }

    /// Whether `node`, waking in `round`, crashes now.
    #[inline]
    #[must_use]
    pub fn crashes_at(&self, node: u32, round: Round) -> bool {
        match self.crash_round(node) {
            Some(r) => round >= r,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_never_fires() {
        let plan = FaultPlan::seeded(42);
        assert!(plan.is_inert());
        for round in 1..50 {
            for v in 0..8 {
                assert!(!plan.drops(round, v, 0));
                assert!(!plan.duplicates(round, v, 0));
                assert!(!plan.suppresses(round, v));
                assert!(!plan.crashes_at(v, round));
                assert_eq!(plan.jittered(v, round), round);
            }
        }
    }

    #[test]
    fn builders_compose_and_defeat_inertness() {
        let plan = FaultPlan::seeded(1)
            .with_drop_ppm(10_000)
            .with_duplicate_ppm(5_000)
            .with_spurious_sleep_ppm(2_000)
            .with_wake_jitter(3)
            .with_crash(4, 100);
        assert!(!plan.is_inert());
        assert_eq!(plan.drop_ppm, 10_000);
        assert_eq!(plan.crash_round(4), Some(100));
        assert_eq!(plan.crash_round(5), None);
        // Each single knob alone also defeats inertness.
        assert!(!FaultPlan::seeded(0).with_drop_ppm(1).is_inert());
        assert!(!FaultPlan::seeded(0).with_duplicate_ppm(1).is_inert());
        assert!(!FaultPlan::seeded(0).with_spurious_sleep_ppm(1).is_inert());
        assert!(!FaultPlan::seeded(0).with_wake_jitter(1).is_inert());
        assert!(!FaultPlan::seeded(0).with_crash(0, 1).is_inert());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7).with_drop_ppm(500_000);
        let b = FaultPlan::seeded(7).with_drop_ppm(500_000);
        let c = FaultPlan::seeded(8).with_drop_ppm(500_000);
        let mut diverged = false;
        for round in 1..200 {
            for v in 0..4 {
                assert_eq!(a.drops(round, v, 1), b.drops(round, v, 1));
                if a.drops(round, v, 1) != c.drops(round, v, 1) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds never diverged");
    }

    #[test]
    fn intensity_controls_frequency() {
        let count = |ppm: u32| -> usize {
            let plan = FaultPlan::seeded(3).with_drop_ppm(ppm);
            (1..10_000u64)
                .filter(|&round| plan.drops(round, 0, 0))
                .count()
        };
        assert_eq!(count(0), 0);
        assert_eq!(count(PPM_SCALE), 9_999);
        let half = count(500_000);
        assert!(
            (4_000..6_000).contains(&half),
            "50% intensity fired {half}/9999 times"
        );
        let one_pct = count(10_000);
        assert!(
            (30..300).contains(&one_pct),
            "1% intensity fired {one_pct}/9999 times"
        );
    }

    #[test]
    fn streams_are_independent() {
        // With both intensities at 50%, drop and duplicate decisions for
        // the same key must not be (anti)correlated.
        let plan = FaultPlan::seeded(11)
            .with_drop_ppm(500_000)
            .with_duplicate_ppm(500_000);
        let mut agree = 0usize;
        let total = 9_999usize;
        for round in 1..10_000u64 {
            if plan.drops(round, 2, 3) == plan.duplicates(round, 2, 3) {
                agree += 1;
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "drop/duplicate streams correlate: agreement {frac}"
        );
    }

    #[test]
    fn jitter_is_bounded_and_covers_the_range() {
        let plan = FaultPlan::seeded(5).with_wake_jitter(4);
        let mut seen = [false; 5];
        for node in 0..64u32 {
            for requested in 1..64u64 {
                let actual = plan.jittered(node, requested);
                assert!(actual >= requested);
                let extra = actual - requested;
                assert!(extra <= 4);
                seen[extra as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some jitter value never drawn");
    }

    #[test]
    fn crash_lookup_takes_earliest_round() {
        let plan = FaultPlan::seeded(0).with_crash(3, 50).with_crash(3, 10);
        assert_eq!(plan.crash_round(3), Some(10));
        assert!(!plan.crashes_at(3, 9));
        assert!(plan.crashes_at(3, 10));
        assert!(plan.crashes_at(3, 11));
    }

    #[test]
    fn crash_order_does_not_matter_for_equality() {
        let a = FaultPlan::seeded(0).with_crash(1, 5).with_crash(2, 9);
        let b = FaultPlan::seeded(0).with_crash(2, 9).with_crash(1, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn port_distinguishes_messages_of_one_sender() {
        let plan = FaultPlan::seeded(9).with_drop_ppm(500_000);
        let diverges = (1..500u64).any(|r| plan.drops(r, 0, 0) != plan.drops(r, 0, 1));
        assert!(diverges, "port is not part of the drop key");
    }
}
