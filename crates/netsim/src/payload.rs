//! Message-size accounting for the CONGEST model.
//!
//! The model allows `O(log n)` bits per edge per round. Rather than
//! serialize messages for real, payload types report the size of their
//! *wire encoding* through [`Payload::bit_size`], and the simulator charges
//! and (optionally) enforces that size. Helper functions compute the sizes
//! of the usual field kinds.

use std::fmt;

/// A message payload with a defined wire size.
///
/// `bit_size` must be the number of bits a reasonable binary encoding of
/// the value would occupy — the quantity the CONGEST limit constrains and
/// the congestion experiments accumulate per edge. Payloads are `Send`
/// because the sharded executor routes envelopes on worker threads.
pub trait Payload: Clone + fmt::Debug + Send {
    /// Size of this message's wire encoding, in bits.
    fn bit_size(&self) -> usize;
}

/// Bits needed to store one value from a domain of `domain_size` values
/// (`⌈log₂ domain_size⌉`, and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(netsim::bits_for_range(1), 1);
/// assert_eq!(netsim::bits_for_range(2), 1);
/// assert_eq!(netsim::bits_for_range(1024), 10);
/// assert_eq!(netsim::bits_for_range(1025), 11);
/// ```
pub fn bits_for_range(domain_size: u64) -> usize {
    if domain_size <= 2 {
        1
    } else {
        (64 - (domain_size - 1).leading_zeros()) as usize
    }
}

/// Bits needed to store the specific value `v` (`⌈log₂(v+1)⌉`, at least 1).
pub fn bits_for_value(v: u64) -> usize {
    if v <= 1 {
        1
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Payload for () {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Payload for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Payload for u32 {
    fn bit_size(&self) -> usize {
        bits_for_value(u64::from(*self))
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> usize {
        bits_for_value(*self)
    }
}

impl<T: Payload> Payload for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::bit_size)
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(1), 1);
        assert_eq!(bits_for_range(2), 1);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(u64::MAX), 64);
    }

    #[test]
    fn value_bits() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(255), 8);
        assert_eq!(bits_for_value(256), 9);
    }

    #[test]
    fn composite_payload_sizes() {
        assert_eq!(().bit_size(), 1);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(7u32.bit_size(), 3);
        assert_eq!(Some(7u64).bit_size(), 4);
        assert_eq!(None::<u64>.bit_size(), 1);
        assert_eq!((3u32, true).bit_size(), 3);
    }
}
