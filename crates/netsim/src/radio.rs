//! The energy-complexity (radio network) model of Chang–Kopelowitz–
//! Pettie–Wang–Zhan, which the paper's Appendix A relates to the sleeping
//! model.
//!
//! Differences from the point-to-point CONGEST executor ([`crate::Simulator`]):
//!
//! * a node's per-round action is **broadcast-only**: it either
//!   [`RadioAction::Transmit`]s one message heard by *all* neighbors,
//!   [`RadioAction::Listen`]s, or sits [`RadioAction::Idle`];
//! * **energy** counts only transmitting/listening rounds — idle rounds
//!   are free (unlike the sleeping model, an idle node may still compute);
//! * a node cannot transmit and listen in the same round (half-duplex);
//! * when two or more neighbors of a listener transmit simultaneously the
//!   outcome depends on the [`CollisionRule`]:
//!   - [`CollisionRule::Local`] — the paper's "Local" variant: no
//!     collisions, the listener receives every message. Upper bounds in
//!     this variant transfer directly to the sleeping model and vice
//!     versa (Appendix A);
//!   - [`CollisionRule::Detection`] — the listener hears a collision
//!     marker;
//!   - [`CollisionRule::Silence`] — a collision is indistinguishable from
//!     silence.
//!
//! The executor is event-driven exactly like the CONGEST one: nodes
//! schedule their next *active* round and the simulator skips quiet
//! rounds, so `O(nN)`-round schedules with `O(1)` energy are cheap to run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphlib::{NodeId, WeightedGraph};

use crate::{EnergyModel, NextWake, NodeCtx, Payload, Round, SimError};

/// What a node does in a round it scheduled itself active for.
///
/// Costs are set by the simulator's [`EnergyModel`] (default:
/// [`EnergyModel::radio_default`], the classic one-unit-per-active-round
/// pricing with free idling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadioAction<M> {
    /// Broadcast `M` to all neighbors (costs `round_cost` plus
    /// `tx_bit_cost` per payload bit).
    Transmit(M),
    /// Listen to the channel (costs `round_cost`, plus `rx_bit_cost` per
    /// audible bit at the outcome half-step).
    Listen,
    /// Do only local computation (costs `idle_cost`; free by default).
    Idle,
}

/// What a node perceives at the end of an active round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Heard<M> {
    /// Listened and no neighbor transmitted.
    Silence,
    /// Listened and exactly one neighbor transmitted (non-`Local` rules).
    One(M),
    /// Listened into a collision ([`CollisionRule::Detection`] only).
    Collision,
    /// Listened under [`CollisionRule::Local`]: every transmitted message
    /// arrives (possibly none — then [`Heard::Silence`] is reported
    /// instead).
    All(Vec<M>),
    /// This node transmitted (half-duplex: it hears nothing).
    Transmitted,
    /// This node idled.
    Idled,
}

/// Collision semantics of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollisionRule {
    /// No collisions; listeners receive every message ("Local" variant).
    #[default]
    Local,
    /// Listeners can distinguish collision from silence.
    Detection,
    /// Collisions are indistinguishable from silence.
    Silence,
}

/// A protocol in the radio model: one value per node.
pub trait RadioProtocol {
    /// Message payload.
    type Msg: Payload;

    /// Called before round 1; returns the first active round.
    fn init(&mut self, ctx: &NodeCtx) -> NextWake;

    /// Chooses this round's action.
    fn act(&mut self, ctx: &NodeCtx, round: Round) -> RadioAction<Self::Msg>;

    /// Receives the round's outcome; returns the next active round
    /// (strictly later) or halts.
    fn heard(&mut self, ctx: &NodeCtx, round: Round, outcome: Heard<Self::Msg>) -> NextWake;
}

/// Metrics of a radio-model run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnergyStats {
    /// Last active round.
    pub rounds: Round,
    /// Energy (transmit + listen rounds) per node.
    pub energy_by_node: Vec<u64>,
    /// Total transmissions.
    pub transmissions: u64,
    /// Messages successfully received by listeners.
    pub receptions: u64,
    /// Collision events observed by listeners (non-`Local` rules).
    pub collisions: u64,
}

impl EnergyStats {
    /// The worst-case energy complexity (max over nodes).
    pub fn energy_max(&self) -> u64 {
        self.energy_by_node.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged energy.
    // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
    pub fn energy_avg(&self) -> f64 {
        if self.energy_by_node.is_empty() {
            0.0 // lint:allow(determinism) -- reporting-only average
        } else {
            // lint:allow(determinism) -- reporting-only average, never fed back into simulation state
            self.energy_by_node.iter().sum::<u64>() as f64 / self.energy_by_node.len() as f64
        }
    }
}

/// Outcome of a radio run.
#[derive(Debug, Clone)]
pub struct RadioOutcome<P> {
    /// Final protocol values per node.
    pub states: Vec<P>,
    /// Energy metrics.
    pub stats: EnergyStats,
}

/// The radio-model executor.
#[derive(Debug)]
pub struct RadioSimulator<'g> {
    graph: &'g WeightedGraph,
    rule: CollisionRule,
    max_rounds: Round,
    master_seed: u64,
    /// The charging vocabulary — shared with the CONGEST kernel, so this
    /// executor carries no private energy constants. Defaults to
    /// [`EnergyModel::radio_default`] (one unit per transmit/listen
    /// round, idle free, no budget): the historical pricing this module
    /// used to hard-code.
    energy: EnergyModel,
}

impl<'g> RadioSimulator<'g> {
    /// Creates an executor over `graph` with the given collision rule.
    pub fn new(graph: &'g WeightedGraph, rule: CollisionRule) -> Self {
        RadioSimulator {
            graph,
            rule,
            max_rounds: 1 << 40,
            master_seed: 0,
            energy: EnergyModel::radio_default(),
        }
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, rounds: Round) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the master seed for per-node randomness.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Replaces the default radio pricing with an arbitrary
    /// [`EnergyModel`]. A model with a budget makes over-spending nodes
    /// fall silent permanently and the run fail with
    /// [`SimError::EnergyExhausted`], exactly like the CONGEST kernel.
    pub fn with_energy(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Runs the protocol to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxRoundsExceeded`] if the budget runs out, or
    /// [`SimError::WakeNotInFuture`] on an invalid schedule request.
    pub fn run<P, F>(&self, mut factory: F) -> Result<RadioOutcome<P>, SimError>
    where
        P: RadioProtocol,
        F: FnMut(&NodeCtx) -> P,
    {
        let n = self.graph.node_count();
        let mut stats = EnergyStats {
            energy_by_node: vec![0; n],
            ..EnergyStats::default()
        };

        let mut ctxs = Vec::with_capacity(n);
        let mut protocols = Vec::with_capacity(n);
        let mut next_wake: Vec<Option<Round>> = Vec::with_capacity(n);
        let mut running = 0usize;
        let mut queue: BinaryHeap<Reverse<(Round, u32)>> = BinaryHeap::new();

        // Hoisted: `max_external_id` is an O(n) scan, so calling it per
        // node would make setup O(n²); likewise the flat weight array is
        // copied once and every context views a window of it instead of
        // allocating a per-node `Vec`.
        let max_external_id = self.graph.max_external_id();
        let weights: std::sync::Arc<[u64]> = self.graph.flat_port_weights().into();
        for node in self.graph.nodes() {
            let ctx = NodeCtx {
                node,
                external_id: self.graph.external_id(node),
                n,
                max_external_id,
                port_weights: crate::PortWeights::slice(
                    std::sync::Arc::clone(&weights),
                    self.graph.port_base(node),
                    self.graph.degree(node) as u32,
                ),
                rng_seed: self
                    .master_seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(node.raw()).wrapping_mul(0xff51_afd7_ed55_8ccd)),
            };
            let mut protocol = factory(&ctx);
            match protocol.init(&ctx) {
                NextWake::At(r) if r >= 1 => {
                    queue.push(Reverse((r, node.raw())));
                    next_wake.push(Some(r));
                    running += 1;
                }
                NextWake::At(_) => {
                    return Err(SimError::WakeNotInFuture {
                        node,
                        round: 0,
                        requested: 0,
                    })
                }
                NextWake::Halt => next_wake.push(None),
            }
            ctxs.push(ctx);
            protocols.push(protocol);
        }

        let mut active_stamp: Vec<Round> = vec![0; n];
        // `listen_stamp[v] == round` marks v listening this round — a
        // reusable stamp array instead of a per-round listener Vec.
        let mut listen_stamp: Vec<Round> = vec![0; n];
        let mut active_now: Vec<u32> = Vec::new();
        // Transmission of the round per node (None = not transmitting).
        let mut on_air: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();

        // First budget exhaustion of the run, adjudicated in ascending
        // node order like the CONGEST kernel's.
        let mut first_exhausted: Option<(NodeId, Round)> = None;
        while let Some(&Reverse((round, _))) = queue.peek() {
            if round > self.max_rounds {
                if let Some((node, round)) = first_exhausted {
                    return Err(SimError::EnergyExhausted { node, round });
                }
                return Err(SimError::MaxRoundsExceeded {
                    limit: self.max_rounds,
                    running,
                });
            }
            active_now.clear();
            while let Some(&Reverse((r, v))) = queue.peek() {
                if r != round {
                    break;
                }
                queue.pop();
                if next_wake[v as usize] == Some(r) && active_stamp[v as usize] != round {
                    active_stamp[v as usize] = round;
                    active_now.push(v);
                }
            }
            if active_now.is_empty() {
                continue;
            }
            if active_now.len() > 1 {
                active_now.sort_unstable();
            }
            stats.rounds = round;

            // --- action half-step ---
            // All charging draws from `self.energy`; under the default
            // radio pricing this is the classic 1/1/0 schedule.
            for &v in &active_now {
                match protocols[v as usize].act(&ctxs[v as usize], round) {
                    RadioAction::Transmit(msg) => {
                        stats.energy_by_node[v as usize] += self.energy.round_cost
                            + self.energy.tx_bit_cost * msg.bit_size() as u64;
                        stats.transmissions += 1;
                        on_air[v as usize] = Some(msg);
                    }
                    RadioAction::Listen => {
                        stats.energy_by_node[v as usize] += self.energy.round_cost;
                        listen_stamp[v as usize] = round;
                    }
                    RadioAction::Idle => {
                        stats.energy_by_node[v as usize] += self.energy.idle_cost;
                    }
                }
            }

            // --- outcome half-step ---
            for &v in &active_now {
                let node = NodeId::new(v);
                let outcome = if on_air[v as usize].is_some() {
                    Heard::Transmitted
                } else if listen_stamp[v as usize] == round {
                    // Count the audible transmissions first: only the
                    // `Local` rule ever needs them gathered into a Vec,
                    // and silence (the common case) allocates nothing.
                    let audible = self
                        .graph
                        .ports(node)
                        .iter()
                        .filter(|e| on_air[e.neighbor.index()].is_some())
                        .count();
                    stats.receptions += audible as u64;
                    if self.energy.rx_bit_cost != 0 {
                        // Receive energy is paid for every audible bit —
                        // the radio demodulates the channel whether or
                        // not the collision rule lets it decode.
                        let audible_bits: u64 = self
                            .graph
                            .ports(node)
                            .iter()
                            .filter_map(|e| on_air[e.neighbor.index()].as_ref())
                            .map(|m| m.bit_size() as u64)
                            .sum();
                        stats.energy_by_node[v as usize] += self.energy.rx_bit_cost * audible_bits;
                    }
                    match (self.rule, audible) {
                        (_, 0) => Heard::Silence,
                        (CollisionRule::Local, _) => Heard::All(
                            self.graph
                                .ports(node)
                                .iter()
                                .filter_map(|e| on_air[e.neighbor.index()].clone())
                                .collect(),
                        ),
                        (_, 1) => Heard::One(
                            self.graph
                                .ports(node)
                                .iter()
                                .find_map(|e| on_air[e.neighbor.index()].clone())
                                .expect("one audible transmission"),
                        ),
                        (CollisionRule::Detection, _) => {
                            stats.collisions += 1;
                            Heard::Collision
                        }
                        (CollisionRule::Silence, _) => {
                            stats.collisions += 1;
                            Heard::Silence
                        }
                    }
                } else {
                    Heard::Idled
                };
                let next = protocols[v as usize].heard(&ctxs[v as usize], round, outcome);
                // Budget adjudication, same semantics as the CONGEST
                // kernel: an over-budget node falls silent permanently
                // and the run fails with the typed error at the end.
                let exhausted = self
                    .energy
                    .budget
                    .is_some_and(|b| stats.energy_by_node[v as usize] > b);
                if exhausted && first_exhausted.is_none() {
                    first_exhausted = Some((node, round));
                }
                match next {
                    NextWake::At(r) => {
                        if r <= round {
                            return Err(SimError::WakeNotInFuture {
                                node,
                                round,
                                requested: r,
                            });
                        }
                        if exhausted {
                            next_wake[v as usize] = None;
                            running -= 1;
                        } else {
                            next_wake[v as usize] = Some(r);
                            queue.push(Reverse((r, v)));
                        }
                    }
                    NextWake::Halt => {
                        next_wake[v as usize] = None;
                        running -= 1;
                    }
                }
            }
            for &v in &active_now {
                on_air[v as usize] = None;
            }
        }

        if let Some((node, round)) = first_exhausted {
            return Err(SimError::EnergyExhausted { node, round });
        }
        if running > 0 {
            return Err(SimError::Stalled {
                running,
                round: stats.rounds,
            });
        }
        Ok(RadioOutcome {
            states: protocols,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    /// Everyone transmits its id in round `r`, listens in round `r + 1`.
    #[derive(Debug)]
    struct PingAll {
        when: Round,
        heard: Option<Heard<u64>>,
    }

    impl RadioProtocol for PingAll {
        type Msg = u64;

        fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
            NextWake::At(self.when)
        }

        fn act(&mut self, ctx: &NodeCtx, round: Round) -> RadioAction<u64> {
            if round == self.when {
                RadioAction::Transmit(ctx.external_id)
            } else {
                RadioAction::Listen
            }
        }

        fn heard(&mut self, _ctx: &NodeCtx, round: Round, outcome: Heard<u64>) -> NextWake {
            if round == self.when {
                NextWake::At(round + 1)
            } else {
                self.heard = Some(outcome);
                NextWake::Halt
            }
        }
    }

    #[test]
    fn simultaneous_transmitters_do_not_reach_each_other() {
        // Everyone transmits in round 1 and listens in round 2: round 2 is
        // silent, so all nodes hear silence.
        let g = generators::ring(5, 0).unwrap();
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|_| PingAll {
                when: 1,
                heard: None,
            })
            .unwrap();
        assert!(out.states.iter().all(|s| s.heard == Some(Heard::Silence)));
        assert_eq!(out.stats.energy_by_node, vec![2; 5]);
        assert_eq!(out.stats.transmissions, 5);
        assert_eq!(out.stats.receptions, 0);
    }

    /// One designated transmitter per round; others listen.
    #[derive(Debug)]
    struct OneSpeaks {
        speaker: bool,
        heard: Option<Heard<u64>>,
    }

    impl RadioProtocol for OneSpeaks {
        type Msg = u64;

        fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
            NextWake::At(1)
        }

        fn act(&mut self, ctx: &NodeCtx, _round: Round) -> RadioAction<u64> {
            if self.speaker {
                RadioAction::Transmit(ctx.external_id)
            } else {
                RadioAction::Listen
            }
        }

        fn heard(&mut self, _ctx: &NodeCtx, _round: Round, outcome: Heard<u64>) -> NextWake {
            self.heard = Some(outcome);
            NextWake::Halt
        }
    }

    #[test]
    fn single_transmitter_reaches_neighbors_under_all_rules() {
        let g = generators::star(5, 0).unwrap(); // node 0 is the hub
        for rule in [
            CollisionRule::Local,
            CollisionRule::Detection,
            CollisionRule::Silence,
        ] {
            let out = RadioSimulator::new(&g, rule)
                .run(|ctx| OneSpeaks {
                    speaker: ctx.node.raw() == 0,
                    heard: None,
                })
                .unwrap();
            for leaf in 1..5 {
                match (&rule, out.states[leaf].heard.as_ref().unwrap()) {
                    (CollisionRule::Local, Heard::All(v)) => assert_eq!(v, &vec![1]),
                    (_, Heard::One(id)) => assert_eq!(*id, 1),
                    other => panic!("unexpected outcome under {rule:?}: {other:?}"),
                }
            }
            assert_eq!(out.states[0].heard, Some(Heard::Transmitted));
        }
    }

    #[test]
    fn collisions_depend_on_the_rule() {
        // Star: all 4 leaves transmit; the hub listens.
        let g = generators::star(5, 0).unwrap();
        for (rule, expect_collision_marker, expect_all) in [
            (CollisionRule::Local, false, true),
            (CollisionRule::Detection, true, false),
            (CollisionRule::Silence, false, false),
        ] {
            let out = RadioSimulator::new(&g, rule)
                .run(|ctx| OneSpeaks {
                    speaker: ctx.node.raw() != 0,
                    heard: None,
                })
                .unwrap();
            let hub = out.states[0].heard.clone().unwrap();
            match hub {
                Heard::All(v) => {
                    assert!(expect_all, "{rule:?}");
                    assert_eq!(v.len(), 4);
                }
                Heard::Collision => assert!(expect_collision_marker, "{rule:?}"),
                Heard::Silence => {
                    assert!(!expect_all && !expect_collision_marker, "{rule:?}")
                }
                other => panic!("unexpected hub outcome: {other:?}"),
            }
            if !matches!(rule, CollisionRule::Local) {
                assert_eq!(out.stats.collisions, 1);
            }
        }
    }

    #[test]
    fn idle_rounds_cost_no_energy() {
        #[derive(Debug)]
        struct Idler;
        impl RadioProtocol for Idler {
            type Msg = u64;
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn act(&mut self, _: &NodeCtx, _: Round) -> RadioAction<u64> {
                RadioAction::Idle
            }
            fn heard(&mut self, _: &NodeCtx, round: Round, outcome: Heard<u64>) -> NextWake {
                assert_eq!(outcome, Heard::Idled);
                if round < 10 {
                    NextWake::At(round + 1)
                } else {
                    NextWake::Halt
                }
            }
        }
        let g = generators::ring(3, 0).unwrap();
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|_| Idler)
            .unwrap();
        assert_eq!(out.stats.energy_max(), 0);
        assert_eq!(out.stats.rounds, 10);
        assert_eq!(out.stats.energy_avg(), 0.0);
    }

    /// The unified [`EnergyModel`] charging path: custom per-bit and idle
    /// pricing replaces the historical hard-coded 1/1/0 schedule.
    #[test]
    fn custom_energy_model_prices_bits_and_idling() {
        // Star: the hub (node 0) transmits its 1-bit external id; leaves
        // listen. round=10, tx=3/bit, rx=2/bit, idle=7.
        let g = generators::star(5, 0).unwrap();
        let model = EnergyModel {
            round_cost: 10,
            tx_bit_cost: 3,
            rx_bit_cost: 2,
            idle_cost: 7,
            budget: None,
        };
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .with_energy(model)
            .run(|ctx| OneSpeaks {
                speaker: ctx.node.raw() == 0,
                heard: None,
            })
            .unwrap();
        // Hub external id is 1 → bit_size 1: transmit = 10 + 3·1.
        assert_eq!(out.stats.energy_by_node[0], 13);
        // Each leaf listens (10) and hears the 1-bit message (2·1).
        assert_eq!(out.stats.energy_by_node[1..], [12, 12, 12, 12]);

        // The default pricing is exactly EnergyModel::radio_default().
        let classic = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|ctx| OneSpeaks {
                speaker: ctx.node.raw() == 0,
                heard: None,
            })
            .unwrap();
        let explicit = RadioSimulator::new(&g, CollisionRule::Local)
            .with_energy(EnergyModel::radio_default())
            .run(|ctx| OneSpeaks {
                speaker: ctx.node.raw() == 0,
                heard: None,
            })
            .unwrap();
        assert_eq!(classic.stats, explicit.stats);
        assert_eq!(classic.stats.energy_by_node, vec![1; 5]);
    }

    /// A budgeted model makes over-spending nodes fall silent and the
    /// run fail with the typed error, like the CONGEST kernel.
    #[test]
    fn energy_budget_exhaustion_is_typed() {
        // Everyone transmits in round 1 and would listen in round 2, but
        // a 1 nJ budget is exhausted by the first transmission (round
        // cost 1 + 1 bit · 1 nJ = 2 > 1).
        let g = generators::ring(5, 0).unwrap();
        let model = EnergyModel::radio_default()
            .with_tx_bit_cost(1)
            .with_budget(1);
        let err = RadioSimulator::new(&g, CollisionRule::Local)
            .with_energy(model)
            .run(|_| PingAll {
                when: 1,
                heard: None,
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::EnergyExhausted {
                    node,
                    round: 1,
                } if node == NodeId::new(0)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn round_budget_is_enforced() {
        #[derive(Debug)]
        struct Forever;
        impl RadioProtocol for Forever {
            type Msg = u64;
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn act(&mut self, _: &NodeCtx, _: Round) -> RadioAction<u64> {
                RadioAction::Idle
            }
            fn heard(&mut self, _: &NodeCtx, round: Round, _: Heard<u64>) -> NextWake {
                NextWake::At(round + 1)
            }
        }
        let g = generators::ring(3, 0).unwrap();
        let err = RadioSimulator::new(&g, CollisionRule::Local)
            .with_max_rounds(20)
            .run(|_| Forever)
            .unwrap_err();
        assert!(matches!(err, SimError::MaxRoundsExceeded { limit: 20, .. }));
    }
}
