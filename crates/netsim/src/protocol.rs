//! The node-side programming interface.

use std::ops::Index;
use std::sync::Arc;

use graphlib::{NodeId, Port};

use crate::{Payload, Round};

/// A message together with the local port it is sent through or was
/// received on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The local port (for a send: where to send; for a receive: where the
    /// message arrived).
    pub port: Port,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Convenience constructor.
    pub fn new(port: Port, msg: M) -> Self {
        Envelope { port, msg }
    }
}

/// What a node does after finishing a round (or after `init`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextWake {
    /// Sleep until the given round (exclusive of everything in between).
    /// From `init`, `At(1)` means "awake from the very first round".
    At(Round),
    /// Terminate locally. The node never wakes again; by the paper's model
    /// its awake complexity stops accumulating here.
    Halt,
}

/// The initial knowledge the model grants a node, plus immutable run
/// parameters. Deliberately **excludes** neighbor identities (KT0): a node
/// sees its ports and the weight on each, nothing else about the far side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's internal index (stable, `0..n`).
    pub node: NodeId,
    /// This node's unique external id in `[1, N]` — what the algorithms use
    /// as "the ID".
    pub external_id: u64,
    /// Number of nodes `n` (known to all nodes, per the model).
    pub n: usize,
    /// Upper bound `N` on external ids (known to all; the deterministic
    /// algorithm requires it).
    pub max_external_id: u64,
    /// Weight of the edge behind each port, indexed by [`Port`].
    pub port_weights: PortWeights,
    /// Seed material for this node's private randomness source.
    pub rng_seed: u64,
}

/// A node's per-port edge weights: a `[Port]`-indexed view into one shared
/// run-wide weight array (the graph's flat CSR weights).
///
/// Behaves like the `Vec<u64>` it replaced — `weights[i]`, `len()`,
/// iteration — but every node's view shares a single `Arc<[u64]>`, so
/// building `n` contexts costs one allocation instead of `n` (the
/// scale-campaign setup-cost fix), and contexts stay cheaply clonable and
/// `Send + Sync` for the sharded send path.
#[derive(Debug, Clone, Eq)]
pub struct PortWeights {
    all: Arc<[u64]>,
    start: u32,
    len: u32,
}

impl PortWeights {
    /// The `len`-port window starting at global port slot `start` of the
    /// shared weight array.
    pub(crate) fn slice(all: Arc<[u64]>, start: u32, len: u32) -> Self {
        debug_assert!(start as usize + len as usize <= all.len());
        PortWeights { all, start, len }
    }

    /// Number of ports (the owning node's degree).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the node has no ports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The weights as a contiguous slice, indexed by [`Port`].
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.all[self.start as usize..self.start as usize + self.len as usize]
    }

    /// Iterates over the per-port weights in port order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.as_slice().iter()
    }
}

impl Index<usize> for PortWeights {
    type Output = u64;

    fn index(&self, index: usize) -> &u64 {
        &self.as_slice()[index]
    }
}

/// Equality is by weight values (the node's observable knowledge), not by
/// backing-array identity: a context built from a standalone vector equals
/// one sliced out of the shared run-wide array.
impl PartialEq for PortWeights {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A standalone weight list (tests, hand-built contexts) becomes its own
/// single-node backing array.
impl From<Vec<u64>> for PortWeights {
    fn from(weights: Vec<u64>) -> Self {
        let len = weights.len() as u32;
        PortWeights {
            all: weights.into(),
            start: 0,
            len,
        }
    }
}

impl<'a> IntoIterator for &'a PortWeights {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl NodeCtx {
    /// Number of ports (the node's degree).
    pub fn degree(&self) -> usize {
        self.port_weights.len()
    }

    /// Weight of the edge behind `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn weight(&self, port: Port) -> u64 {
        self.port_weights[port.index()]
    }

    /// Iterates over all ports.
    pub fn ports(&self) -> impl Iterator<Item = Port> {
        (0..self.port_weights.len() as u32).map(Port::new)
    }
}

/// The buffer a protocol writes its outgoing envelopes into during the
/// send half-step.
///
/// The executor owns one `Outbox` per run and hands it to every
/// [`Protocol::send`] call, cleared; the protocol appends envelopes and the
/// executor drains them afterwards. After the first few rounds the backing
/// storage has reached its high-water mark and sends stop allocating —
/// this is the heart of the allocation-free hot path (see the "Executor
/// memory model" section of DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbox<M> {
    envelopes: Vec<Envelope<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox with no backing storage yet.
    #[must_use]
    pub fn new() -> Self {
        Outbox {
            envelopes: Vec::new(),
        }
    }

    /// Queues `msg` for sending through `port`.
    #[inline]
    pub fn push(&mut self, port: Port, msg: M) {
        self.envelopes.push(Envelope::new(port, msg));
    }

    /// Queues an already-built envelope.
    #[inline]
    pub fn push_envelope(&mut self, envelope: Envelope<M>) {
        self.envelopes.push(envelope);
    }

    /// Queues every envelope of an iterator (the `collect` replacement for
    /// protocols that build their sends with iterator chains).
    pub fn extend(&mut self, envelopes: impl IntoIterator<Item = Envelope<M>>) {
        self.envelopes.extend(envelopes);
    }

    /// Number of queued envelopes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// Whether no envelope is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }

    /// The queued envelopes, in push order.
    #[must_use]
    pub fn as_slice(&self) -> &[Envelope<M>] {
        &self.envelopes
    }

    /// Drops the queued envelopes, keeping the backing storage.
    pub fn clear(&mut self) {
        self.envelopes.clear();
    }

    /// Removes and yields the queued envelopes, keeping the backing
    /// storage for the next send.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Envelope<M>> {
        self.envelopes.drain(..)
    }

    /// Consumes the outbox into its envelope list (test/oracle helper; the
    /// hot path uses [`Outbox::drain`] to keep the storage).
    #[must_use]
    pub fn into_envelopes(self) -> Vec<Envelope<M>> {
        self.envelopes
    }
}

/// A distributed protocol, written from a single node's point of view.
///
/// One value of the implementing type is created per node. In each round
/// where the node is awake the simulator calls [`Protocol::send`] first
/// (local computation + outgoing messages) and then [`Protocol::deliver`]
/// with the messages that arrived *in the same round* from neighbors that
/// were awake. The value returned from `deliver` (and from
/// [`Protocol::init`] before round 1) schedules the node's next awake round
/// or halts it.
///
/// Protocols must be `Send`: the sharded executor may run the send
/// half-step of disjoint node partitions on worker threads (a protocol
/// value is still only ever touched by one thread at a time).
pub trait Protocol: Send {
    /// Message payload type.
    type Msg: Payload;

    /// Called before round 1; returns the node's first wake.
    fn init(&mut self, ctx: &NodeCtx) -> NextWake;

    /// Send half-step of an awake round: append outgoing messages to
    /// `outbox` (handed in cleared; its storage is reused across rounds).
    /// Send at most one message per port per round to stay within the
    /// CONGEST discipline — the simulator delivers every envelope and
    /// enforces the bit limit per envelope, not per port.
    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<Self::Msg>);

    /// Deliver half-step of an awake round; `inbox` holds the messages from
    /// awake neighbors, in ascending port order. Returns the node's next
    /// wake (strictly after `round`) or halts.
    fn deliver(&mut self, ctx: &NodeCtx, round: Round, inbox: &[Envelope<Self::Msg>]) -> NextWake;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_accessors() {
        let ctx = NodeCtx {
            node: NodeId::new(2),
            external_id: 3,
            n: 5,
            max_external_id: 5,
            port_weights: vec![10, 20, 30].into(),
            rng_seed: 0,
        };
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.weight(Port::new(1)), 20);
        let ports: Vec<Port> = ctx.ports().collect();
        assert_eq!(ports, vec![Port::new(0), Port::new(1), Port::new(2)]);
    }

    #[test]
    fn port_weights_window_views_the_shared_array() {
        let all: Arc<[u64]> = vec![1, 2, 3, 4, 5].into();
        let w = PortWeights::slice(all.clone(), 1, 3);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.as_slice(), &[2, 3, 4]);
        assert_eq!(w[0], 2);
        assert_eq!(w.iter().copied().sum::<u64>(), 9);
        // Value equality across different backings.
        assert_eq!(w, PortWeights::from(vec![2, 3, 4]));
        assert_ne!(w, PortWeights::from(vec![2, 3]));
        let empty = PortWeights::slice(all, 5, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn envelope_constructor() {
        let e = Envelope::new(Port::new(1), 42u64);
        assert_eq!(e.port, Port::new(1));
        assert_eq!(e.msg, 42);
    }

    #[test]
    fn outbox_accumulates_and_reuses_storage() {
        let mut out: Outbox<u64> = Outbox::new();
        assert!(out.is_empty());
        out.push(Port::new(0), 7);
        out.extend((1..3).map(|p| Envelope::new(Port::new(p), u64::from(p))));
        assert_eq!(out.len(), 3);
        assert_eq!(out.as_slice()[0], Envelope::new(Port::new(0), 7));
        let drained: Vec<Envelope<u64>> = out.drain().collect();
        assert_eq!(drained.len(), 3);
        assert!(out.is_empty());
        // The storage survives the drain: pushing again must not grow it.
        out.push(Port::new(4), 9);
        assert_eq!(out.into_envelopes(), vec![Envelope::new(Port::new(4), 9)]);
    }
}
