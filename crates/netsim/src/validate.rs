//! Dynamic model-conformance checking (feature `validate`).
//!
//! The paper's results hold only under the exact model of Section 1.1:
//! synchronous CONGEST rounds, `O(log n)`-bit messages, sends and receives
//! only while awake, and messages to sleeping nodes lost. The static lint
//! (`crates/conformance`) polices the *source*; this module polices the
//! *execution*: [`ValidatingExecutor`] wraps [`Simulator`], records a full
//! [`Trace`], and audits every event against the model rules below. It also
//! re-runs the protocol with the same seed and demands bit-identical stats
//! and trace — the determinism self-check that underwrites every
//! differential test in the repo.
//!
//! The audit itself ([`audit`]) is a pure function over `(stats, trace)` so
//! tests can feed it hand-built cheating traces — the engine never calls
//! `send` on a sleeping node, so a *real* protocol cannot violate the
//! awake-sender rule, but a corrupted trace can, and the checker must
//! reject it.

use std::collections::BTreeMap;
use std::fmt;

use graphlib::WeightedGraph;

use crate::{
    bits_for_range, NodeCtx, Protocol, Round, RunOutcome, RunStats, SimConfig, SimError, Simulator,
    Trace, TraceEvent,
};

/// The model rules of Section 1.1 that the dynamic checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelRule {
    /// Every transmitted message (delivered or lost) originates from a node
    /// that is awake in the sending round.
    AwakeSender,
    /// A message is lost **iff** its receiver sleeps in the delivery round:
    /// no `Lost` event with an awake receiver, no `Delivered` event with a
    /// sleeping one.
    LossIffAsleep,
    /// Per-message wire size stays within the CONGEST budget
    /// `C·⌈log₂ n⌉` for the algorithm's recorded constant `C`.
    OversizedMessage,
    /// Trace and stats agree: delivered + lost event counts, per-node awake
    /// counts, and per-node received bits all reconcile.
    Conservation,
    /// Two runs with the same seed produce bit-identical stats and traces.
    Determinism,
}

impl ModelRule {
    /// Stable kebab-case rule name, as printed in diagnostics and matched
    /// by tests.
    pub fn name(self) -> &'static str {
        match self {
            ModelRule::AwakeSender => "awake-sender",
            ModelRule::LossIffAsleep => "loss-iff-asleep",
            ModelRule::OversizedMessage => "oversized-message",
            ModelRule::Conservation => "conservation",
            ModelRule::Determinism => "determinism",
        }
    }
}

impl fmt::Display for ModelRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected breach of a [`ModelRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that was broken.
    pub rule: ModelRule,
    /// The round the offending event belongs to (0 for run-level rules
    /// such as determinism).
    pub round: Round,
    /// Human-readable specifics: nodes, counts, sizes.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}: {}: {}", self.round, self.rule, self.detail)
    }
}

/// Why a validated run was rejected.
///
/// Deliberately *not* `#[non_exhaustive]`: downstream error types (e.g.
/// `mst-core`'s `RunError`) match on it exhaustively to keep the
/// sim-failure / model-violation distinction intact.
#[derive(Debug)]
pub enum ValidateError {
    /// The simulator itself failed (bad port, stall, round budget, ...).
    Sim(SimError),
    /// The run completed but broke one or more model rules.
    Model(Vec<Violation>),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Sim(e) => write!(f, "simulation error: {e}"),
            ValidateError::Model(violations) => {
                write!(f, "{} model violation(s)", violations.len())?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ValidateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidateError::Sim(e) => Some(e),
            ValidateError::Model(_) => None,
        }
    }
}

impl ValidateError {
    /// The violations of a model rejection (empty for [`ValidateError::Sim`]).
    pub fn violations(&self) -> &[Violation] {
        match self {
            ValidateError::Sim(_) => &[],
            ValidateError::Model(v) => v,
        }
    }

    /// `true` if any violation breaks `rule`.
    pub fn breaks(&self, rule: ModelRule) -> bool {
        self.violations().iter().any(|v| v.rule == rule)
    }
}

/// Audits a completed run against the statically checkable model rules.
///
/// `bit_budget` is the per-message CONGEST budget in bits (`None` skips the
/// oversize rule). The trace must have been recorded
/// ([`SimConfig::record_trace`]); an empty trace with nonzero stats is
/// itself reported as a conservation violation, so a forgotten
/// `with_trace()` cannot silently pass.
///
/// Determinism is *not* audited here — it needs a second run, which is
/// [`ValidatingExecutor::run`]'s job.
pub fn audit(stats: &RunStats, trace: &Trace, bit_budget: Option<usize>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let n = stats.awake_by_node.len();

    // Round-indexed awake sets, rebuilt from the trace. BTreeMap keeps the
    // audit itself deterministic.
    let mut awake: BTreeMap<Round, Vec<u32>> = BTreeMap::new();
    let mut awake_counts = vec![0u64; n];
    for event in trace.events() {
        if let TraceEvent::Awake { round, node } = event {
            awake.entry(*round).or_default().push(node.raw());
            if node.index() < n {
                awake_counts[node.index()] += 1;
            }
        }
    }
    let is_awake =
        |round: Round, node: u32| awake.get(&round).is_some_and(|set| set.contains(&node));

    let mut delivered = 0u64;
    let mut lost = 0u64;
    let mut dropped = 0u64;
    let mut crashed = 0u64;
    let mut bits_received = vec![0u64; n];
    for event in trace.events() {
        match event {
            TraceEvent::Delivered {
                round,
                from,
                to,
                bits,
                ..
            } => {
                delivered += 1;
                if to.index() < n {
                    bits_received[to.index()] += *bits as u64;
                }
                if !is_awake(*round, from.raw()) {
                    violations.push(Violation {
                        rule: ModelRule::AwakeSender,
                        round: *round,
                        detail: format!("node {} sent while asleep", from.raw()),
                    });
                }
                if !is_awake(*round, to.raw()) {
                    violations.push(Violation {
                        rule: ModelRule::LossIffAsleep,
                        round: *round,
                        detail: format!("message delivered to sleeping node {}", to.raw()),
                    });
                }
                if let Some(budget) = bit_budget {
                    if *bits > budget {
                        violations.push(Violation {
                            rule: ModelRule::OversizedMessage,
                            round: *round,
                            detail: format!(
                                "{} → {}: {bits} bits exceeds the {budget}-bit budget",
                                from.raw(),
                                to.raw()
                            ),
                        });
                    }
                }
            }
            TraceEvent::Lost { round, from, to } => {
                lost += 1;
                if !is_awake(*round, from.raw()) {
                    violations.push(Violation {
                        rule: ModelRule::AwakeSender,
                        round: *round,
                        detail: format!("node {} sent while asleep", from.raw()),
                    });
                }
                if is_awake(*round, to.raw()) {
                    violations.push(Violation {
                        rule: ModelRule::LossIffAsleep,
                        round: *round,
                        detail: format!("message to awake node {} was lost", to.raw()),
                    });
                }
            }
            TraceEvent::Dropped { round, from, .. } => {
                // An injected drop destroys a message in flight; the
                // receiver's state is irrelevant (that is exactly what
                // distinguishes it from a model loss), but the sender must
                // still have been awake to transmit it.
                dropped += 1;
                if !is_awake(*round, from.raw()) {
                    violations.push(Violation {
                        rule: ModelRule::AwakeSender,
                        round: *round,
                        detail: format!("node {} sent while asleep", from.raw()),
                    });
                }
            }
            TraceEvent::Crashed { .. } => {
                crashed += 1;
            }
            TraceEvent::Awake { .. } | TraceEvent::Halted { .. } => {}
        }
    }

    // Lost events carry no size, so the stats-side maximum (which counts
    // lost messages too — see `RunStats::max_message_bits`) is the budget
    // authority for them.
    if let Some(budget) = bit_budget {
        if stats.max_message_bits > budget as u64 {
            violations.push(Violation {
                rule: ModelRule::OversizedMessage,
                round: 0,
                detail: format!(
                    "stats report a {}-bit message over the {budget}-bit budget",
                    stats.max_message_bits
                ),
            });
        }
    }

    if delivered != stats.messages_delivered || lost != stats.messages_lost {
        violations.push(Violation {
            rule: ModelRule::Conservation,
            round: 0,
            detail: format!(
                "trace has {delivered} delivered / {lost} lost events, stats claim {} / {}",
                stats.messages_delivered, stats.messages_lost
            ),
        });
    }
    if dropped != stats.injected_drops || crashed != stats.crashed_nodes {
        violations.push(Violation {
            rule: ModelRule::Conservation,
            round: 0,
            detail: format!(
                "trace has {dropped} dropped / {crashed} crashed events, stats claim {} / {}",
                stats.injected_drops, stats.crashed_nodes
            ),
        });
    }
    if awake_counts != stats.awake_by_node {
        violations.push(Violation {
            rule: ModelRule::Conservation,
            round: 0,
            detail: format!(
                "per-node awake counts diverge: trace {awake_counts:?}, stats {:?}",
                stats.awake_by_node
            ),
        });
    }
    if bits_received != stats.bits_received_by_node {
        violations.push(Violation {
            rule: ModelRule::Conservation,
            round: 0,
            detail: format!(
                "per-node received bits diverge: trace {bits_received:?}, stats {:?}",
                stats.bits_received_by_node
            ),
        });
    }

    violations
}

/// A [`Simulator`] wrapper that proves a run obeys the sleeping model.
///
/// `run` executes the protocol **twice** with the same seed: the first run
/// is audited event-by-event ([`audit`]), the second must reproduce the
/// first bit-for-bit ([`ModelRule::Determinism`]). Tracing is forced on and
/// the engine's [`SimConfig::bit_limit`] is tightened to the CONGEST budget
/// `C·⌈log₂ n⌉` when a constant is supplied, so an oversized message aborts
/// the run *and* is reported as a model violation rather than a plain
/// simulator error.
#[derive(Debug)]
pub struct ValidatingExecutor<'g> {
    graph: &'g WeightedGraph,
    config: SimConfig,
    congest_constant: Option<u64>,
}

impl<'g> ValidatingExecutor<'g> {
    /// Creates a validating wrapper over `graph` with `config`.
    pub fn new(graph: &'g WeightedGraph, config: SimConfig) -> Self {
        ValidatingExecutor {
            graph,
            config,
            congest_constant: None,
        }
    }

    /// Sets the algorithm's CONGEST constant `C`; messages are then held to
    /// `C·⌈log₂ n⌉` bits (see `AlgorithmSpec::congest_constant` in
    /// `mst-core` for the recorded per-algorithm values).
    pub fn with_congest_constant(mut self, c: u64) -> Self {
        self.congest_constant = Some(c);
        self
    }

    /// The per-message bit budget this executor enforces, if any: the
    /// tighter of the config's own `bit_limit` and `C·⌈log₂ n⌉`.
    pub fn bit_budget(&self) -> Option<usize> {
        let congest = self
            .congest_constant
            .map(|c| c as usize * bits_for_range(self.graph.node_count().max(2) as u64));
        match (self.config.bit_limit, congest) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Runs `factory`-created protocol instances twice and audits the
    /// result. The factory must be deterministic: instance state may only
    /// depend on the [`NodeCtx`] (including its derived `rng_seed`), or the
    /// determinism check will fire spuriously.
    ///
    /// # Errors
    ///
    /// [`ValidateError::Model`] when a model rule is broken (including an
    /// over-budget message, mapped from the engine's
    /// [`SimError::MessageTooLarge`]); [`ValidateError::Sim`] for any other
    /// simulator failure.
    pub fn run<P, F>(&self, mut factory: F) -> Result<RunOutcome<P>, ValidateError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx) -> P,
    {
        let mut config = self.config.clone();
        config.record_trace = true;
        config.bit_limit = self.bit_budget();

        let sim = Simulator::new(self.graph, config.clone());
        let first = sim.run(&mut factory).map_err(lift_sim_error)?;

        let mut violations = audit(&first.stats, &first.trace, config.bit_limit);

        let second: RunOutcome<P> = Simulator::new(self.graph, config)
            .run(&mut factory)
            .map_err(lift_sim_error)?;
        if second.stats != first.stats
            || second.trace != first.trace
            || second.metrics != first.metrics
        {
            let detail = if second.stats != first.stats {
                format!(
                    "same-seed re-run diverged: stats differ (first {} delivered / {} rounds, second {} / {})",
                    first.stats.messages_delivered,
                    first.stats.rounds,
                    second.stats.messages_delivered,
                    second.stats.rounds
                )
            } else if second.trace != first.trace {
                format!(
                    "same-seed re-run diverged: traces differ ({} vs {} events)",
                    first.trace.len(),
                    second.trace.len()
                )
            } else {
                format!(
                    "same-seed re-run diverged: metrics differ ({} vs {} active rounds)",
                    first.metrics.active_rounds(),
                    second.metrics.active_rounds()
                )
            };
            violations.push(Violation {
                rule: ModelRule::Determinism,
                round: 0,
                detail,
            });
        }

        if violations.is_empty() {
            Ok(first)
        } else {
            Err(ValidateError::Model(violations))
        }
    }
}

/// An over-budget message is a model violation, not an infrastructure
/// failure; everything else passes through as [`ValidateError::Sim`].
fn lift_sim_error(err: SimError) -> ValidateError {
    match err {
        SimError::MessageTooLarge {
            node,
            round,
            bits,
            limit,
        } => ValidateError::Model(vec![Violation {
            rule: ModelRule::OversizedMessage,
            round,
            detail: format!(
                "node {} sent a {bits}-bit message over the {limit}-bit budget",
                node.raw()
            ),
        }]),
        other => ValidateError::Sim(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::Flood;
    use crate::{Envelope, NextWake, Outbox};
    use graphlib::{generators, NodeId, Port};

    fn clean_run() -> (RunStats, Trace) {
        let g = generators::ring(6, 3).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace())
            .run(|ctx| Flood::new(ctx.node.raw() == 0))
            .unwrap();
        (out.stats, out.trace)
    }

    #[test]
    fn audit_accepts_a_clean_run() {
        let (stats, trace) = clean_run();
        assert_eq!(audit(&stats, &trace, Some(64)), Vec::new());
    }

    #[test]
    fn validating_executor_accepts_flood() {
        let g = generators::ring(6, 3).unwrap();
        let out = ValidatingExecutor::new(&g, SimConfig::default())
            .with_congest_constant(4)
            .run(|ctx| Flood::new(ctx.node.raw() == 0))
            .unwrap();
        assert!(out.states.iter().all(Flood::informed));
        assert!(!out.trace.is_empty());
    }

    /// Cheating fixture: a protocol whose message is far over any
    /// `C·⌈log₂ n⌉` budget. The engine aborts the run and the executor
    /// reports it as an oversized-message model violation.
    #[test]
    fn validating_executor_rejects_oversized_message() {
        #[derive(Debug)]
        struct Bloated;
        impl Protocol for Bloated {
            type Msg = u64;
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, ctx: &NodeCtx, _: Round, outbox: &mut Outbox<u64>) {
                outbox.extend(ctx.ports().map(|p| Envelope::new(p, u64::MAX)));
            }
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
                NextWake::Halt
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let err = ValidatingExecutor::new(&g, SimConfig::default())
            .with_congest_constant(2) // budget 2·⌈log₂ 4⌉ = 4 bits; payload is 64
            .run(|_| Bloated)
            .unwrap_err();
        assert!(err.breaks(ModelRule::OversizedMessage), "{err}");
    }

    /// Cheating fixture: a forged trace claiming node 1 transmitted in a
    /// round it was never awake in. No real protocol can produce this (the
    /// engine only calls `send` on awake nodes), so it is synthesized.
    #[test]
    fn audit_rejects_send_while_asleep() {
        let mut stats = RunStats::new(2, 1);
        stats.rounds = 1;
        stats.awake_by_node = vec![1, 0];
        stats.messages_lost = 1;
        let mut trace = Trace::default();
        trace.push(TraceEvent::Awake {
            round: 1,
            node: NodeId::new(0),
        });
        trace.push(TraceEvent::Lost {
            round: 1,
            from: NodeId::new(1), // asleep this round!
            to: NodeId::new(0),
        });
        let violations = audit(&stats, &trace, None);
        assert!(
            violations.iter().any(|v| v.rule == ModelRule::AwakeSender),
            "{violations:?}"
        );
        // The forged event also breaks loss-iff-asleep: the receiver (node
        // 0) is awake, so the message could not have been lost.
        assert!(violations
            .iter()
            .any(|v| v.rule == ModelRule::LossIffAsleep));
    }

    #[test]
    fn audit_rejects_delivery_to_sleeping_node() {
        let mut stats = RunStats::new(2, 1);
        stats.rounds = 1;
        stats.awake_by_node = vec![1, 0];
        stats.messages_delivered = 1;
        stats.bits_received_by_node = vec![0, 4];
        let mut trace = Trace::default();
        trace.push(TraceEvent::Awake {
            round: 1,
            node: NodeId::new(0),
        });
        trace.push(TraceEvent::Delivered {
            round: 1,
            from: NodeId::new(0),
            to: NodeId::new(1), // asleep this round!
            port: Port::new(0),
            bits: 4,
            payload: "forged".into(),
        });
        let violations = audit(&stats, &trace, None);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == ModelRule::LossIffAsleep),
            "{violations:?}"
        );
    }

    #[test]
    fn audit_rejects_oversized_trace_event() {
        let (stats, trace) = clean_run();
        // The flood token is 1 bit; only a zero budget is tighter.
        let violations = audit(&stats, &trace, Some(0));
        assert!(
            violations
                .iter()
                .any(|v| v.rule == ModelRule::OversizedMessage),
            "{violations:?}"
        );
    }

    #[test]
    fn audit_rejects_count_mismatch() {
        let (mut stats, trace) = clean_run();
        stats.messages_delivered += 1; // cook the books
        let violations = audit(&stats, &trace, None);
        assert!(
            violations.iter().any(|v| v.rule == ModelRule::Conservation),
            "{violations:?}"
        );
    }

    #[test]
    fn audit_rejects_missing_trace() {
        let (stats, _) = clean_run();
        // Nonzero stats with an empty trace: every reconciliation fails.
        let violations = audit(&stats, &Trace::default(), None);
        assert!(violations.iter().any(|v| v.rule == ModelRule::Conservation));
    }

    /// Cheating fixture: a protocol whose behavior depends on state outside
    /// the model (a shared counter across runs), so the same seed produces
    /// different executions. The determinism re-run must catch it.
    #[test]
    fn validating_executor_rejects_nondeterminism() {
        use std::cell::Cell;
        #[derive(Debug)]
        struct Moody {
            rounds_awake: u64,
        }
        impl Protocol for Moody {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<()>) {}
            fn deliver(&mut self, _: &NodeCtx, round: Round, _: &[Envelope<()>]) -> NextWake {
                if round < self.rounds_awake {
                    NextWake::At(round + 1)
                } else {
                    NextWake::Halt
                }
            }
        }
        let invocations = Cell::new(0u64);
        let g = generators::ring(4, 0).unwrap();
        let err = ValidatingExecutor::new(&g, SimConfig::default())
            .run(|_| {
                // Hidden cross-run state: the second run stays awake longer.
                invocations.set(invocations.get() + 1);
                Moody {
                    rounds_awake: invocations.get(),
                }
            })
            .unwrap_err();
        assert!(err.breaks(ModelRule::Determinism), "{err}");
    }

    #[test]
    fn bit_budget_takes_the_tighter_limit() {
        let g = generators::ring(4, 0).unwrap();
        let v = ValidatingExecutor::new(&g, SimConfig::default().with_bit_limit(3))
            .with_congest_constant(8); // 8·2 = 16 bits, looser than 3
        assert_eq!(v.bit_budget(), Some(3));
        let v = ValidatingExecutor::new(&g, SimConfig::default()).with_congest_constant(8);
        assert_eq!(v.bit_budget(), Some(16));
        let v = ValidatingExecutor::new(&g, SimConfig::default());
        assert_eq!(v.bit_budget(), None);
    }

    #[test]
    fn violation_display_names_the_rule() {
        let v = Violation {
            rule: ModelRule::AwakeSender,
            round: 7,
            detail: "node 3 sent while asleep".into(),
        };
        assert_eq!(
            v.to_string(),
            "round 7: awake-sender: node 3 sent while asleep"
        );
    }
}
