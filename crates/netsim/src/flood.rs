//! A minimal always-awake flooding protocol.
//!
//! Used in documentation examples and as a sanity baseline: it is the
//! traditional-model behaviour the sleeping model improves on (every node
//! stays awake until the wave passes it).

use crate::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

/// Floods a one-bit token from the source node(s) to the whole graph.
///
/// Every node stays awake until it has been informed and has re-broadcast
/// the token once, then halts. On a connected graph the run time is the
/// source eccentricity plus one, and the awake complexity equals the run
/// time for the farthest nodes — the always-awake cost profile.
#[derive(Debug, Clone)]
pub struct Flood {
    informed: bool,
    sent: bool,
}

impl Flood {
    /// Creates the per-node state; `source` nodes start informed.
    pub fn new(source: bool) -> Self {
        Flood {
            informed: source,
            sent: false,
        }
    }

    /// `true` once the token has reached this node.
    pub fn informed(&self) -> bool {
        self.informed
    }
}

impl Protocol for Flood {
    type Msg = ();

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        NextWake::At(1)
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<()>) {
        if self.informed && !self.sent {
            self.sent = true;
            outbox.extend(ctx.ports().map(|p| Envelope::new(p, ())));
        }
    }

    fn deliver(&mut self, _ctx: &NodeCtx, round: Round, inbox: &[Envelope<()>]) -> NextWake {
        if !inbox.is_empty() {
            self.informed = true;
        }
        if self.sent {
            NextWake::Halt
        } else {
            NextWake::At(round + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use graphlib::generators;

    #[test]
    fn flood_awake_equals_distance_profile() {
        let g = generators::path(6, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| Flood::new(ctx.node.raw() == 0))
            .unwrap();
        assert!(out.states.iter().all(Flood::informed));
        // Node at distance d is awake d+1 rounds (informed at round d... the
        // token reaches it in round d, it re-sends in round d+1).
        assert_eq!(out.stats.awake_by_node, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(out.stats.rounds, 6);
    }

    #[test]
    fn flood_from_all_sources_finishes_in_one_round_of_sends() {
        let g = generators::complete(5, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Flood::new(true))
            .unwrap();
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.awake_max(), 1);
    }

    #[test]
    fn uninformed_graph_stalls_nobody_but_never_halts_without_budget() {
        // No source at all: everyone waits forever; the budget trips.
        let g = generators::ring(4, 0).unwrap();
        let err = Simulator::new(&g, SimConfig::default().with_max_rounds(50))
            .run(|_| Flood::new(false))
            .unwrap_err();
        assert!(matches!(err, crate::SimError::MaxRoundsExceeded { .. }));
    }
}
