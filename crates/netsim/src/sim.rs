//! The public simulation surface: [`SimConfig`], [`RunOutcome`], and
//! [`Simulator`]. The executors themselves live in [`crate::engine`].

use graphlib::WeightedGraph;

use crate::engine::{self, Executor, ExecutorScratch};
use crate::metrics::Metrics;
use crate::{
    EnergyModel, FaultPlan, NodeCtx, Protocol, Round, RunStats, SimError, Trace, WakePolicy,
};

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Abort with [`SimError::MaxRoundsExceeded`] if any node is still
    /// running after this many rounds.
    pub max_rounds: Round,
    /// Per-message bit limit (the CONGEST `O(log n)` budget). `None`
    /// disables enforcement; sizes are still accounted either way.
    pub bit_limit: Option<usize>,
    /// Record a full [`Trace`] of the run (expensive; keep off in benches).
    pub record_trace: bool,
    /// Record per-round [`Metrics`] (round reports + awake timelines).
    /// Cheaper than a trace but still `O(active rounds + awake events)`
    /// memory; off by default, and the executors are bit-identical either
    /// way (the off-switch equivalence tests pin this).
    pub record_metrics: bool,
    /// Master seed; each node's private randomness derives from it.
    pub master_seed: u64,
    /// Deterministic fault-injection plan ([`FaultPlan`]). `None` — or an
    /// inert plan — leaves the executors on the exact no-fault path.
    pub faults: Option<FaultPlan>,
    /// Which time driver executes the run ([`Executor`]). All drivers
    /// produce bit-identical outcomes; they differ only in wall-clock
    /// cost. Defaults to [`Executor::Calendar`].
    pub executor: Executor,
    /// Worker shards for the send half-step. `1` (the default) runs
    /// fully serial; `K > 1` lets the kernel partition wide rounds'
    /// awake sets across `K` scoped worker threads. Outcomes — stats,
    /// trace, metrics, final states, every fingerprint — are
    /// bit-identical for every shard count (the cross-shard differential
    /// proptests pin this); shards trade wall-clock for cores, nothing
    /// else. `0` is treated as `1`.
    pub shards: u32,
    /// Energy cost model ([`EnergyModel`]). `None` — or an inert model —
    /// leaves the executors on the exact no-energy path; an active model
    /// charges a per-node nano-joule ledger inside the kernel, and a
    /// model with a budget turns exhaustion into
    /// [`SimError::EnergyExhausted`].
    pub energy: Option<EnergyModel>,
    /// Wake policy ([`WakePolicy`]): how requested wake rounds map to the
    /// rounds nodes actually wake in. The default [`WakePolicy::Block`]
    /// is the identity (today's block-timeline semantics).
    pub wake_policy: WakePolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_rounds: 1 << 40,
            bit_limit: None,
            record_trace: false,
            record_metrics: false,
            master_seed: 0,
            faults: None,
            executor: Executor::default(),
            shards: 1,
            energy: None,
            wake_policy: WakePolicy::Block,
        }
    }
}

impl SimConfig {
    /// Returns the config with the given master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Returns the config with a per-message bit limit.
    pub fn with_bit_limit(mut self, bits: usize) -> Self {
        self.bit_limit = Some(bits);
        self
    }

    /// Returns the config with tracing enabled.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Returns the config with per-round metrics recording enabled.
    pub fn with_metrics(mut self) -> Self {
        self.record_metrics = true;
        self
    }

    /// Returns the config with a round budget.
    pub fn with_max_rounds(mut self, rounds: Round) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Returns the config with a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Returns the config with the given time driver.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Returns the config with the given send-half-step shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with an energy cost model.
    pub fn with_energy(mut self, model: EnergyModel) -> Self {
        self.energy = Some(model);
        self
    }

    /// Returns the config with a wake policy.
    pub fn with_wake_policy(mut self, policy: WakePolicy) -> Self {
        self.wake_policy = policy;
        self
    }
}

/// Everything a run produces: final per-node protocol states, metrics, and
/// (if enabled) the trace.
#[derive(Debug, Clone)]
pub struct RunOutcome<P> {
    /// Final protocol value of each node, indexed by node.
    pub states: Vec<P>,
    /// Run metrics.
    pub stats: RunStats,
    /// Execution trace (empty unless [`SimConfig::record_trace`]).
    pub trace: Trace,
    /// Per-round telemetry (empty unless [`SimConfig::record_metrics`]).
    pub metrics: Metrics,
}

/// The simulator: a weighted graph plus a [`SimConfig`].
///
/// Execution goes through one generic kernel parameterized by the time
/// driver chosen in [`SimConfig::executor`]. The default
/// [`Executor::Calendar`] driver is event-driven: it keeps a priority
/// queue of scheduled wake rounds and jumps directly from one populated
/// round to the next, so a run costs `O(W log n + M)` where `W` is total
/// node-awake events and `M` total messages — *independent of the number
/// of silent rounds*. This is what makes the paper's `O(n N log n)`-round
/// algorithm simulable. Message routing uses the back ports precomputed
/// at graph build time, so the delivery path never scans an adjacency
/// list.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g WeightedGraph,
    config: SimConfig,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph`.
    pub fn new(graph: &'g WeightedGraph, config: SimConfig) -> Self {
        Simulator { graph, config }
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &WeightedGraph {
        self.graph
    }

    /// Runs `factory`-created protocol instances to completion.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised during execution (bad port, bit
    /// limit, non-future wake, stall, round budget).
    pub fn run<P, F>(&self, factory: F) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx) -> P,
    {
        self.run_with_scratch(&mut ExecutorScratch::new(), factory)
    }

    /// Like [`Simulator::run`], but reuses a caller-provided
    /// [`ExecutorScratch`] for all executor state (wake queue, outbox,
    /// delivery arena, recycled stats vectors). Callers executing many
    /// runs — the bench sweep's worker threads, the differential
    /// proptests — thread one scratch through every run so the executor
    /// allocates O(1) times per worker instead of per run. The scratch is
    /// fully re-initialized at the start of every run; results are
    /// bit-identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised during execution.
    pub fn run_with_scratch<P, F>(
        &self,
        scratch: &mut ExecutorScratch<P::Msg>,
        factory: F,
    ) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx) -> P,
    {
        self.run_with_observer_scratch(scratch, factory, |_, _: &[P]| {})
    }

    /// Like [`Simulator::run`], but invokes `observer` after every round in
    /// which at least one node was awake, with the round number and the
    /// current protocol states. Used by the invariant-checking tests.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised during execution.
    pub fn run_with_observer<P, F, O>(
        &self,
        factory: F,
        observer: O,
    ) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx) -> P,
        O: FnMut(Round, &[P]),
    {
        self.run_with_observer_scratch(&mut ExecutorScratch::new(), factory, observer)
    }

    /// The most general entry point: observer + reusable scratch. All
    /// other `run*` methods delegate here.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised during execution.
    pub fn run_with_observer_scratch<P, F, O>(
        &self,
        scratch: &mut ExecutorScratch<P::Msg>,
        factory: F,
        observer: O,
    ) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx) -> P,
        O: FnMut(Round, &[P]),
    {
        engine::run(self.graph, &self.config, factory, observer, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::Flood;
    use crate::{Envelope, NextWake, Outbox, SimError, TraceEvent};
    use graphlib::{generators, GraphBuilder, Port};

    /// Node i wakes only in round i+1, sends a unit message on every port,
    /// and halts — exercises round skipping and message loss.
    #[derive(Debug)]
    struct Staggered {
        my_round: Round,
        received: usize,
    }

    impl Protocol for Staggered {
        type Msg = ();

        fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
            NextWake::At(self.my_round)
        }

        fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<()>) {
            outbox.extend(ctx.ports().map(|p| Envelope::new(p, ())));
        }

        fn deliver(&mut self, _ctx: &NodeCtx, _round: Round, inbox: &[Envelope<()>]) -> NextWake {
            self.received += inbox.len();
            NextWake::Halt
        }
    }

    #[test]
    fn staggered_nodes_have_awake_one_and_lose_all_messages() {
        let g = generators::ring(6, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| Staggered {
                my_round: u64::from(ctx.node.raw()) * 100 + 1,
                received: 0,
            })
            .unwrap();
        assert_eq!(out.stats.awake_max(), 1);
        assert_eq!(out.stats.rounds, 501);
        assert_eq!(out.stats.messages_delivered, 0);
        assert_eq!(out.stats.messages_lost, 12);
        assert!(out.states.iter().all(|s| s.received == 0));
    }

    #[test]
    fn simultaneous_nodes_exchange_in_same_round() {
        let g = generators::ring(6, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Staggered {
                my_round: 7,
                received: 0,
            })
            .unwrap();
        assert_eq!(out.stats.rounds, 7);
        assert_eq!(out.stats.messages_lost, 0);
        assert!(out.states.iter().all(|s| s.received == 2));
    }

    #[test]
    fn flood_reaches_everyone() {
        let g = generators::ring(8, 1).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| Flood::new(ctx.node.raw() == 0))
            .unwrap();
        assert!(out.states.iter().all(Flood::informed));
        assert_eq!(out.stats.rounds, 5); // diameter 4, plus the final send round
    }

    #[test]
    fn bit_limit_is_enforced() {
        #[derive(Debug)]
        struct Big;
        impl Protocol for Big {
            type Msg = u64;
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, ctx: &NodeCtx, _: Round, outbox: &mut Outbox<u64>) {
                outbox.extend(ctx.ports().map(|p| Envelope::new(p, u64::MAX)));
            }
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
                NextWake::Halt
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let err = Simulator::new(&g, SimConfig::default().with_bit_limit(32))
            .run(|_| Big)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::MessageTooLarge {
                bits: 64,
                limit: 32,
                ..
            }
        ));
    }

    #[test]
    fn invalid_port_is_reported() {
        #[derive(Debug)]
        struct BadPort;
        impl Protocol for BadPort {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, _: &NodeCtx, _: Round, outbox: &mut Outbox<()>) {
                outbox.push(Port::new(99), ());
            }
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<()>]) -> NextWake {
                NextWake::Halt
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let err = Simulator::new(&g, SimConfig::default())
            .run(|_| BadPort)
            .unwrap_err();
        assert!(matches!(err, SimError::PortOutOfRange { .. }));
    }

    #[test]
    fn non_future_wake_is_reported() {
        #[derive(Debug)]
        struct BadWake;
        impl Protocol for BadWake {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(5)
            }
            fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<()>) {}
            fn deliver(&mut self, _: &NodeCtx, round: Round, _: &[Envelope<()>]) -> NextWake {
                NextWake::At(round) // not in the future
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let err = Simulator::new(&g, SimConfig::default())
            .run(|_| BadWake)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::WakeNotInFuture { requested: 5, .. }
        ));
    }

    #[test]
    fn round_budget_is_enforced() {
        #[derive(Debug)]
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<()>) {}
            fn deliver(&mut self, _: &NodeCtx, round: Round, _: &[Envelope<()>]) -> NextWake {
                NextWake::At(round + 1)
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let err = Simulator::new(&g, SimConfig::default().with_max_rounds(100))
            .run(|_| Forever)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::MaxRoundsExceeded {
                limit: 100,
                running: 4
            }
        ));
    }

    #[test]
    fn immediate_halt_in_init_is_clean() {
        #[derive(Debug)]
        struct Never;
        impl Protocol for Never {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::Halt
            }
            fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<()>) {
                unreachable!()
            }
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<()>]) -> NextWake {
                unreachable!()
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Never)
            .unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert_eq!(out.stats.awake_max(), 0);
    }

    #[test]
    fn trace_records_awake_delivery_and_halt() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).build().unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace())
            .run(|_| Staggered {
                my_round: 1,
                received: 0,
            })
            .unwrap();
        let kinds: Vec<&'static str> = out
            .trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Awake { .. } => "awake",
                TraceEvent::Delivered { .. } => "delivered",
                TraceEvent::Lost { .. } => "lost",
                TraceEvent::Halted { .. } => "halted",
                TraceEvent::Dropped { .. } => "dropped",
                TraceEvent::Crashed { .. } => "crashed",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "awake",
                "awake",
                "delivered",
                "delivered",
                "halted",
                "halted"
            ]
        );
    }

    #[test]
    fn observer_sees_each_active_round() {
        let g = generators::ring(4, 0).unwrap();
        let mut seen = Vec::new();
        Simulator::new(&g, SimConfig::default())
            .run_with_observer(
                |ctx| Staggered {
                    my_round: u64::from(ctx.node.raw()) * 10 + 1,
                    received: 0,
                },
                |round, _states: &[Staggered]| seen.push(round),
            )
            .unwrap();
        assert_eq!(seen, vec![1, 11, 21, 31]);
    }

    #[test]
    fn stats_bits_accounting() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).build().unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Staggered {
                my_round: 3,
                received: 0,
            })
            .unwrap();
        // Both nodes send a 1-bit unit message across the single edge.
        assert_eq!(out.stats.bits_by_edge, vec![2]);
        assert_eq!(out.stats.bits_received_by_node, vec![1, 1]);
        assert_eq!(out.stats.messages_sent(), 2);
    }

    #[test]
    fn metrics_record_reports_and_timelines() {
        let g = generators::ring(6, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_metrics())
            .run(|ctx| Staggered {
                my_round: u64::from(ctx.node.raw()) * 100 + 1,
                received: 0,
            })
            .unwrap();
        let m = &out.metrics;
        // One active round per node; the 99-round gaps between wakes are
        // silent and produce no report.
        assert_eq!(m.active_rounds(), 6);
        assert_eq!(m.last_round(), out.stats.rounds);
        assert_eq!(m.messages_sent(), out.stats.messages_sent());
        assert_eq!(m.messages_lost(), out.stats.messages_lost);
        assert_eq!(m.awake_complexity(), out.stats.awake_max());
        for (v, timeline) in m.awake_rounds_by_node.iter().enumerate() {
            assert_eq!(timeline, &vec![v as Round * 100 + 1]);
        }
        // Each awake round: one node sends 1-bit unit messages on both
        // ports; both receivers sleep.
        for r in &m.per_round {
            assert_eq!((r.awake, r.messages_sent, r.messages_lost), (1, 2, 2));
            assert_eq!(r.messages_delivered, 0);
            assert_eq!(r.max_edge_bits, 1);
        }
    }

    #[test]
    fn metrics_off_leaves_outcome_empty() {
        let g = generators::ring(4, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Staggered {
                my_round: 1,
                received: 0,
            })
            .unwrap();
        assert!(out.metrics.is_empty());
    }

    #[test]
    fn metrics_on_empty_schedule_record_no_rounds() {
        #[derive(Debug)]
        struct Never;
        impl Protocol for Never {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::Halt
            }
            fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<()>) {}
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<()>]) -> NextWake {
                NextWake::Halt
            }
        }
        let g = generators::ring(4, 0).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_metrics())
            .run(|_| Never)
            .unwrap();
        assert_eq!(out.metrics.active_rounds(), 0);
        assert_eq!(out.metrics.last_round(), 0);
        assert_eq!(out.metrics.awake_complexity(), 0);
        assert_eq!(out.metrics.awake_rounds_by_node.len(), 4);
    }

    #[test]
    fn rng_seeds_differ_per_node_and_master_seed() {
        let g = generators::ring(4, 0).unwrap();
        let mut seeds_a = Vec::new();
        Simulator::new(&g, SimConfig::default().with_seed(1))
            .run(|ctx| {
                seeds_a.push(ctx.rng_seed);
                Staggered {
                    my_round: 1,
                    received: 0,
                }
            })
            .unwrap();
        let uniq: std::collections::BTreeSet<u64> = seeds_a.iter().copied().collect();
        assert_eq!(uniq.len(), 4);

        let mut seeds_b = Vec::new();
        Simulator::new(&g, SimConfig::default().with_seed(2))
            .run(|ctx| {
                seeds_b.push(ctx.rng_seed);
                Staggered {
                    my_round: 1,
                    received: 0,
                }
            })
            .unwrap();
        assert_ne!(seeds_a, seeds_b);
    }
}
