//! The executors behind [`Simulator`](crate::Simulator).
//!
//! Two implementations of the same round semantics live here:
//!
//! * `run_event_driven` (crate-private) — the production executor. A
//!   `WakeQueue` jumps
//!   directly from one populated round to the next, so a run costs
//!   `O(W log n + M)` for `W` node-awake events and `M` messages,
//!   independent of how many silent rounds the schedule spans. Message
//!   routing uses the back ports precomputed by
//!   [`graphlib::GraphBuilder::build`] — the hot loop never scans an
//!   adjacency list — and all per-round state (outbox, the flat inbox
//!   arena, its grouping scratch) lives in an [`ExecutorScratch`]
//!   that is reused across rounds *and across runs*, so the steady-state
//!   hot path performs no allocations.
//! * [`run_naive`] — a deliberately simple reference executor that walks
//!   every round from 1 upward. It exists as a differential-testing oracle
//!   for the event-driven hot loop (see `tests/differential.rs`); never
//!   use it for real workloads — its cost is proportional to the run's
//!   round count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphlib::{NodeId, Port, WeightedGraph};

use crate::metrics::MetricsRecorder;
use crate::{
    Envelope, FaultPlan, NextWake, NodeCtx, Outbox, Payload, Protocol, Round, RunOutcome, RunStats,
    SimConfig, SimError, Trace, TraceEvent,
};

/// The active fault plan of a config, if it can affect the run at all.
/// Inert plans (every intensity zero, no crashes) are filtered out here,
/// so both executors take the exact no-fault path for them — fault
/// support costs nothing unless a fault can actually fire.
fn active_faults(config: &SimConfig) -> Option<&FaultPlan> {
    config.faults.as_ref().filter(|plan| !plan.is_inert())
}

/// Builds the initial knowledge handed to `node` (KT0 plus run
/// parameters). Both executors must derive identical contexts — notably
/// the per-node RNG seed — for differential runs to agree.
fn node_ctx(graph: &WeightedGraph, config: &SimConfig, node: NodeId) -> NodeCtx {
    NodeCtx {
        node,
        external_id: graph.external_id(node),
        n: graph.node_count(),
        max_external_id: graph.max_external_id(),
        port_weights: graph.ports(node).iter().map(|e| e.weight).collect(),
        rng_seed: config
            .master_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(node.raw()).wrapping_mul(0xff51_afd7_ed55_8ccd)),
    }
}

/// Per-node construction + `init` call, shared by both executors.
/// Returns the contexts, protocol values, and each node's first wake
/// (`None` = halted in `init`).
#[allow(clippy::type_complexity)]
fn init_nodes<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    mut factory: F,
    trace: &mut Trace,
) -> Result<(Vec<NodeCtx>, Vec<P>, Vec<Option<Round>>), SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let n = graph.node_count();
    let mut ctxs = Vec::with_capacity(n);
    let mut protocols = Vec::with_capacity(n);
    let mut first_wake = Vec::with_capacity(n);
    for node in graph.nodes() {
        let ctx = node_ctx(graph, config, node);
        let mut protocol = factory(&ctx);
        match protocol.init(&ctx) {
            NextWake::At(r) => {
                if r == 0 {
                    return Err(SimError::WakeNotInFuture {
                        node,
                        round: 0,
                        requested: 0,
                    });
                }
                first_wake.push(Some(r));
            }
            NextWake::Halt => {
                if config.record_trace {
                    trace.push(TraceEvent::Halted { round: 0, node });
                }
                first_wake.push(None);
            }
        }
        ctxs.push(ctx);
        protocols.push(protocol);
    }
    Ok((ctxs, protocols, first_wake))
}

/// Validates one outgoing envelope, accounts its per-edge bits, and routes
/// it to `(receiver, receiver port, bits, edge index)` via the precomputed
/// back port — no adjacency scan, and `bit_size` is computed exactly once
/// per message (the result is threaded through delivery accounting, the
/// trace, and the metrics recorder's congestion scratch).
#[inline]
fn route_envelope<M: Payload>(
    graph: &WeightedGraph,
    config: &SimConfig,
    stats: &mut RunStats,
    node: NodeId,
    round: Round,
    port: Port,
    msg: &M,
) -> Result<(u32, u32, usize, usize), SimError> {
    if port.index() >= graph.degree(node) {
        return Err(SimError::PortOutOfRange { node, port, round });
    }
    let bits = msg.bit_size();
    if let Some(limit) = config.bit_limit {
        if bits > limit {
            return Err(SimError::MessageTooLarge {
                node,
                round,
                bits,
                limit,
            });
        }
    }
    let entry = graph.port_entry(node, port);
    stats.bits_by_edge[entry.edge.index()] += bits as u64;
    stats.max_message_bits = stats.max_message_bits.max(bits as u64);
    Ok((
        entry.neighbor.raw(),
        entry.back_port.raw(),
        bits,
        entry.edge.index(),
    ))
}

/// The scheduled-wake priority queue with lazy deletion.
///
/// `schedule` may supersede an earlier, not-yet-fired entry for the same
/// node; the stale heap entry is dropped when its round is popped. Rounds
/// whose entries are all stale still *occur* (they are the run's last
/// scheduled activity), which is why [`pop_round`](WakeQueue::pop_round)
/// reports them: `RunStats::rounds` must reflect the final popped round,
/// not the last round that happened to have a live waker.
#[derive(Debug)]
pub(crate) struct WakeQueue {
    heap: BinaryHeap<Reverse<(Round, u32)>>,
    /// `Some(r)` = node will wake in round `r`; `None` = halted.
    next_wake: Vec<Option<Round>>,
    /// `popped_stamp[v] == r` marks v already returned for round r
    /// (guards against duplicate heap entries; stamps start at 1).
    popped_stamp: Vec<Round>,
}

impl WakeQueue {
    pub(crate) fn new(n: usize) -> Self {
        WakeQueue {
            heap: BinaryHeap::with_capacity(n),
            next_wake: vec![None; n],
            popped_stamp: vec![0; n],
        }
    }

    /// Re-initializes a recycled queue for a fresh `n`-node run, keeping
    /// the allocations. Clearing `popped_stamp` is load-bearing: rounds
    /// restart from 1 every run, so a stale stamp from a previous run
    /// could silently swallow a wake (the reused-scratch differential
    /// proptests pin this).
    pub(crate) fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.next_wake.clear();
        self.next_wake.resize(n, None);
        self.popped_stamp.clear();
        self.popped_stamp.resize(n, 0);
    }

    /// Schedules (or re-schedules) `node` to wake in `round`.
    pub(crate) fn schedule(&mut self, node: u32, round: Round) {
        self.next_wake[node as usize] = Some(round);
        self.heap.push(Reverse((round, node)));
    }

    /// Marks `node` as halted; its pending entry (if any) goes stale.
    pub(crate) fn halt(&mut self, node: u32) {
        self.next_wake[node as usize] = None;
    }

    /// Withdraws `node` from the round it was just popped live for: the
    /// popped stamp is cleared, so [`WakeQueue::is_awake_in`] reports the
    /// node asleep again. The fault path uses this for spurious sleeps
    /// and crashes — the node must look asleep to the round's routing so
    /// messages to it are lost per the model.
    pub(crate) fn retract(&mut self, node: u32) {
        self.popped_stamp[node as usize] = 0;
    }

    /// The earliest scheduled round, if any entry (live or stale) remains.
    pub(crate) fn peek_round(&self) -> Option<Round> {
        self.heap.peek().map(|&Reverse((r, _))| r)
    }

    /// Whether `node` was returned live by the pop for `round` (i.e. the
    /// node is awake in the round currently being executed).
    #[inline]
    pub(crate) fn is_awake_in(&self, node: u32, round: Round) -> bool {
        self.popped_stamp[node as usize] == round
    }

    /// Pops every entry of the earliest round. Returns that round and
    /// fills `live` with the nodes genuinely waking now, **ascending**;
    /// stale entries are dropped (but still produce a returned round).
    pub(crate) fn pop_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        live.clear();
        let Reverse((round, _)) = *self.heap.peek()?;
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            if r != round {
                break;
            }
            self.heap.pop();
            if self.next_wake[v as usize] == Some(r) && self.popped_stamp[v as usize] != round {
                self.popped_stamp[v as usize] = round;
                live.push(v);
            }
        }
        // Most rounds of the paper's token-passing phases wake a single
        // node; skip the sort machinery entirely for those.
        if live.len() > 1 {
            live.sort_unstable();
        }
        Some(round)
    }
}

/// Reusable executor state: the wake queue, the per-round delivery
/// buffers (outbox, flat inbox arena, grouping scratch), and a pool of
/// recycled [`RunStats`].
///
/// [`Simulator::run_with_scratch`](crate::Simulator::run_with_scratch)
/// threads one value through many runs — a sweep's worker thread creates
/// one scratch and reuses it for its whole trial stream, so executor
/// allocations are O(workers) instead of O(runs). Every run fully
/// re-initializes the scratch before use; nothing observable leaks
/// between runs (the reused-scratch differential proptests pin this).
#[derive(Debug)]
pub struct ExecutorScratch<M> {
    queue: WakeQueue,
    awake_now: Vec<u32>,
    /// `slot_of[v]` = v's index in `awake_now`, valid only while
    /// `queue.is_awake_in(v, round)` holds for the current round.
    slot_of: Vec<u32>,
    /// Flat inbox arena: every delivered envelope of the round, grouped by
    /// receiver slot and sorted by receiver port within each group.
    arena: Vec<Envelope<M>>,
    /// `slots[i]` = receiver slot of `arena[i]` while the round's arena is
    /// still in send order (before grouping).
    slots: Vec<u32>,
    /// Scratch permutation for the in-place counting-sort grouping.
    perm: Vec<u32>,
    /// `(start, len)` of each awake node's slice of `arena`, by slot.
    inbox_ranges: Vec<(u32, u32)>,
    outbox: Outbox<M>,
    stats_pool: Vec<RunStats>,
}

impl<M> Default for ExecutorScratch<M> {
    fn default() -> Self {
        ExecutorScratch::new()
    }
}

impl<M> ExecutorScratch<M> {
    /// An empty scratch; buffers grow to their high-water marks during the
    /// first run and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        ExecutorScratch {
            queue: WakeQueue::new(0),
            awake_now: Vec::new(),
            slot_of: Vec::new(),
            arena: Vec::new(),
            slots: Vec::new(),
            perm: Vec::new(),
            inbox_ranges: Vec::new(),
            outbox: Outbox::new(),
            stats_pool: Vec::new(),
        }
    }

    /// Returns a no-longer-needed [`RunStats`] to the pool so the next run
    /// from this scratch reuses its vectors instead of allocating.
    pub fn recycle(&mut self, stats: RunStats) {
        self.stats_pool.push(stats);
    }

    /// Re-initializes every buffer for a fresh `n`-node run.
    fn reset(&mut self, n: usize) {
        self.queue.reset(n);
        self.awake_now.clear();
        self.slot_of.clear();
        self.slot_of.resize(n, 0);
        self.arena.clear();
        self.slots.clear();
        self.perm.clear();
        self.inbox_ranges.clear();
        self.outbox.clear();
    }

    /// A zeroed [`RunStats`] for an `n`-node, `m`-edge run — recycled
    /// storage if the pool has any, freshly allocated otherwise.
    fn take_stats(&mut self, n: usize, m: usize) -> RunStats {
        match self.stats_pool.pop() {
            Some(mut stats) => {
                stats.reset(n, m);
                stats
            }
            None => RunStats::new(n, m),
        }
    }
}

/// Buffers a `Delivered` trace event. Deliberately out-of-line: the
/// `Debug` formatting machinery must stay off the untraced hot path.
/// Delivery events buffer into `buf` (flushed after the round's send
/// half-step) so the recorded order — every `Awake` of the round, then
/// `Delivered`/`Lost` in send order — stays bit-identical to
/// [`run_naive`] even though stats are accounted inline.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn record_delivered<M: Payload>(
    buf: &mut Vec<TraceEvent>,
    round: Round,
    from: u32,
    to: u32,
    recv_port: u32,
    bits: usize,
    msg: &M,
) {
    buf.push(TraceEvent::Delivered {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
        port: Port::new(recv_port),
        bits,
        payload: format!("{msg:?}"),
    });
}

/// Buffers a `Lost` trace event (out-of-line, like [`record_delivered`]).
#[cold]
#[inline(never)]
fn record_lost(buf: &mut Vec<TraceEvent>, round: Round, from: u32, to: u32) {
    buf.push(TraceEvent::Lost {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
    });
}

/// Buffers a `Dropped` trace event (out-of-line, like [`record_lost`]).
#[cold]
#[inline(never)]
fn record_dropped(buf: &mut Vec<TraceEvent>, round: Round, from: u32, to: u32) {
    buf.push(TraceEvent::Dropped {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
    });
}

/// The production event-driven executor. See the module docs.
pub(crate) fn run_event_driven<P, F, O>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
    mut observer: O,
    scratch: &mut ExecutorScratch<P::Msg>,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
    O: FnMut(Round, &[P]),
{
    let n = graph.node_count();
    scratch.reset(n);
    let mut stats = scratch.take_stats(n, graph.edge_count());
    let mut trace = Trace::default();
    let faults = active_faults(config);
    // `None` when metrics are off: the hot path pays one untaken branch
    // per event and execution is bit-identical (pinned fingerprints).
    let mut metrics = if config.record_metrics {
        Some(MetricsRecorder::new(n, graph.edge_count()))
    } else {
        None
    };

    let (ctxs, mut protocols, first_wake) = init_nodes(graph, config, factory, &mut trace)?;
    let ExecutorScratch {
        queue,
        awake_now,
        slot_of,
        arena,
        slots,
        perm,
        inbox_ranges,
        outbox,
        ..
    } = scratch;
    let mut running = 0usize;
    for (v, wake) in first_wake.into_iter().enumerate() {
        if let Some(r) = wake {
            let r = match faults {
                Some(plan) => plan.jittered(v as u32, r),
                None => r,
            };
            queue.schedule(v as u32, r);
            running += 1;
        }
    }
    // Round-local trace staging; stays empty (and allocation-free) unless
    // the run records a trace.
    let mut trace_buf: Vec<TraceEvent> = Vec::new();

    while let Some(round) = queue.peek_round() {
        if round > config.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: config.max_rounds,
                running,
            });
        }
        queue.pop_round(awake_now);
        // The run extends to every scheduled round we processed, even one
        // whose wakes were all superseded (regression: stale final round).
        stats.rounds = round;
        if let Some(plan) = faults {
            // Crash and spurious-sleep adjudication, before any send: a
            // filtered node must look asleep to the whole round, so its
            // stamp is retracted and messages to it are lost per the
            // model. `retain` preserves the ascending order contract.
            awake_now.retain(|&v| {
                if plan.crashes_at(v, round) {
                    queue.retract(v);
                    queue.halt(v);
                    running -= 1;
                    stats.crashed_nodes += 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Crashed {
                            round,
                            node: NodeId::new(v),
                        });
                    }
                    return false;
                }
                if plan.suppresses(round, v) {
                    queue.retract(v);
                    queue.schedule(v, round + 1);
                    return false;
                }
                true
            });
        }
        if awake_now.is_empty() {
            continue;
        }
        if let Some(rec) = metrics.as_mut() {
            rec.start_round(round, awake_now);
        }
        for (slot, &v) in awake_now.iter().enumerate() {
            slot_of[v as usize] = slot as u32;
        }

        // --- Send half-step ---
        // Each message is fully adjudicated at routing time: the awake set
        // is fixed before any send, so delivered-vs-lost is already known
        // here. Stats are order-independent sums and accrue inline; lost
        // messages are accounted and dropped without ever materializing.
        // Delivered envelopes land in `arena` in send order, with the
        // receiver slot recorded alongside in `slots`. Trace events buffer
        // so their order matches [`run_naive`] (see [`record_delivered`]).
        arena.clear();
        slots.clear();
        for &v in awake_now.iter() {
            let node = NodeId::new(v);
            stats.awake_by_node[v as usize] += 1;
            if config.record_trace {
                trace.push(TraceEvent::Awake { round, node });
            }
            outbox.clear();
            protocols[v as usize].send(&ctxs[v as usize], round, outbox);
            for Envelope { port, msg } in outbox.drain() {
                let (to, recv_port, bits, edge) =
                    route_envelope(graph, config, &mut stats, node, round, port, &msg)?;
                if let Some(rec) = metrics.as_mut() {
                    rec.on_send(edge, bits);
                }
                if let Some(plan) = faults {
                    // A dropped message is destroyed in flight after the
                    // sender paid for it (bits accrued above), regardless
                    // of the receiver's state — it is an injected fault,
                    // not a model loss.
                    if plan.drops(round, v, port.raw()) {
                        stats.injected_drops += 1;
                        if let Some(rec) = metrics.as_mut() {
                            rec.on_dropped();
                        }
                        if config.record_trace {
                            record_dropped(&mut trace_buf, round, v, to);
                        }
                        continue;
                    }
                }
                if queue.is_awake_in(to, round) {
                    stats.messages_delivered += 1;
                    stats.bits_received_by_node[to as usize] += bits as u64;
                    if let Some(rec) = metrics.as_mut() {
                        rec.on_delivered();
                    }
                    if config.record_trace {
                        record_delivered(&mut trace_buf, round, v, to, recv_port, bits, &msg);
                    }
                    slots.push(slot_of[to as usize]);
                    // An injected duplication delivers a second identical
                    // copy; it counts as a delivery of its own so the
                    // conservation audit reconciles.
                    let dup = match faults {
                        Some(plan) => plan.duplicates(round, v, port.raw()),
                        None => false,
                    };
                    if dup {
                        stats.messages_delivered += 1;
                        stats.dup_deliveries += 1;
                        stats.bits_received_by_node[to as usize] += bits as u64;
                        if let Some(rec) = metrics.as_mut() {
                            rec.on_dup_delivered();
                        }
                        if config.record_trace {
                            record_delivered(&mut trace_buf, round, v, to, recv_port, bits, &msg);
                        }
                        slots.push(slot_of[to as usize]);
                        arena.push(Envelope::new(Port::new(recv_port), msg.clone()));
                    }
                    arena.push(Envelope::new(Port::new(recv_port), msg));
                } else {
                    stats.messages_lost += 1;
                    if let Some(rec) = metrics.as_mut() {
                        rec.on_lost();
                    }
                    if config.record_trace {
                        record_lost(&mut trace_buf, round, v, to);
                    }
                }
            }
        }
        if config.record_trace {
            for event in trace_buf.drain(..) {
                trace.push(event);
            }
        }

        // --- Deliver half-step ---
        // Group the arena by receiver slot with an O(M) counting sort
        // (count, prefix-sum, in-place cycle permutation) rather than a
        // comparison sort of the whole round. The permutation targets are
        // assigned in send order, so within one slot the grouped arena
        // preserves send order; the stable per-range sort by port then
        // reproduces exactly the old executor's per-inbox
        // `sort_by_key(|e| e.port)` — deliver order is bit-identical.
        inbox_ranges.clear();
        inbox_ranges.resize(awake_now.len(), (0u32, 0u32));
        for &s in slots.iter() {
            inbox_ranges[s as usize].1 += 1;
        }
        let mut acc = 0u32;
        for range in inbox_ranges.iter_mut() {
            range.0 = acc;
            acc += range.1;
        }
        if arena.len() > 1 {
            // `range.0` doubles as the placement cursor; it ends at the
            // range's end and is rewound by `len` afterwards.
            perm.clear();
            for &s in slots.iter() {
                let range = &mut inbox_ranges[s as usize];
                perm.push(range.0);
                range.0 += 1;
            }
            for range in inbox_ranges.iter_mut() {
                range.0 -= range.1;
            }
            for i in 0..perm.len() {
                while perm[i] != i as u32 {
                    let j = perm[i] as usize;
                    arena.swap(i, j);
                    perm.swap(i, j);
                }
            }
            for &(start, len) in inbox_ranges.iter() {
                if len > 1 {
                    arena[start as usize..(start + len) as usize].sort_by_key(|e| e.port);
                }
            }
        }

        for (slot, &v) in awake_now.iter().enumerate() {
            let node = NodeId::new(v);
            let (start, len) = inbox_ranges[slot];
            let inbox = &arena[start as usize..(start + len) as usize];
            match protocols[v as usize].deliver(&ctxs[v as usize], round, inbox) {
                NextWake::At(r) => {
                    if r <= round {
                        return Err(SimError::WakeNotInFuture {
                            node,
                            round,
                            requested: r,
                        });
                    }
                    let r = match faults {
                        Some(plan) => plan.jittered(v, r),
                        None => r,
                    };
                    queue.schedule(v, r);
                }
                NextWake::Halt => {
                    queue.halt(v);
                    running -= 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Halted { round, node });
                    }
                }
            }
        }

        if let Some(rec) = metrics.as_mut() {
            rec.finish_round();
        }
        observer(round, &protocols);
    }

    if running > 0 {
        return Err(SimError::Stalled {
            running,
            round: stats.rounds,
        });
    }
    Ok(RunOutcome {
        states: protocols,
        stats,
        trace,
        metrics: metrics
            .map(MetricsRecorder::into_metrics)
            .unwrap_or_default(),
    })
}

/// Reference executor: walks **every** round from 1 until all nodes halt.
///
/// Semantically identical to the event-driven executor — identical final
/// states, [`RunStats`], and trace — but costs time proportional to the
/// run's round count and allocates freely (fresh outboxes and inboxes
/// every round: its simplicity is the point). It exists as the
/// differential-testing oracle that locks in the hot loop's behavior; it
/// is not part of the supported simulation API surface.
///
/// # Errors
///
/// Propagates the same [`SimError`] conditions as
/// [`Simulator::run`](crate::Simulator::run).
pub fn run_naive<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let n = graph.node_count();
    let mut stats = RunStats::new(n, graph.edge_count());
    let mut trace = Trace::default();
    let faults = active_faults(config);
    let mut metrics = if config.record_metrics {
        Some(MetricsRecorder::new(n, graph.edge_count()))
    } else {
        None
    };

    let (ctxs, mut protocols, mut next_wake) = init_nodes(graph, config, factory, &mut trace)?;
    if let Some(plan) = faults {
        for (v, wake) in next_wake.iter_mut().enumerate() {
            if let Some(r) = wake.as_mut() {
                *r = plan.jittered(v as u32, *r);
            }
        }
    }

    let mut round: Round = 1;
    loop {
        let running = next_wake.iter().filter(|w| w.is_some()).count();
        if running == 0 {
            break;
        }
        if round > config.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: config.max_rounds,
                running,
            });
        }

        // Crash and spurious-sleep adjudication happens while collecting
        // the awake set, exactly as the event-driven executor filters its
        // popped live set — a scheduled round still counts toward
        // `stats.rounds` even if faults empty it.
        let mut scheduled_now = false;
        let mut awake_now: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            if next_wake[v as usize] != Some(round) {
                continue;
            }
            scheduled_now = true;
            if let Some(plan) = faults {
                if plan.crashes_at(v, round) {
                    next_wake[v as usize] = None;
                    stats.crashed_nodes += 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Crashed {
                            round,
                            node: NodeId::new(v),
                        });
                    }
                    continue;
                }
                if plan.suppresses(round, v) {
                    next_wake[v as usize] = Some(round + 1);
                    continue;
                }
            }
            awake_now.push(v);
        }
        if !scheduled_now {
            round += 1;
            continue;
        }
        stats.rounds = round;
        if awake_now.is_empty() {
            round += 1;
            continue;
        }
        if let Some(rec) = metrics.as_mut() {
            rec.start_round(round, &awake_now);
        }

        let mut pending: Vec<(u32, u32, u32, u32, usize, P::Msg)> = Vec::new();
        for &v in &awake_now {
            let node = NodeId::new(v);
            stats.awake_by_node[v as usize] += 1;
            if config.record_trace {
                trace.push(TraceEvent::Awake { round, node });
            }
            let mut outbox = Outbox::new();
            protocols[v as usize].send(&ctxs[v as usize], round, &mut outbox);
            for Envelope { port, msg } in outbox.into_envelopes() {
                let (to, recv_port, bits, edge) =
                    route_envelope(graph, config, &mut stats, node, round, port, &msg)?;
                if let Some(rec) = metrics.as_mut() {
                    rec.on_send(edge, bits);
                }
                pending.push((to, recv_port, v, port.raw(), bits, msg));
            }
        }

        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];
        for (to, port, from, from_port, bits, msg) in pending {
            if let Some(plan) = faults {
                if plan.drops(round, from, from_port) {
                    stats.injected_drops += 1;
                    if let Some(rec) = metrics.as_mut() {
                        rec.on_dropped();
                    }
                    if config.record_trace {
                        trace.push(TraceEvent::Dropped {
                            round,
                            from: NodeId::new(from),
                            to: NodeId::new(to),
                        });
                    }
                    continue;
                }
            }
            if next_wake[to as usize] == Some(round) {
                let dup = match faults {
                    Some(plan) => plan.duplicates(round, from, from_port),
                    None => false,
                };
                let copies = 1 + u64::from(dup);
                stats.messages_delivered += copies;
                stats.dup_deliveries += u64::from(dup);
                stats.bits_received_by_node[to as usize] += copies * bits as u64;
                if let Some(rec) = metrics.as_mut() {
                    rec.on_delivered();
                    if dup {
                        rec.on_dup_delivered();
                    }
                }
                for _ in 0..copies {
                    if config.record_trace {
                        trace.push(TraceEvent::Delivered {
                            round,
                            from: NodeId::new(from),
                            to: NodeId::new(to),
                            port: Port::new(port),
                            bits,
                            payload: format!("{msg:?}"),
                        });
                    }
                    inboxes[to as usize].push(Envelope::new(Port::new(port), msg.clone()));
                }
            } else {
                stats.messages_lost += 1;
                if let Some(rec) = metrics.as_mut() {
                    rec.on_lost();
                }
                if config.record_trace {
                    trace.push(TraceEvent::Lost {
                        round,
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                    });
                }
            }
        }

        for &v in &awake_now {
            let node = NodeId::new(v);
            let mut inbox = std::mem::take(&mut inboxes[v as usize]);
            inbox.sort_by_key(|e| e.port);
            match protocols[v as usize].deliver(&ctxs[v as usize], round, &inbox) {
                NextWake::At(r) => {
                    if r <= round {
                        return Err(SimError::WakeNotInFuture {
                            node,
                            round,
                            requested: r,
                        });
                    }
                    let r = match faults {
                        Some(plan) => plan.jittered(v, r),
                        None => r,
                    };
                    next_wake[v as usize] = Some(r);
                }
                NextWake::Halt => {
                    next_wake[v as usize] = None;
                    if config.record_trace {
                        trace.push(TraceEvent::Halted { round, node });
                    }
                }
            }
        }

        if let Some(rec) = metrics.as_mut() {
            rec.finish_round();
        }
        round += 1;
    }

    Ok(RunOutcome {
        states: protocols,
        stats,
        trace,
        metrics: metrics
            .map(MetricsRecorder::into_metrics)
            .unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_queue_orders_and_dedups() {
        let mut q = WakeQueue::new(3);
        q.schedule(2, 5);
        q.schedule(0, 3);
        q.schedule(1, 3);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(3));
        assert_eq!(live, vec![0, 1]);
        assert_eq!(q.pop_round(&mut live), Some(5));
        assert_eq!(live, vec![2]);
        assert_eq!(q.pop_round(&mut live), None);
    }

    #[test]
    fn wake_queue_halt_makes_entry_stale() {
        let mut q = WakeQueue::new(2);
        q.schedule(0, 4);
        q.schedule(1, 4);
        q.halt(1);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(4));
        assert_eq!(live, vec![0]);
    }

    /// Regression for the `RunStats::rounds` fix: a run whose final
    /// scheduled wake was superseded still pops that round — and the
    /// caller must record it — even though no node is live in it.
    #[test]
    fn wake_queue_reports_trailing_stale_round() {
        let mut q = WakeQueue::new(1);
        q.schedule(0, 9);
        q.schedule(0, 2); // supersedes: the round-9 entry is now stale
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(2));
        assert_eq!(live, vec![0]);
        q.halt(0);
        // The stale trailing entry still surfaces its round, with no live
        // wakers; `run_event_driven` records it as the run's last round.
        assert_eq!(q.pop_round(&mut live), Some(9));
        assert!(live.is_empty());
        assert_eq!(q.pop_round(&mut live), None);
    }

    /// The ascending-order contract of `pop_round`: the live set comes
    /// back sorted regardless of scheduling order, through both the
    /// multi-element path (which sorts) and the ≤1-element early-out.
    #[test]
    fn wake_queue_pop_round_yields_ascending_live_set() {
        let mut q = WakeQueue::new(6);
        // Scheduled in descending node order, with a superseded entry and
        // a duplicate-round reschedule mixed in.
        for v in (0..6u32).rev() {
            q.schedule(v, 3);
        }
        q.schedule(4, 8); // supersedes node 4's round-3 entry
        q.schedule(2, 3); // duplicate heap entry for the same (round, node)
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(3));
        assert_eq!(live, vec![0, 1, 2, 3, 5]);
        let mut sorted = live.clone();
        sorted.sort_unstable();
        assert_eq!(live, sorted);
        // Single-element round: the early-out path must also deliver.
        assert_eq!(q.pop_round(&mut live), Some(8));
        assert_eq!(live, vec![4]);
    }

    /// Resetting a queue must clear the popped stamps: rounds restart at 1
    /// every run, and a stale stamp would swallow a genuine wake.
    #[test]
    fn wake_queue_reset_clears_stamps_and_state() {
        let mut q = WakeQueue::new(2);
        q.schedule(0, 7);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(7));
        assert_eq!(live, vec![0]);
        q.reset(2);
        assert_eq!(q.peek_round(), None);
        q.schedule(0, 7); // same round number as the previous run
        assert_eq!(q.pop_round(&mut live), Some(7));
        assert_eq!(live, vec![0], "stale stamp swallowed the wake");
    }
}
