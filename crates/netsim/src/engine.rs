//! The executors behind [`Simulator`](crate::Simulator).
//!
//! Two implementations of the same round semantics live here:
//!
//! * `run_event_driven` (crate-private) — the production executor. A
//!   `WakeQueue` jumps
//!   directly from one populated round to the next, so a run costs
//!   `O(W log n + M)` for `W` node-awake events and `M` messages,
//!   independent of how many silent rounds the schedule spans. Message
//!   routing uses the back ports precomputed by
//!   [`graphlib::GraphBuilder::build`] — the hot loop never scans an
//!   adjacency list — and the per-round send/inbox buffers are reused
//!   across rounds.
//! * [`run_naive`] — a deliberately simple reference executor that walks
//!   every round from 1 upward. It exists as a differential-testing oracle
//!   for the event-driven hot loop (see `tests/differential.rs`); never
//!   use it for real workloads — its cost is proportional to the run's
//!   round count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphlib::{NodeId, Port, WeightedGraph};

use crate::{
    Envelope, NextWake, NodeCtx, Payload, Protocol, Round, RunOutcome, RunStats, SimConfig,
    SimError, Trace, TraceEvent,
};

/// Builds the initial knowledge handed to `node` (KT0 plus run
/// parameters). Both executors must derive identical contexts — notably
/// the per-node RNG seed — for differential runs to agree.
fn node_ctx(graph: &WeightedGraph, config: &SimConfig, node: NodeId) -> NodeCtx {
    NodeCtx {
        node,
        external_id: graph.external_id(node),
        n: graph.node_count(),
        max_external_id: graph.max_external_id(),
        port_weights: graph.ports(node).iter().map(|e| e.weight).collect(),
        rng_seed: config
            .master_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(node.raw()).wrapping_mul(0xff51_afd7_ed55_8ccd)),
    }
}

/// Per-node construction + `init` call, shared by both executors.
/// Returns the contexts, protocol values, and each node's first wake
/// (`None` = halted in `init`).
#[allow(clippy::type_complexity)]
fn init_nodes<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    mut factory: F,
    trace: &mut Trace,
) -> Result<(Vec<NodeCtx>, Vec<P>, Vec<Option<Round>>), SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let n = graph.node_count();
    let mut ctxs = Vec::with_capacity(n);
    let mut protocols = Vec::with_capacity(n);
    let mut first_wake = Vec::with_capacity(n);
    for node in graph.nodes() {
        let ctx = node_ctx(graph, config, node);
        let mut protocol = factory(&ctx);
        match protocol.init(&ctx) {
            NextWake::At(r) => {
                if r == 0 {
                    return Err(SimError::WakeNotInFuture {
                        node,
                        round: 0,
                        requested: 0,
                    });
                }
                first_wake.push(Some(r));
            }
            NextWake::Halt => {
                if config.record_trace {
                    trace.push(TraceEvent::Halted { round: 0, node });
                }
                first_wake.push(None);
            }
        }
        ctxs.push(ctx);
        protocols.push(protocol);
    }
    Ok((ctxs, protocols, first_wake))
}

/// Validates one outgoing envelope, accounts its bits, and routes it to
/// `(receiver, receiver port)` via the precomputed back port — no
/// adjacency scan.
#[inline]
fn route_envelope<M: Payload>(
    graph: &WeightedGraph,
    config: &SimConfig,
    stats: &mut RunStats,
    node: NodeId,
    round: Round,
    port: Port,
    msg: &M,
) -> Result<(u32, u32), SimError> {
    if port.index() >= graph.degree(node) {
        return Err(SimError::PortOutOfRange { node, port, round });
    }
    let bits = msg.bit_size();
    if let Some(limit) = config.bit_limit {
        if bits > limit {
            return Err(SimError::MessageTooLarge {
                node,
                round,
                bits,
                limit,
            });
        }
    }
    let entry = graph.port_entry(node, port);
    stats.bits_by_edge[entry.edge.index()] += bits as u64;
    Ok((entry.neighbor.raw(), entry.back_port.raw()))
}

/// The scheduled-wake priority queue with lazy deletion.
///
/// `schedule` may supersede an earlier, not-yet-fired entry for the same
/// node; the stale heap entry is dropped when its round is popped. Rounds
/// whose entries are all stale still *occur* (they are the run's last
/// scheduled activity), which is why [`pop_round`](WakeQueue::pop_round)
/// reports them: `RunStats::rounds` must reflect the final popped round,
/// not the last round that happened to have a live waker.
#[derive(Debug)]
pub(crate) struct WakeQueue {
    heap: BinaryHeap<Reverse<(Round, u32)>>,
    /// `Some(r)` = node will wake in round `r`; `None` = halted.
    next_wake: Vec<Option<Round>>,
    /// `popped_stamp[v] == r` marks v already returned for round r
    /// (guards against duplicate heap entries; stamps start at 1).
    popped_stamp: Vec<Round>,
}

impl WakeQueue {
    pub(crate) fn new(n: usize) -> Self {
        WakeQueue {
            heap: BinaryHeap::with_capacity(n),
            next_wake: vec![None; n],
            popped_stamp: vec![0; n],
        }
    }

    /// Schedules (or re-schedules) `node` to wake in `round`.
    pub(crate) fn schedule(&mut self, node: u32, round: Round) {
        self.next_wake[node as usize] = Some(round);
        self.heap.push(Reverse((round, node)));
    }

    /// Marks `node` as halted; its pending entry (if any) goes stale.
    pub(crate) fn halt(&mut self, node: u32) {
        self.next_wake[node as usize] = None;
    }

    /// The earliest scheduled round, if any entry (live or stale) remains.
    pub(crate) fn peek_round(&self) -> Option<Round> {
        self.heap.peek().map(|&Reverse((r, _))| r)
    }

    /// Pops every entry of the earliest round. Returns that round and
    /// fills `live` with the nodes genuinely waking now, ascending; stale
    /// entries are dropped (but still produce a returned round).
    pub(crate) fn pop_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        live.clear();
        let Reverse((round, _)) = *self.heap.peek()?;
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            if r != round {
                break;
            }
            self.heap.pop();
            if self.next_wake[v as usize] == Some(r) && self.popped_stamp[v as usize] != round {
                self.popped_stamp[v as usize] = round;
                live.push(v);
            }
        }
        live.sort_unstable();
        Some(round)
    }
}

/// The production event-driven executor. See the module docs.
pub(crate) fn run_event_driven<P, F, O>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
    mut observer: O,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
    O: FnMut(Round, &[P]),
{
    let n = graph.node_count();
    let mut stats = RunStats::new(n, graph.edge_count());
    let mut trace = Trace::default();

    let (ctxs, mut protocols, first_wake) = init_nodes(graph, config, factory, &mut trace)?;
    let mut queue = WakeQueue::new(n);
    let mut running = 0usize;
    for (v, wake) in first_wake.into_iter().enumerate() {
        if let Some(r) = wake {
            queue.schedule(v as u32, r);
            running += 1;
        }
    }

    // Round-scoped buffers, reused across rounds: the set of awake nodes,
    // the pending deliveries (receiver, recv_port, sender, msg), and the
    // per-node inboxes.
    let mut awake_now: Vec<u32> = Vec::new();
    let mut pending: Vec<(u32, u32, u32, P::Msg)> = Vec::new();
    let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];

    while let Some(round) = queue.peek_round() {
        if round > config.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: config.max_rounds,
                running,
            });
        }
        queue.pop_round(&mut awake_now);
        // The run extends to every scheduled round we processed, even one
        // whose wakes were all superseded (regression: stale final round).
        stats.rounds = round;
        if awake_now.is_empty() {
            continue;
        }

        // --- Send half-step ---
        pending.clear();
        for &v in &awake_now {
            let node = NodeId::new(v);
            stats.awake_by_node[v as usize] += 1;
            if config.record_trace {
                trace.push(TraceEvent::Awake { round, node });
            }
            let outbox = protocols[v as usize].send(&ctxs[v as usize], round);
            for Envelope { port, msg } in outbox {
                let (to, recv_port) =
                    route_envelope(graph, config, &mut stats, node, round, port, &msg)?;
                pending.push((to, recv_port, v, msg));
            }
        }

        // --- Deliver half-step ---
        for (to, port, from, msg) in pending.drain(..) {
            // A node is a valid receiver iff it woke this round.
            if queue.popped_stamp[to as usize] == round {
                stats.messages_delivered += 1;
                stats.bits_received_by_node[to as usize] += msg.bit_size() as u64;
                if config.record_trace {
                    trace.push(TraceEvent::Delivered {
                        round,
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                        port: Port::new(port),
                        bits: msg.bit_size(),
                        payload: format!("{msg:?}"),
                    });
                }
                inboxes[to as usize].push(Envelope::new(Port::new(port), msg));
            } else {
                stats.messages_lost += 1;
                if config.record_trace {
                    trace.push(TraceEvent::Lost {
                        round,
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                    });
                }
            }
        }

        for &v in &awake_now {
            let node = NodeId::new(v);
            let inbox = &mut inboxes[v as usize];
            inbox.sort_by_key(|e| e.port);
            let next = protocols[v as usize].deliver(&ctxs[v as usize], round, inbox);
            inbox.clear();
            match next {
                NextWake::At(r) => {
                    if r <= round {
                        return Err(SimError::WakeNotInFuture {
                            node,
                            round,
                            requested: r,
                        });
                    }
                    queue.schedule(v, r);
                }
                NextWake::Halt => {
                    queue.halt(v);
                    running -= 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Halted { round, node });
                    }
                }
            }
        }

        observer(round, &protocols);
    }

    if running > 0 {
        return Err(SimError::Stalled {
            running,
            round: stats.rounds,
        });
    }
    Ok(RunOutcome {
        states: protocols,
        stats,
        trace,
    })
}

/// Reference executor: walks **every** round from 1 until all nodes halt.
///
/// Semantically identical to the event-driven executor — identical final
/// states, [`RunStats`], and trace — but costs time proportional to the
/// run's round count. It exists as the differential-testing oracle that
/// locks in the hot loop's behavior; it is not part of the supported
/// simulation API surface.
///
/// # Errors
///
/// Propagates the same [`SimError`] conditions as
/// [`Simulator::run`](crate::Simulator::run).
pub fn run_naive<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let n = graph.node_count();
    let mut stats = RunStats::new(n, graph.edge_count());
    let mut trace = Trace::default();

    let (ctxs, mut protocols, mut next_wake) = init_nodes(graph, config, factory, &mut trace)?;

    let mut round: Round = 1;
    loop {
        let running = next_wake.iter().filter(|w| w.is_some()).count();
        if running == 0 {
            break;
        }
        if round > config.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: config.max_rounds,
                running,
            });
        }

        let awake_now: Vec<u32> = (0..n as u32)
            .filter(|&v| next_wake[v as usize] == Some(round))
            .collect();
        if awake_now.is_empty() {
            round += 1;
            continue;
        }
        stats.rounds = round;

        let mut pending: Vec<(u32, u32, u32, P::Msg)> = Vec::new();
        for &v in &awake_now {
            let node = NodeId::new(v);
            stats.awake_by_node[v as usize] += 1;
            if config.record_trace {
                trace.push(TraceEvent::Awake { round, node });
            }
            for Envelope { port, msg } in protocols[v as usize].send(&ctxs[v as usize], round) {
                let (to, recv_port) =
                    route_envelope(graph, config, &mut stats, node, round, port, &msg)?;
                pending.push((to, recv_port, v, msg));
            }
        }

        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];
        for (to, port, from, msg) in pending {
            if next_wake[to as usize] == Some(round) {
                stats.messages_delivered += 1;
                stats.bits_received_by_node[to as usize] += msg.bit_size() as u64;
                if config.record_trace {
                    trace.push(TraceEvent::Delivered {
                        round,
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                        port: Port::new(port),
                        bits: msg.bit_size(),
                        payload: format!("{msg:?}"),
                    });
                }
                inboxes[to as usize].push(Envelope::new(Port::new(port), msg));
            } else {
                stats.messages_lost += 1;
                if config.record_trace {
                    trace.push(TraceEvent::Lost {
                        round,
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                    });
                }
            }
        }

        for &v in &awake_now {
            let node = NodeId::new(v);
            let mut inbox = std::mem::take(&mut inboxes[v as usize]);
            inbox.sort_by_key(|e| e.port);
            match protocols[v as usize].deliver(&ctxs[v as usize], round, &inbox) {
                NextWake::At(r) => {
                    if r <= round {
                        return Err(SimError::WakeNotInFuture {
                            node,
                            round,
                            requested: r,
                        });
                    }
                    next_wake[v as usize] = Some(r);
                }
                NextWake::Halt => {
                    next_wake[v as usize] = None;
                    if config.record_trace {
                        trace.push(TraceEvent::Halted { round, node });
                    }
                }
            }
        }

        round += 1;
    }

    Ok(RunOutcome {
        states: protocols,
        stats,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_queue_orders_and_dedups() {
        let mut q = WakeQueue::new(3);
        q.schedule(2, 5);
        q.schedule(0, 3);
        q.schedule(1, 3);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(3));
        assert_eq!(live, vec![0, 1]);
        assert_eq!(q.pop_round(&mut live), Some(5));
        assert_eq!(live, vec![2]);
        assert_eq!(q.pop_round(&mut live), None);
    }

    #[test]
    fn wake_queue_halt_makes_entry_stale() {
        let mut q = WakeQueue::new(2);
        q.schedule(0, 4);
        q.schedule(1, 4);
        q.halt(1);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(4));
        assert_eq!(live, vec![0]);
    }

    /// Regression for the `RunStats::rounds` fix: a run whose final
    /// scheduled wake was superseded still pops that round — and the
    /// caller must record it — even though no node is live in it.
    #[test]
    fn wake_queue_reports_trailing_stale_round() {
        let mut q = WakeQueue::new(1);
        q.schedule(0, 9);
        q.schedule(0, 2); // supersedes: the round-9 entry is now stale
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(2));
        assert_eq!(live, vec![0]);
        q.halt(0);
        // The stale trailing entry still surfaces its round, with no live
        // wakers; `run_event_driven` records it as the run's last round.
        assert_eq!(q.pop_round(&mut live), Some(9));
        assert!(live.is_empty());
        assert_eq!(q.pop_round(&mut live), None);
    }
}
