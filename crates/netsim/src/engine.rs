//! The execution stack behind [`Simulator`](crate::Simulator): one
//! generic kernel, three time drivers.
//!
//! Exactly one loop — the crate-private `run_kernel` — owns the
//! per-active-round body: collect the awake set, run the send half-step
//! into the outbox, route/fault/deliver, record stats/trace/metrics, and
//! invoke the observer. *Which round comes next* is delegated to a
//! `TimeDriver`, selected by [`SimConfig::executor`]:
//!
//! * [`Executor::Calendar`] (the default) — keeps the scheduled wakes in
//!   a `WakeQueue` (a binary-heap calendar of `(next-wake, node)`
//!   events) and jumps time directly between populated rounds, so a run
//!   costs `O(W log n + M)` for `W` node-awake events and `M` messages,
//!   independent of how many silent rounds the schedule spans. This is
//!   the property the sleeping model exists to exploit: nodes are awake
//!   only `O(log n)` of the `O(n log n)` rounds, and the calendar never
//!   visits the empty ones.
//! * [`Executor::Sync`] — round-synchronous: the clock walks through
//!   every round one at a time, paying a per-round tick even when every
//!   node sleeps. Outcomes are bit-identical to the calendar driver; it
//!   exists to measure what sparse schedules cost a traditional
//!   round-driven simulator (`BENCH_engine.json` pins the gap).
//! * [`Executor::Naive`] — the differential-testing oracle: a per-round
//!   `O(n)` scan of every node's next wake, as close to a transliteration
//!   of the round semantics as possible. Never use it for real
//!   workloads; its entire value is being too simple to be wrong in the
//!   same way as the calendar.
//!
//! All three drivers produce bit-identical outcomes — final states,
//! [`RunStats`], [`Trace`], and metrics — for every protocol, fault
//! plan, and metrics setting; `tests/differential.rs` pins this with
//! cross-driver proptests.
//!
//! Message routing uses the back ports precomputed by
//! [`graphlib::GraphBuilder::build`] — the hot loop never scans an
//! adjacency list — and all per-round state (outbox, the flat inbox
//! arena, its grouping scratch) lives in an [`ExecutorScratch`] that is
//! reused across rounds *and across runs*, so the steady-state hot path
//! performs no allocations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use graphlib::{NodeId, Port, WeightedGraph};

use crate::metrics::MetricsRecorder;
use crate::{
    EnergyModel, Envelope, FaultPlan, NextWake, NodeCtx, Outbox, Payload, PortWeights, Protocol,
    Round, RunOutcome, RunStats, SimConfig, SimError, Trace, TraceEvent, WakePolicy,
};

/// Rounds with fewer awake nodes than this run the send half-step
/// serially even when [`SimConfig::shards`] asks for more shards: below
/// it, the per-round cost of spawning scoped worker threads dwarfs the
/// send work itself (the paper's token-passing phases wake one or two
/// nodes per round). The outcome is bit-identical either way — the
/// threshold only picks which code path computes it.
const SHARD_MIN_AWAKE: usize = 128;

/// The shard-engagement decision, as a pure function: `Some(chunk_len)`
/// when the send half-step of a round with `awake_len` awake nodes runs
/// sharded (the ascending awake set is split into contiguous chunks of
/// `chunk_len`, one lane per chunk), `None` when it runs serially.
///
/// This is the *entire* input surface of the decision — the awake set's
/// size, the configured shard count, and whether the run is traced
/// (trace payload formatting is inherently sequential). Nothing else:
/// not wall-clock, not load, not thread identity. `tests/shard_boundary.rs`
/// pins the purity and the 127/128/129 engagement boundary.
#[must_use]
pub fn shard_chunk_len(awake_len: usize, shards: u32, record_trace: bool) -> Option<usize> {
    let shard_target = (shards as usize).max(1);
    let shard_gate = SHARD_MIN_AWAKE.max(shard_target);
    if shard_target > 1 && !record_trace && awake_len >= shard_gate {
        Some(awake_len.div_ceil(shard_target))
    } else {
        None
    }
}

/// Which time driver executes a run.
///
/// All three produce bit-identical outcomes (final states, stats, trace,
/// metrics) for every protocol, fault plan, and metrics setting — the
/// cross-driver proptests in `tests/differential.rs` pin this. They
/// differ only in how the clock advances between populated rounds, i.e.
/// in wall-clock cost (see `BENCH_engine.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Executor {
    /// Round-synchronous: the clock visits every round from 1 upward,
    /// paying a per-round tick even when every node sleeps. The cost
    /// model of a traditional round-driven simulator.
    Sync,
    /// Event-driven calendar (the default): a binary heap of
    /// `(next-wake, node)` events; time jumps directly between populated
    /// rounds.
    #[default]
    Calendar,
    /// Per-round `O(n)` scan of every node's next wake — the
    /// differential-testing oracle. Never use it for real workloads.
    Naive,
}

impl Executor {
    /// Every executor, in presentation order.
    pub const ALL: [Executor; 3] = [Executor::Sync, Executor::Calendar, Executor::Naive];

    /// Parses a stable executor name (`sync`, `calendar`, `naive`), as
    /// accepted by the CLI's `--executor` flag.
    pub fn parse(s: &str) -> Option<Executor> {
        match s {
            "sync" => Some(Executor::Sync),
            "calendar" => Some(Executor::Calendar),
            "naive" => Some(Executor::Naive),
            _ => None,
        }
    }

    /// The stable name [`Executor::parse`] accepts, also used in reports
    /// and JSON artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Executor::Sync => "sync",
            Executor::Calendar => "calendar",
            Executor::Naive => "naive",
        }
    }
}

impl std::fmt::Display for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The active fault plan of a config, if it can affect the run at all.
/// Inert plans (every intensity zero, no crashes) are filtered out here,
/// so every driver takes the exact no-fault path for them — fault
/// support costs nothing unless a fault can actually fire.
fn active_faults(config: &SimConfig) -> Option<&FaultPlan> {
    config.faults.as_ref().filter(|plan| !plan.is_inert())
}

/// The active energy model of a config, if it can affect the run at all.
/// Mirrors [`active_faults`]: an inert model (every cost zero) is
/// filtered out, so the kernel takes the exact no-energy path for it and
/// a zero-cost run is bit-identical to a run with no model
/// (`tests/energy_conservation.rs` pins this).
fn active_energy(config: &SimConfig) -> Option<&EnergyModel> {
    config.energy.as_ref().filter(|model| !model.is_inert())
}

/// The active wake policy of a config, if it can move any wake. Identity
/// policies ([`WakePolicy::is_identity`]) take the exact no-policy path.
fn active_policy(config: &SimConfig) -> Option<WakePolicy> {
    Some(config.wake_policy).filter(|policy| !policy.is_identity())
}

/// Builds the initial knowledge handed to `node` (KT0 plus run
/// parameters). Every driver derives identical contexts — notably the
/// per-node RNG seed — which is what lets differential runs agree.
/// `max_external_id` and the shared `weights` array are passed in rather
/// than recomputed: `max_external_id()` is an `O(n)` scan of the id
/// table, and calling it per node made setup `O(n²)`; likewise each
/// node's `port_weights` used to be a fresh `Vec` (n allocations, one
/// per context) and is now a [`PortWeights`] window into one run-wide
/// copy of the graph's flat CSR weights. Both were dominant on the
/// sparse-wake panel, where setup buried the driver cost the panel
/// exists to measure.
fn node_ctx(
    graph: &WeightedGraph,
    config: &SimConfig,
    node: NodeId,
    max_external_id: u64,
    weights: &Arc<[u64]>,
) -> NodeCtx {
    NodeCtx {
        node,
        external_id: graph.external_id(node),
        n: graph.node_count(),
        max_external_id,
        port_weights: PortWeights::slice(
            Arc::clone(weights),
            graph.port_base(node),
            graph.degree(node) as u32,
        ),
        rng_seed: config
            .master_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(node.raw()).wrapping_mul(0xff51_afd7_ed55_8ccd)),
    }
}

/// Per-node construction + `init` call, shared by every driver.
/// Returns the contexts, protocol values, and each node's first wake
/// (`None` = halted in `init`).
#[allow(clippy::type_complexity)]
fn init_nodes<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    mut factory: F,
    trace: &mut Trace,
) -> Result<(Vec<NodeCtx>, Vec<P>, Vec<Option<Round>>), SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let n = graph.node_count();
    let max_external_id = graph.max_external_id();
    let weights: Arc<[u64]> = graph.flat_port_weights().into();
    let mut ctxs = Vec::with_capacity(n);
    let mut protocols = Vec::with_capacity(n);
    let mut first_wake = Vec::with_capacity(n);
    for node in graph.nodes() {
        let ctx = node_ctx(graph, config, node, max_external_id, &weights);
        let mut protocol = factory(&ctx);
        match protocol.init(&ctx) {
            NextWake::At(r) => {
                if r == 0 {
                    return Err(SimError::WakeNotInFuture {
                        node,
                        round: 0,
                        requested: 0,
                    });
                }
                first_wake.push(Some(r));
            }
            NextWake::Halt => {
                if config.record_trace {
                    trace.push(TraceEvent::Halted { round: 0, node });
                }
                first_wake.push(None);
            }
        }
        ctxs.push(ctx);
        protocols.push(protocol);
    }
    Ok((ctxs, protocols, first_wake))
}

/// Validates one outgoing envelope, accounts its per-edge bits, and routes
/// it to `(receiver, receiver port, bits, edge index)` via the precomputed
/// back port — no adjacency scan, and `bit_size` is computed exactly once
/// per message (the result is threaded through delivery accounting, the
/// trace, and the metrics recorder's congestion scratch).
#[inline]
fn route_envelope<M: Payload>(
    graph: &WeightedGraph,
    config: &SimConfig,
    stats: &mut RunStats,
    node: NodeId,
    round: Round,
    port: Port,
    msg: &M,
) -> Result<(u32, u32, usize, usize), SimError> {
    if port.index() >= graph.degree(node) {
        return Err(SimError::PortOutOfRange { node, port, round });
    }
    let bits = msg.bit_size();
    if let Some(limit) = config.bit_limit {
        if bits > limit {
            return Err(SimError::MessageTooLarge {
                node,
                round,
                bits,
                limit,
            });
        }
    }
    let entry = graph.port_entry(node, port);
    stats.bits_by_edge[entry.edge.index()] += bits as u64;
    stats.max_message_bits = stats.max_message_bits.max(bits as u64);
    Ok((
        entry.neighbor.raw(),
        entry.back_port.raw(),
        bits,
        entry.edge.index(),
    ))
}

/// Outcome class of one routed send attempt, recorded by a shard worker
/// and replayed into the shared stats/metrics by the deterministic merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SentKind {
    /// Delivered to an awake receiver (one arena envelope).
    Delivered,
    /// Delivered plus an injected duplicate (two arena envelopes).
    DeliveredDup,
    /// Lost: the receiver was asleep (a model loss).
    Lost,
    /// Destroyed in flight by an injected drop fault.
    Dropped,
}

/// One adjudicated send attempt, in a shard worker's send order. Holds
/// exactly what the merge needs to replay the serial path's accounting:
/// the sender (the energy ledger charges transmit bits to it), the
/// receiver (stats + inbox slot), the wire size, the edge, and the
/// outcome.
#[derive(Debug, Clone, Copy)]
struct SentRecord {
    from: u32,
    to: u32,
    edge: u32,
    bits: u64,
    kind: SentKind,
}

/// Per-shard working buffers for the parallel send half-step, reused
/// across rounds (and runs) like every other executor buffer.
#[derive(Debug)]
struct ShardScratch<M> {
    outbox: Outbox<M>,
    /// Delivered envelopes of this shard's nodes, in send order.
    arena: Vec<Envelope<M>>,
    /// Every adjudicated send attempt of this shard, in send order.
    records: Vec<SentRecord>,
    /// First validation error hit by this shard, if any; the worker
    /// stops at it, exactly where the serial path would abort.
    error: Option<SimError>,
}

impl<M> ShardScratch<M> {
    fn new() -> Self {
        ShardScratch {
            outbox: Outbox::new(),
            arena: Vec::new(),
            records: Vec::new(),
            error: None,
        }
    }
}

/// Send half-step of one shard: runs `send` for a contiguous slice of
/// the round's awake set and adjudicates every envelope — validation,
/// routing via the precomputed back port, fault verdicts (pure functions
/// of the plan's seed, so every worker reaches the serial verdicts), and
/// the awake check against the round's stamp — exactly as the serial
/// path does, but records outcomes into shard-local buffers instead of
/// the shared stats. The kernel's merge replays them in shard order,
/// which *is* serial node order (shards partition the ascending awake
/// set into contiguous runs), so the accounting is reproduced bit for
/// bit.
#[allow(clippy::too_many_arguments)]
fn shard_send<P: Protocol>(
    graph: &WeightedGraph,
    bit_limit: Option<usize>,
    faults: Option<&FaultPlan>,
    round: Round,
    awake_stamp: &[Round],
    ctxs: &[NodeCtx],
    part: &mut [P],
    part_base: usize,
    chunk: &[u32],
    lane: &mut ShardScratch<P::Msg>,
) {
    lane.arena.clear();
    lane.records.clear();
    lane.error = None;
    for &v in chunk {
        let node = NodeId::new(v);
        lane.outbox.clear();
        part[v as usize - part_base].send(&ctxs[v as usize], round, &mut lane.outbox);
        for Envelope { port, msg } in lane.outbox.drain() {
            if port.index() >= graph.degree(node) {
                lane.error = Some(SimError::PortOutOfRange { node, port, round });
                return;
            }
            let bits = msg.bit_size();
            if let Some(limit) = bit_limit {
                if bits > limit {
                    lane.error = Some(SimError::MessageTooLarge {
                        node,
                        round,
                        bits,
                        limit,
                    });
                    return;
                }
            }
            let entry = graph.port_entry(node, port);
            let to = entry.neighbor.raw();
            let edge = entry.edge.index() as u32;
            let bits = bits as u64;
            if let Some(plan) = faults {
                if plan.drops(round, v, port.raw()) {
                    lane.records.push(SentRecord {
                        from: v,
                        to,
                        edge,
                        bits,
                        kind: SentKind::Dropped,
                    });
                    continue;
                }
            }
            if awake_stamp[to as usize] == round {
                let dup = match faults {
                    Some(plan) => plan.duplicates(round, v, port.raw()),
                    None => false,
                };
                if dup {
                    lane.records.push(SentRecord {
                        from: v,
                        to,
                        edge,
                        bits,
                        kind: SentKind::DeliveredDup,
                    });
                    lane.arena.push(Envelope::new(entry.back_port, msg.clone()));
                } else {
                    lane.records.push(SentRecord {
                        from: v,
                        to,
                        edge,
                        bits,
                        kind: SentKind::Delivered,
                    });
                }
                lane.arena.push(Envelope::new(entry.back_port, msg));
            } else {
                lane.records.push(SentRecord {
                    from: v,
                    to,
                    edge,
                    bits,
                    kind: SentKind::Lost,
                });
            }
        }
    }
}

/// The scheduled-wake priority queue with lazy deletion.
///
/// `schedule` may supersede an earlier, not-yet-fired entry for the same
/// node; the stale heap entry is dropped when its round is popped. Rounds
/// whose entries are all stale still surface from
/// [`pop_round`](WakeQueue::pop_round) — with an empty live set — so the
/// kernel can keep adjudicating faults for them; the kernel does **not**
/// count such rounds toward `RunStats::rounds`. The run's final round is
/// the last one in which some node actually executed, which is also what
/// the metrics stream records (`stats.rounds == metrics.last_round()`
/// whenever metrics are on — every driver agrees).
#[derive(Debug)]
pub(crate) struct WakeQueue {
    heap: BinaryHeap<Reverse<(Round, u32)>>,
    /// `Some(r)` = node will wake in round `r`; `None` = halted.
    next_wake: Vec<Option<Round>>,
    /// `popped_stamp[v] == r` marks v already returned for round r
    /// (guards against duplicate heap entries; stamps start at 1).
    popped_stamp: Vec<Round>,
}

impl WakeQueue {
    pub(crate) fn new(n: usize) -> Self {
        WakeQueue {
            heap: BinaryHeap::with_capacity(n),
            next_wake: vec![None; n],
            popped_stamp: vec![0; n],
        }
    }

    /// Re-initializes a recycled queue for a fresh `n`-node run, keeping
    /// the allocations. Clearing `popped_stamp` is load-bearing: rounds
    /// restart from 1 every run, so a stale stamp from a previous run
    /// could silently swallow a wake (the reused-scratch differential
    /// proptests pin this).
    pub(crate) fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.next_wake.clear();
        self.next_wake.resize(n, None);
        self.popped_stamp.clear();
        self.popped_stamp.resize(n, 0);
    }

    /// Schedules (or re-schedules) `node` to wake in `round`.
    pub(crate) fn schedule(&mut self, node: u32, round: Round) {
        self.next_wake[node as usize] = Some(round);
        self.heap.push(Reverse((round, node)));
    }

    /// Marks `node` as halted; its pending entry (if any) goes stale.
    pub(crate) fn halt(&mut self, node: u32) {
        self.next_wake[node as usize] = None;
    }

    /// Withdraws `node` from the round it was just popped live for: the
    /// popped stamp is cleared, so [`WakeQueue::is_awake_in`] reports the
    /// node asleep again. The fault path uses this for spurious sleeps
    /// and crashes — the node must look asleep to the round's routing so
    /// messages to it are lost per the model.
    pub(crate) fn retract(&mut self, node: u32) {
        self.popped_stamp[node as usize] = 0;
    }

    /// The earliest scheduled round, if any entry (live or stale) remains.
    pub(crate) fn peek_round(&self) -> Option<Round> {
        self.heap.peek().map(|&Reverse((r, _))| r)
    }

    /// Whether `node` was returned live by the pop for `round` (i.e. the
    /// node is awake in the round currently being executed).
    #[inline]
    pub(crate) fn is_awake_in(&self, node: u32, round: Round) -> bool {
        self.popped_stamp[node as usize] == round
    }

    /// Pops every entry of the earliest round. Returns that round and
    /// fills `live` with the nodes genuinely waking now, **ascending**;
    /// stale entries are dropped (but still produce a returned round).
    pub(crate) fn pop_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        live.clear();
        let Reverse((round, _)) = *self.heap.peek()?;
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            if r != round {
                break;
            }
            self.heap.pop();
            if self.next_wake[v as usize] == Some(r) && self.popped_stamp[v as usize] != round {
                self.popped_stamp[v as usize] = round;
                live.push(v);
            }
        }
        // Most rounds of the paper's token-passing phases wake a single
        // node; skip the sort machinery entirely for those.
        if live.len() > 1 {
            live.sort_unstable();
        }
        Some(round)
    }
}

/// Reusable executor state: the wake queue, the per-round delivery
/// buffers (outbox, flat inbox arena, grouping scratch), and a pool of
/// recycled [`RunStats`].
///
/// [`Simulator::run_with_scratch`](crate::Simulator::run_with_scratch)
/// threads one value through many runs — a sweep's worker thread creates
/// one scratch and reuses it for its whole trial stream, so executor
/// allocations are O(workers) instead of O(runs). Every run fully
/// re-initializes the scratch before use; nothing observable leaks
/// between runs (the reused-scratch differential proptests pin this).
#[derive(Debug)]
pub struct ExecutorScratch<M> {
    queue: WakeQueue,
    awake_now: Vec<u32>,
    /// `slot_of[v]` = v's index in `awake_now`, valid only while
    /// the driver reports v awake for the current round.
    slot_of: Vec<u32>,
    /// Flat inbox arena: every delivered envelope of the round, grouped by
    /// receiver slot and sorted by receiver port within each group.
    arena: Vec<Envelope<M>>,
    /// `slots[i]` = receiver slot of `arena[i]` while the round's arena is
    /// still in send order (before grouping).
    slots: Vec<u32>,
    /// Scratch permutation for the in-place counting-sort grouping.
    perm: Vec<u32>,
    /// `(start, len)` of each awake node's slice of `arena`, by slot.
    inbox_ranges: Vec<(u32, u32)>,
    outbox: Outbox<M>,
    /// `awake_stamp[v] == r` marks v awake in round r (the kernel's own
    /// copy of the driver's popped stamp, written once per round from the
    /// adjudicated awake set so shard workers can read it lock-free).
    awake_stamp: Vec<Round>,
    /// Per-shard send buffers (empty until a run with `shards > 1` hits
    /// a round wide enough to parallelize).
    shard_lanes: Vec<ShardScratch<M>>,
    stats_pool: Vec<RunStats>,
}

impl<M> Default for ExecutorScratch<M> {
    fn default() -> Self {
        ExecutorScratch::new()
    }
}

impl<M> ExecutorScratch<M> {
    /// An empty scratch; buffers grow to their high-water marks during the
    /// first run and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        ExecutorScratch {
            queue: WakeQueue::new(0),
            awake_now: Vec::new(),
            slot_of: Vec::new(),
            arena: Vec::new(),
            slots: Vec::new(),
            perm: Vec::new(),
            inbox_ranges: Vec::new(),
            outbox: Outbox::new(),
            awake_stamp: Vec::new(),
            shard_lanes: Vec::new(),
            stats_pool: Vec::new(),
        }
    }

    /// Returns a no-longer-needed [`RunStats`] to the pool so the next run
    /// from this scratch reuses its vectors instead of allocating.
    pub fn recycle(&mut self, stats: RunStats) {
        self.stats_pool.push(stats);
    }

    /// Re-initializes every buffer for a fresh `n`-node run.
    fn reset(&mut self, n: usize) {
        self.queue.reset(n);
        self.awake_now.clear();
        self.slot_of.clear();
        self.slot_of.resize(n, 0);
        self.arena.clear();
        self.slots.clear();
        self.perm.clear();
        self.inbox_ranges.clear();
        self.outbox.clear();
        // Stale stamps would mark nodes awake in a round of the *next*
        // run (rounds restart from 1), so clearing is load-bearing, like
        // the wake queue's popped stamps.
        self.awake_stamp.clear();
        self.awake_stamp.resize(n, 0);
        for lane in self.shard_lanes.iter_mut() {
            lane.outbox.clear();
            lane.arena.clear();
            lane.records.clear();
            lane.error = None;
        }
    }

    /// A zeroed [`RunStats`] for an `n`-node, `m`-edge run — recycled
    /// storage if the pool has any, freshly allocated otherwise.
    fn take_stats(&mut self, n: usize, m: usize) -> RunStats {
        match self.stats_pool.pop() {
            Some(mut stats) => {
                stats.reset(n, m);
                stats
            }
            None => RunStats::new(n, m),
        }
    }
}

/// Buffers a `Delivered` trace event. Deliberately out-of-line: the
/// `Debug` formatting machinery must stay off the untraced hot path.
/// Delivery events buffer into `buf` (flushed after the round's send
/// half-step) so the recorded order — every `Awake` of the round, then
/// `Delivered`/`Lost` in send order — is identical under every driver.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn record_delivered<M: Payload>(
    buf: &mut Vec<TraceEvent>,
    round: Round,
    from: u32,
    to: u32,
    recv_port: u32,
    bits: usize,
    msg: &M,
) {
    buf.push(TraceEvent::Delivered {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
        port: Port::new(recv_port),
        bits,
        payload: format!("{msg:?}"),
    });
}

/// Buffers a `Lost` trace event (out-of-line, like [`record_delivered`]).
#[cold]
#[inline(never)]
fn record_lost(buf: &mut Vec<TraceEvent>, round: Round, from: u32, to: u32) {
    buf.push(TraceEvent::Lost {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
    });
}

/// Buffers a `Dropped` trace event (out-of-line, like [`record_lost`]).
#[cold]
#[inline(never)]
fn record_dropped(buf: &mut Vec<TraceEvent>, round: Round, from: u32, to: u32) {
    buf.push(TraceEvent::Dropped {
        round,
        from: NodeId::new(from),
        to: NodeId::new(to),
    });
}

/// How the kernel advances simulated time. One implementation per
/// [`Executor`]; the kernel is generic over this trait and owns
/// everything else (sends, routing, faults, delivery, accounting).
///
/// Contract: rounds returned by `next_round` are strictly increasing;
/// `is_awake_in(v, r)` holds exactly for the nodes returned live for the
/// currently executing round `r` and is falsified by `retract`/`halt`
/// (crash) or `retract`+`schedule` (suppression) during fault
/// adjudication.
trait TimeDriver {
    /// Schedules (or re-schedules) `node` to wake in `round`.
    fn schedule(&mut self, node: u32, round: Round);
    /// Marks `node` as halted; it will never be returned live again.
    fn halt(&mut self, node: u32);
    /// Withdraws `node` from the round it was just returned live for,
    /// so `is_awake_in` reports it asleep to the round's routing.
    fn retract(&mut self, node: u32);
    /// Advances to the next round with scheduled activity, filling
    /// `live` with the nodes waking in it (ascending). `None` = no
    /// pending wakes remain. May return a round past the budget (with
    /// any live set); the kernel turns that into `MaxRoundsExceeded`.
    fn next_round(&mut self, live: &mut Vec<u32>) -> Option<Round>;
    /// Whether `node` is awake in the currently executing `round`.
    fn is_awake_in(&self, node: u32, round: Round) -> bool;
}

/// [`Executor::Calendar`]: the event-driven driver. A thin shim over the
/// [`WakeQueue`] heap — `next_round` pops the earliest populated round,
/// so the clock jumps over silent rounds in `O(log n)`.
struct CalendarDriver<'a> {
    queue: &'a mut WakeQueue,
}

impl TimeDriver for CalendarDriver<'_> {
    fn schedule(&mut self, node: u32, round: Round) {
        self.queue.schedule(node, round);
    }

    fn halt(&mut self, node: u32) {
        self.queue.halt(node);
    }

    fn retract(&mut self, node: u32) {
        self.queue.retract(node);
    }

    fn next_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        self.queue.pop_round(live)
    }

    fn is_awake_in(&self, node: u32, round: Round) -> bool {
        self.queue.is_awake_in(node, round)
    }
}

/// [`Executor::Sync`]: the round-synchronous driver. Same calendar state
/// as [`CalendarDriver`], but the clock walks from the current round to
/// the next wake one round at a time, paying a per-round tick for every
/// silent round — the cost model of a traditional round-driven
/// simulator, kept honest by `std::hint::black_box`.
struct SyncDriver<'a> {
    queue: &'a mut WakeQueue,
    /// The last round the clock has passed through.
    cursor: Round,
    /// The run's round budget; the walk never goes further than one
    /// round past it (the kernel reports `MaxRoundsExceeded` there).
    limit: Round,
}

impl<'a> SyncDriver<'a> {
    fn new(queue: &'a mut WakeQueue, limit: Round) -> Self {
        SyncDriver {
            queue,
            cursor: 0,
            limit,
        }
    }
}

impl TimeDriver for SyncDriver<'_> {
    fn schedule(&mut self, node: u32, round: Round) {
        self.queue.schedule(node, round);
    }

    fn halt(&mut self, node: u32) {
        self.queue.halt(node);
    }

    fn retract(&mut self, node: u32) {
        self.queue.retract(node);
    }

    fn next_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        let target = self.queue.peek_round()?;
        // Walk the clock one round at a time up to the next wake — but
        // never past the round budget, so a single distant wake cannot
        // turn the budget check into an unbounded spin. Every silent
        // round pays the question a round-synchronous scheduler cannot
        // skip ("does anyone wake now?"); `black_box` keeps the
        // optimizer from collapsing the walk back into a calendar jump.
        let stop = target.min(self.limit.saturating_add(1));
        while self.cursor < stop {
            self.cursor += 1;
            let due = self.queue.peek_round() == Some(self.cursor);
            std::hint::black_box(due);
        }
        self.queue.pop_round(live)
    }

    fn is_awake_in(&self, node: u32, round: Round) -> bool {
        self.queue.is_awake_in(node, round)
    }
}

/// [`Executor::Naive`]: the oracle driver. No heap, no stamps — just a
/// per-node next-wake table scanned in full (`O(n)`) for every simulated
/// round. Too simple to share a bug with the calendar machinery, which
/// is its entire job.
struct NaiveDriver {
    /// `Some(r)` = node wakes in round `r`; `None` = halted.
    next_wake: Vec<Option<Round>>,
    /// The last round returned (rounds are scanned strictly upward).
    cursor: Round,
    /// The run's round budget; scanning stops one round past it.
    limit: Round,
}

impl NaiveDriver {
    fn new(n: usize, limit: Round) -> Self {
        NaiveDriver {
            next_wake: vec![None; n],
            cursor: 0,
            limit,
        }
    }
}

impl TimeDriver for NaiveDriver {
    fn schedule(&mut self, node: u32, round: Round) {
        self.next_wake[node as usize] = Some(round);
    }

    fn halt(&mut self, node: u32) {
        self.next_wake[node as usize] = None;
    }

    fn retract(&mut self, _node: u32) {
        // Nothing to withdraw: a crash (`halt` → `None`) or a
        // suppression (`schedule` for `round + 1`) already falsifies
        // `is_awake_in` for the current round — there is no popped
        // stamp in this driver.
    }

    fn next_round(&mut self, live: &mut Vec<u32>) -> Option<Round> {
        loop {
            if self.next_wake.iter().all(Option::is_none) {
                return None;
            }
            self.cursor += 1;
            live.clear();
            for (v, wake) in self.next_wake.iter().enumerate() {
                if *wake == Some(self.cursor) {
                    live.push(v as u32);
                }
            }
            // Surface the first round past the budget even when nothing
            // wakes in it: nodes are still running, so the kernel must
            // report `MaxRoundsExceeded` exactly as the other drivers
            // do, not scan silently toward a distant wake.
            if !live.is_empty() || self.cursor > self.limit {
                return Some(self.cursor);
            }
        }
    }

    fn is_awake_in(&self, node: u32, round: Round) -> bool {
        self.next_wake[node as usize] == Some(round)
    }
}

/// The per-round working buffers the kernel borrows from an
/// [`ExecutorScratch`] — split out so the scratch's `queue` can be
/// borrowed separately by the calendar/sync drivers.
struct KernelBuffers<'a, M> {
    awake_now: &'a mut Vec<u32>,
    slot_of: &'a mut Vec<u32>,
    arena: &'a mut Vec<Envelope<M>>,
    slots: &'a mut Vec<u32>,
    perm: &'a mut Vec<u32>,
    inbox_ranges: &'a mut Vec<(u32, u32)>,
    outbox: &'a mut Outbox<M>,
    awake_stamp: &'a mut Vec<Round>,
    shard_lanes: &'a mut Vec<ShardScratch<M>>,
}

/// Runs a protocol under the driver selected by [`SimConfig::executor`].
/// The single entry point behind [`Simulator`](crate::Simulator): resets
/// the scratch, builds the chosen [`TimeDriver`], and hands both to the
/// generic kernel.
pub(crate) fn run<P, F, O>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
    observer: O,
    scratch: &mut ExecutorScratch<P::Msg>,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
    O: FnMut(Round, &[P]),
{
    let n = graph.node_count();
    scratch.reset(n);
    let stats = scratch.take_stats(n, graph.edge_count());
    let ExecutorScratch {
        queue,
        awake_now,
        slot_of,
        arena,
        slots,
        perm,
        inbox_ranges,
        outbox,
        awake_stamp,
        shard_lanes,
        ..
    } = scratch;
    let bufs = KernelBuffers {
        awake_now,
        slot_of,
        arena,
        slots,
        perm,
        inbox_ranges,
        outbox,
        awake_stamp,
        shard_lanes,
    };
    match config.executor {
        Executor::Calendar => {
            let driver = CalendarDriver { queue };
            run_kernel(graph, config, factory, observer, stats, driver, bufs)
        }
        Executor::Sync => {
            let driver = SyncDriver::new(queue, config.max_rounds);
            run_kernel(graph, config, factory, observer, stats, driver, bufs)
        }
        Executor::Naive => {
            let driver = NaiveDriver::new(n, config.max_rounds);
            run_kernel(graph, config, factory, observer, stats, driver, bufs)
        }
    }
}

/// The one generic execution kernel. Owns the whole per-active-round
/// body — awake-set collection, the send half-step, routing, fault
/// adjudication, arena grouping, the deliver half-step, and all
/// stats/trace/metrics/observer recording — and asks the [`TimeDriver`]
/// only which round comes next and who is awake in it.
#[allow(clippy::too_many_arguments)]
fn run_kernel<P, F, O, D>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
    mut observer: O,
    mut stats: RunStats,
    mut driver: D,
    bufs: KernelBuffers<'_, P::Msg>,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
    O: FnMut(Round, &[P]),
    D: TimeDriver,
{
    let KernelBuffers {
        awake_now,
        slot_of,
        arena,
        slots,
        perm,
        inbox_ranges,
        outbox,
        awake_stamp,
        shard_lanes,
    } = bufs;
    let mut trace = Trace::default();
    let faults = active_faults(config);
    // Energy charging and wake-policy transforms live here, in the one
    // kernel, so every driver and every shard count produces the same
    // ledger and the same schedule by construction. Both are `None` on
    // the common path (inert model / identity policy) and cost one
    // untaken branch per event.
    let energy = active_energy(config);
    let policy = active_policy(config);
    // First budget exhaustion of the run (earliest round, lowest node
    // within it — the deliver loop visits nodes ascending). Any
    // exhaustion makes the run report `EnergyExhausted` at the end; the
    // run itself continues with the node forced asleep, like a crash.
    let mut first_exhausted: Option<(NodeId, Round)> = None;
    stats.graph_bytes = graph.memory_bytes();
    // Sharding is a pure execution strategy: any round too narrow to
    // parallelize (or any traced run — trace payload formatting is
    // inherently sequential) takes the serial path, and the outcomes are
    // bit-identical either way (the cross-shard differential proptests
    // pin this). The per-round decision is [`shard_chunk_len`].
    // `None` when metrics are off: the hot path pays one untaken branch
    // per event and execution is bit-identical (pinned fingerprints).
    let mut metrics = if config.record_metrics {
        Some(MetricsRecorder::new(graph.node_count(), graph.edge_count()))
    } else {
        None
    };

    let (ctxs, mut protocols, first_wake) = init_nodes(graph, config, factory, &mut trace)?;
    let mut running = 0usize;
    for (v, wake) in first_wake.into_iter().enumerate() {
        if let Some(r) = wake {
            let r = match faults {
                Some(plan) => plan.jittered(v as u32, r),
                None => r,
            };
            // The wake policy maps the (possibly jittered) request to the
            // round the node actually wakes in — always at or after it.
            let r = match policy {
                Some(p) => p.applied(v as u32, r),
                None => r,
            };
            driver.schedule(v as u32, r);
            running += 1;
        }
    }
    // Round-local trace staging; stays empty (and allocation-free) unless
    // the run records a trace.
    let mut trace_buf: Vec<TraceEvent> = Vec::new();

    while let Some(round) = driver.next_round(awake_now) {
        if round > config.max_rounds {
            // An earlier exhaustion explains the overrun (the forced
            // sleep is what strands the survivors); report it instead.
            if let Some((node, round)) = first_exhausted {
                return Err(SimError::EnergyExhausted { node, round });
            }
            return Err(SimError::MaxRoundsExceeded {
                limit: config.max_rounds,
                running,
            });
        }
        if let Some(plan) = faults {
            // Crash and spurious-sleep adjudication, before any send: a
            // filtered node must look asleep to the whole round, so it
            // is retracted and messages to it are lost per the model.
            // `retain` preserves the ascending order contract.
            awake_now.retain(|&v| {
                if plan.crashes_at(v, round) {
                    driver.retract(v);
                    driver.halt(v);
                    running -= 1;
                    stats.crashed_nodes += 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Crashed {
                            round,
                            node: NodeId::new(v),
                        });
                    }
                    return false;
                }
                if plan.suppresses(round, v) {
                    driver.retract(v);
                    driver.schedule(v, round + 1);
                    return false;
                }
                true
            });
        }
        if awake_now.is_empty() {
            // A round whose wakes were all superseded or fault-filtered
            // is not run time: `stats.rounds` is the last round in which
            // some node actually executed, so it always agrees with the
            // metrics stream (`metrics.last_round()`) — under every
            // driver.
            continue;
        }
        stats.rounds = round;
        if let Some(rec) = metrics.as_mut() {
            rec.start_round(round, awake_now);
        }
        // Awake accounting up front: the awake set is fixed before any
        // send, so the round stamp (which shard workers read lock-free),
        // the slot table, the per-node awake counts, and the `Awake`
        // trace events — which precede the round's buffered
        // delivery events in the recorded order anyway — are all
        // independent of how the send half-step executes.
        // Nano-joules charged this round (round + tx + rx + idle terms),
        // for the metrics timeline; stays 0 without an active model.
        let mut round_energy = 0u64;
        for (slot, &v) in awake_now.iter().enumerate() {
            slot_of[v as usize] = slot as u32;
            awake_stamp[v as usize] = round;
            stats.awake_by_node[v as usize] += 1;
            if let Some(em) = energy {
                stats.energy_spent_by_node[v as usize] += em.round_cost;
                round_energy += em.round_cost;
            }
            if config.record_trace {
                trace.push(TraceEvent::Awake {
                    round,
                    node: NodeId::new(v),
                });
            }
        }

        // --- Send half-step ---
        // Each message is fully adjudicated at routing time: the awake set
        // is fixed before any send, so delivered-vs-lost is already known
        // here. Stats are order-independent sums and accrue inline; lost
        // messages are accounted and dropped without ever materializing.
        // Delivered envelopes land in `arena` in send order, with the
        // receiver slot recorded alongside in `slots`. Trace events buffer
        // so their order is driver-independent (see [`record_delivered`]).
        arena.clear();
        slots.clear();
        if let Some(chunk_len) =
            shard_chunk_len(awake_now.len(), config.shards, config.record_trace)
        {
            // --- Sharded send ---
            // Partition the ascending awake set into contiguous chunks;
            // each worker runs its nodes' sends against a disjoint
            // protocol sub-slice and records adjudicated outcomes into
            // its own lane. Concatenating the lanes in shard order
            // reproduces serial node order exactly, so the merge below
            // replays the identical accounting stream.
            let lanes_used = awake_now.len().div_ceil(chunk_len);
            if shard_lanes.len() < lanes_used {
                shard_lanes.resize_with(lanes_used, ShardScratch::new);
            }
            let bit_limit = config.bit_limit;
            let stamp: &[Round] = awake_stamp;
            let ctxs_ref: &[NodeCtx] = &ctxs;
            std::thread::scope(|scope| {
                let mut rest: &mut [P] = &mut protocols;
                let mut base = 0usize;
                for (chunk, lane) in awake_now.chunks(chunk_len).zip(shard_lanes.iter_mut()) {
                    let Some(&hi) = chunk.last() else { continue };
                    let take = (hi as usize + 1 - base).min(rest.len());
                    let (part, tail) = rest.split_at_mut(take);
                    rest = tail;
                    let part_base = base;
                    base = hi as usize + 1;
                    scope.spawn(move || {
                        shard_send(
                            graph, bit_limit, faults, round, stamp, ctxs_ref, part, part_base,
                            chunk, lane,
                        );
                    });
                }
            });
            let lanes = &mut shard_lanes[..lanes_used];
            // First error in lane order = first error in node order =
            // exactly where the serial path would have aborted.
            for lane in lanes.iter_mut() {
                if let Some(err) = lane.error.take() {
                    return Err(err);
                }
            }
            for lane in lanes.iter_mut() {
                for rec in lane.records.iter() {
                    stats.bits_by_edge[rec.edge as usize] += rec.bits;
                    stats.max_message_bits = stats.max_message_bits.max(rec.bits);
                    if let Some(em) = energy {
                        // The sender pays transmit energy for every routed
                        // message — lost and dropped ones included, exactly
                        // as the serial path charges.
                        let tx = em.tx_bit_cost * rec.bits;
                        stats.energy_spent_by_node[rec.from as usize] += tx;
                        round_energy += tx;
                    }
                    if let Some(m) = metrics.as_mut() {
                        m.on_send(rec.edge as usize, rec.bits as usize);
                    }
                    match rec.kind {
                        SentKind::Delivered => {
                            stats.messages_delivered += 1;
                            stats.bits_received_by_node[rec.to as usize] += rec.bits;
                            if let Some(em) = energy {
                                let rx = em.rx_bit_cost * rec.bits;
                                stats.energy_spent_by_node[rec.to as usize] += rx;
                                round_energy += rx;
                            }
                            if let Some(m) = metrics.as_mut() {
                                m.on_delivered();
                            }
                            slots.push(slot_of[rec.to as usize]);
                        }
                        SentKind::DeliveredDup => {
                            stats.messages_delivered += 2;
                            stats.dup_deliveries += 1;
                            stats.bits_received_by_node[rec.to as usize] += 2 * rec.bits;
                            if let Some(em) = energy {
                                let rx = 2 * em.rx_bit_cost * rec.bits;
                                stats.energy_spent_by_node[rec.to as usize] += rx;
                                round_energy += rx;
                            }
                            if let Some(m) = metrics.as_mut() {
                                m.on_delivered();
                                m.on_dup_delivered();
                            }
                            slots.push(slot_of[rec.to as usize]);
                            slots.push(slot_of[rec.to as usize]);
                        }
                        SentKind::Lost => {
                            stats.messages_lost += 1;
                            if let Some(m) = metrics.as_mut() {
                                m.on_lost();
                            }
                        }
                        SentKind::Dropped => {
                            stats.injected_drops += 1;
                            if let Some(m) = metrics.as_mut() {
                                m.on_dropped();
                            }
                        }
                    }
                }
                arena.append(&mut lane.arena);
            }
        } else {
            for &v in awake_now.iter() {
                let node = NodeId::new(v);
                outbox.clear();
                protocols[v as usize].send(&ctxs[v as usize], round, outbox);
                for Envelope { port, msg } in outbox.drain() {
                    let (to, recv_port, bits, edge) =
                        route_envelope(graph, config, &mut stats, node, round, port, &msg)?;
                    if let Some(em) = energy {
                        // Transmit energy accrues at routing time: the
                        // sender pays whether the message is delivered,
                        // lost, or dropped in flight.
                        let tx = em.tx_bit_cost * bits as u64;
                        stats.energy_spent_by_node[v as usize] += tx;
                        round_energy += tx;
                    }
                    if let Some(rec) = metrics.as_mut() {
                        rec.on_send(edge, bits);
                    }
                    if let Some(plan) = faults {
                        // A dropped message is destroyed in flight after the
                        // sender paid for it (bits accrued above), regardless
                        // of the receiver's state — it is an injected fault,
                        // not a model loss.
                        if plan.drops(round, v, port.raw()) {
                            stats.injected_drops += 1;
                            if let Some(rec) = metrics.as_mut() {
                                rec.on_dropped();
                            }
                            if config.record_trace {
                                record_dropped(&mut trace_buf, round, v, to);
                            }
                            continue;
                        }
                    }
                    let to_awake = awake_stamp[to as usize] == round;
                    debug_assert_eq!(to_awake, driver.is_awake_in(to, round));
                    if to_awake {
                        stats.messages_delivered += 1;
                        stats.bits_received_by_node[to as usize] += bits as u64;
                        if let Some(em) = energy {
                            let rx = em.rx_bit_cost * bits as u64;
                            stats.energy_spent_by_node[to as usize] += rx;
                            round_energy += rx;
                        }
                        if let Some(rec) = metrics.as_mut() {
                            rec.on_delivered();
                        }
                        if config.record_trace {
                            record_delivered(&mut trace_buf, round, v, to, recv_port, bits, &msg);
                        }
                        slots.push(slot_of[to as usize]);
                        // An injected duplication delivers a second identical
                        // copy; it counts as a delivery of its own so the
                        // conservation audit reconciles.
                        let dup = match faults {
                            Some(plan) => plan.duplicates(round, v, port.raw()),
                            None => false,
                        };
                        if dup {
                            stats.messages_delivered += 1;
                            stats.dup_deliveries += 1;
                            stats.bits_received_by_node[to as usize] += bits as u64;
                            if let Some(em) = energy {
                                let rx = em.rx_bit_cost * bits as u64;
                                stats.energy_spent_by_node[to as usize] += rx;
                                round_energy += rx;
                            }
                            if let Some(rec) = metrics.as_mut() {
                                rec.on_dup_delivered();
                            }
                            if config.record_trace {
                                record_delivered(
                                    &mut trace_buf,
                                    round,
                                    v,
                                    to,
                                    recv_port,
                                    bits,
                                    &msg,
                                );
                            }
                            slots.push(slot_of[to as usize]);
                            arena.push(Envelope::new(Port::new(recv_port), msg.clone()));
                        }
                        arena.push(Envelope::new(Port::new(recv_port), msg));
                    } else {
                        stats.messages_lost += 1;
                        if let Some(rec) = metrics.as_mut() {
                            rec.on_lost();
                        }
                        if config.record_trace {
                            record_lost(&mut trace_buf, round, v, to);
                        }
                    }
                }
            }
        }
        if config.record_trace {
            for event in trace_buf.drain(..) {
                trace.push(event);
            }
        }
        stats.arena_peak_envelopes = stats.arena_peak_envelopes.max(arena.len() as u64);

        // --- Deliver half-step ---
        // Group the arena by receiver slot with an O(M) counting sort
        // (count, prefix-sum, in-place cycle permutation) rather than a
        // comparison sort of the whole round. The permutation targets are
        // assigned in send order, so within one slot the grouped arena
        // preserves send order; the stable per-range sort by port then
        // reproduces exactly a per-inbox `sort_by_key(|e| e.port)` —
        // deliver order is bit-identical under every driver.
        inbox_ranges.clear();
        inbox_ranges.resize(awake_now.len(), (0u32, 0u32));
        for &s in slots.iter() {
            inbox_ranges[s as usize].1 += 1;
        }
        let mut acc = 0u32;
        for range in inbox_ranges.iter_mut() {
            range.0 = acc;
            acc += range.1;
        }
        if arena.len() > 1 {
            // `range.0` doubles as the placement cursor; it ends at the
            // range's end and is rewound by `len` afterwards.
            perm.clear();
            for &s in slots.iter() {
                let range = &mut inbox_ranges[s as usize];
                perm.push(range.0);
                range.0 += 1;
            }
            for range in inbox_ranges.iter_mut() {
                range.0 -= range.1;
            }
            for i in 0..perm.len() {
                while perm[i] != i as u32 {
                    let j = perm[i] as usize;
                    arena.swap(i, j);
                    perm.swap(i, j);
                }
            }
            for &(start, len) in inbox_ranges.iter() {
                if len > 1 {
                    arena[start as usize..(start + len) as usize].sort_by_key(|e| e.port);
                }
            }
        }

        for (slot, &v) in awake_now.iter().enumerate() {
            let node = NodeId::new(v);
            let (start, len) = inbox_ranges[slot];
            if len == 0 {
                // An awake round that delivered nothing is idle listening.
                // Counted whether or not an energy model is active, so an
                // inert model stays bit-identical to no model.
                stats.idle_listen_rounds += 1;
                if let Some(em) = energy {
                    stats.energy_spent_by_node[v as usize] += em.idle_cost;
                    round_energy += em.idle_cost;
                }
            }
            let inbox = &arena[start as usize..(start + len) as usize];
            let next = protocols[v as usize].deliver(&ctxs[v as usize], round, inbox);
            // Budget adjudication: by deliver time every charge of the
            // node's round (round, tx, rx, idle) has accrued, so the
            // verdict is final — and reached in serial node order under
            // every driver and shard count.
            let exhausted = match energy {
                Some(em) => em
                    .budget
                    .is_some_and(|b| stats.energy_spent_by_node[v as usize] > b),
                None => false,
            };
            if exhausted {
                stats.exhausted_nodes += 1;
                if first_exhausted.is_none() {
                    first_exhausted = Some((node, round));
                }
            }
            match next {
                NextWake::At(r) => {
                    if r <= round {
                        return Err(SimError::WakeNotInFuture {
                            node,
                            round,
                            requested: r,
                        });
                    }
                    if exhausted {
                        // Forced asleep permanently — the crash machinery:
                        // the requested wake is discarded and messages to
                        // the node are lost from here on.
                        driver.halt(v);
                        running -= 1;
                    } else {
                        let r = match faults {
                            Some(plan) => plan.jittered(v, r),
                            None => r,
                        };
                        let r = match policy {
                            Some(p) => p.applied(v, r),
                            None => r,
                        };
                        driver.schedule(v, r);
                    }
                }
                NextWake::Halt => {
                    driver.halt(v);
                    running -= 1;
                    if config.record_trace {
                        trace.push(TraceEvent::Halted { round, node });
                    }
                }
            }
        }

        if let Some(rec) = metrics.as_mut() {
            rec.set_energy(round_energy);
            rec.finish_round();
        }
        observer(round, &protocols);
    }

    // A budget violation outranks the residual symptoms it causes (the
    // stall of the survivors, or even a clean-looking completion): any
    // exhaustion fails the run with the typed error.
    if let Some((node, round)) = first_exhausted {
        return Err(SimError::EnergyExhausted { node, round });
    }
    if running > 0 {
        return Err(SimError::Stalled {
            running,
            round: stats.rounds,
        });
    }
    Ok(RunOutcome {
        states: protocols,
        stats,
        trace,
        metrics: metrics
            .map(MetricsRecorder::into_metrics)
            .unwrap_or_default(),
    })
}

/// Reference run under the [`Executor::Naive`] driver: a per-round
/// `O(n)` scan of every node's next wake, from round 1 upward.
///
/// Semantically identical to the calendar executor — identical final
/// states, [`RunStats`], trace, and metrics — but costs time
/// proportional to the run's round count. It exists as the
/// differential-testing oracle that locks in the calendar machinery's
/// behavior (see `tests/differential.rs`); it is not part of the
/// supported simulation API surface.
///
/// # Errors
///
/// Propagates the same [`SimError`] conditions as
/// [`Simulator::run`](crate::Simulator::run).
pub fn run_naive<P, F>(
    graph: &WeightedGraph,
    config: &SimConfig,
    factory: F,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(&NodeCtx) -> P,
{
    let mut config = config.clone();
    config.executor = Executor::Naive;
    run(
        graph,
        &config,
        factory,
        |_, _: &[P]| {},
        &mut ExecutorScratch::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_names_roundtrip_and_default_is_calendar() {
        for e in Executor::ALL {
            assert_eq!(Executor::parse(e.as_str()), Some(e));
            assert_eq!(e.to_string(), e.as_str());
        }
        assert_eq!(Executor::parse("warp"), None);
        assert_eq!(Executor::default(), Executor::Calendar);
    }

    #[test]
    fn wake_queue_orders_and_dedups() {
        let mut q = WakeQueue::new(3);
        q.schedule(2, 5);
        q.schedule(0, 3);
        q.schedule(1, 3);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(3));
        assert_eq!(live, vec![0, 1]);
        assert_eq!(q.pop_round(&mut live), Some(5));
        assert_eq!(live, vec![2]);
        assert_eq!(q.pop_round(&mut live), None);
    }

    #[test]
    fn wake_queue_halt_makes_entry_stale() {
        let mut q = WakeQueue::new(2);
        q.schedule(0, 4);
        q.schedule(1, 4);
        q.halt(1);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(4));
        assert_eq!(live, vec![0]);
    }

    /// A run whose final scheduled wake was superseded still pops that
    /// round — with no live wakers. The kernel keeps adjudicating faults
    /// for such rounds but does not count them toward `RunStats::rounds`
    /// (the final round is the last one that actually executed).
    #[test]
    fn wake_queue_reports_trailing_stale_round() {
        let mut q = WakeQueue::new(1);
        q.schedule(0, 9);
        q.schedule(0, 2); // supersedes: the round-9 entry is now stale
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(2));
        assert_eq!(live, vec![0]);
        q.halt(0);
        // The stale trailing entry still surfaces its round, empty.
        assert_eq!(q.pop_round(&mut live), Some(9));
        assert!(live.is_empty());
        assert_eq!(q.pop_round(&mut live), None);
    }

    /// The ascending-order contract of `pop_round`: the live set comes
    /// back sorted regardless of scheduling order, through both the
    /// multi-element path (which sorts) and the ≤1-element early-out.
    #[test]
    fn wake_queue_pop_round_yields_ascending_live_set() {
        let mut q = WakeQueue::new(6);
        // Scheduled in descending node order, with a superseded entry and
        // a duplicate-round reschedule mixed in.
        for v in (0..6u32).rev() {
            q.schedule(v, 3);
        }
        q.schedule(4, 8); // supersedes node 4's round-3 entry
        q.schedule(2, 3); // duplicate heap entry for the same (round, node)
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(3));
        assert_eq!(live, vec![0, 1, 2, 3, 5]);
        let mut sorted = live.clone();
        sorted.sort_unstable();
        assert_eq!(live, sorted);
        // Single-element round: the early-out path must also deliver.
        assert_eq!(q.pop_round(&mut live), Some(8));
        assert_eq!(live, vec![4]);
    }

    /// Resetting a queue must clear the popped stamps: rounds restart at 1
    /// every run, and a stale stamp would swallow a genuine wake.
    #[test]
    fn wake_queue_reset_clears_stamps_and_state() {
        let mut q = WakeQueue::new(2);
        q.schedule(0, 7);
        let mut live = Vec::new();
        assert_eq!(q.pop_round(&mut live), Some(7));
        assert_eq!(live, vec![0]);
        q.reset(2);
        assert_eq!(q.peek_round(), None);
        q.schedule(0, 7); // same round number as the previous run
        assert_eq!(q.pop_round(&mut live), Some(7));
        assert_eq!(live, vec![0], "stale stamp swallowed the wake");
    }

    #[test]
    fn naive_driver_scans_upward_and_skips_empty_rounds() {
        let mut d = NaiveDriver::new(3, 100);
        d.schedule(2, 4);
        d.schedule(0, 2);
        let mut live = Vec::new();
        assert_eq!(d.next_round(&mut live), Some(2));
        assert_eq!(live, vec![0]);
        assert!(d.is_awake_in(0, 2));
        assert!(!d.is_awake_in(2, 2));
        d.halt(0);
        assert_eq!(d.next_round(&mut live), Some(4));
        assert_eq!(live, vec![2]);
        d.halt(2);
        assert_eq!(d.next_round(&mut live), None);
    }

    /// A wake beyond the budget must not make the naive driver scan
    /// silently toward it: the first round past the budget surfaces
    /// (empty) so the kernel can report `MaxRoundsExceeded`.
    #[test]
    fn naive_driver_surfaces_the_budget_boundary() {
        let mut d = NaiveDriver::new(1, 5);
        d.schedule(0, 9);
        let mut live = Vec::new();
        assert_eq!(d.next_round(&mut live), Some(6));
        assert!(live.is_empty());
    }

    /// The sync driver reaches exactly the same rounds and live sets as
    /// the calendar — it just walks the cursor through every round in
    /// between.
    #[test]
    fn sync_driver_walks_to_each_wake() {
        let mut q = WakeQueue::new(2);
        let mut d = SyncDriver::new(&mut q, 100);
        d.schedule(0, 3);
        d.schedule(1, 7);
        let mut live = Vec::new();
        assert_eq!(d.next_round(&mut live), Some(3));
        assert_eq!(live, vec![0]);
        assert_eq!(d.cursor, 3);
        assert!(d.is_awake_in(0, 3));
        assert_eq!(d.next_round(&mut live), Some(7));
        assert_eq!(live, vec![1]);
        assert_eq!(d.cursor, 7);
        assert_eq!(d.next_round(&mut live), None);
    }

    /// The sync walk is capped at one round past the budget, so a wake
    /// scheduled astronomically far out cannot hang the driver before
    /// the kernel's budget check fires.
    #[test]
    fn sync_driver_stops_walking_at_the_budget_boundary() {
        let mut q = WakeQueue::new(1);
        let mut d = SyncDriver::new(&mut q, 50);
        d.schedule(0, Round::MAX);
        let mut live = Vec::new();
        assert_eq!(d.next_round(&mut live), Some(Round::MAX));
        assert!(live == vec![0]);
        assert_eq!(d.cursor, 51);
    }
}
