//! The energy plane: first-class integer energy accounting and
//! duty-cycled wake policies for the sleeping-model executors.
//!
//! The sleeping model exists because awake rounds cost energy — awake
//! complexity is a proxy for battery drain (paper, Section 1). This
//! module makes that cost model explicit:
//!
//! * an [`EnergyModel`] prices a run in **integer nano-joules**: a
//!   per-awake-round cost, per-bit transmit/receive costs (Elkin's
//!   message-bound survey argues per-bit terms dominate for
//!   message-heavy comparators), and an optional idle-listen cost for
//!   awake rounds that deliver nothing. An optional per-node budget
//!   turns the ledger into a hard constraint: a node that spends past
//!   its budget falls asleep permanently (the crash machinery) and the
//!   run reports [`SimError::EnergyExhausted`](crate::SimError);
//! * a [`WakePolicy`] perturbs *when* scheduled wakes actually land —
//!   block timeline (the default, exactly today's semantics), fixed
//!   duty cycle, seeded heavy-tailed slip, or a per-node adversarial
//!   phase shift. Like [`FaultPlan`](crate::FaultPlan), every decision
//!   is a pure stateless function of `(seed, tag, node, round)` through
//!   a SplitMix64-style finalizer, so all three time drivers and the
//!   naive oracle reach identical schedules with no shared RNG cursor.
//!
//! All charging happens inside the one generic `run_kernel`, as
//! order-independent `u64` sums — the per-node ledger is bit-identical
//! across {sync, calendar, naive} × every shard count (the energy
//! differential and conservation suites pin this). The ledger satisfies
//! the conservation identity
//!
//! ```text
//! sum(energy_spent_by_node) ==
//!     awake_total * round_cost
//!   + bits_sent  * tx_bit_cost
//!   + bits_received * rx_bit_cost
//!   + idle_listen_rounds * idle_cost
//! ```
//!
//! which `tests/energy_conservation.rs` reconciles against both
//! [`RunStats`](crate::RunStats) and the metrics timelines.
//!
//! A model whose every cost is zero is *inert* ([`EnergyModel::is_inert`]):
//! the executors take the exact no-energy path for it, and a run under an
//! inert model is bit-identical to a run with no model at all (mirroring
//! the inert-`FaultPlan` contract). A budget without costs can never be
//! spent, so it does not defeat inertness.

use crate::Round;

// Stream tags for the wake-policy decision streams — arbitrary distinct
// odd constants, disjoint from the `FaultPlan` tags so an energy policy
// can never correlate with a fault decision drawn from the same seed.
const TAG_HEAVY_TAIL: u64 = 0x7c15_9e37_b97f_4a21;
const TAG_PHASE_SHIFT: u64 = 0x3d91_c6e5_0b7a_8f43;

/// SplitMix64-style stateless mixer: one draw per `(tag, a, b)` key.
/// The same construction as the fault plane's decision function —
/// order-independent by design, so every driver reaches every verdict.
fn decide(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xff51_afd7_ed55_8ccd))
        .wrapping_add(b.wrapping_mul(0xc4ce_b9fe_1a85_ec53));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An integer energy cost model, in nano-joules.
///
/// Plain data: construct it literally, through the builders, or with
/// [`EnergyModel::parse`] (the CLI's `--energy-model` grammar). Costs are
/// integers so the model — and therefore
/// [`SimConfig`](crate::SimConfig) — stays `Eq` and hashable, and so a
/// ledger serialized into a report replays exactly (no float
/// round-tripping; the conformance `determinism` lint family enforces
/// this repo-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EnergyModel {
    /// Nano-joules charged to every node for every round it is awake.
    pub round_cost: u64,
    /// Nano-joules per transmitted payload bit, charged to the sender at
    /// routing time — lost and fault-dropped messages still cost the
    /// sender (it transmitted either way).
    pub tx_bit_cost: u64,
    /// Nano-joules per received payload bit, charged per delivered copy
    /// (an injected duplicate is paid for twice, matching
    /// `bits_received_by_node`).
    pub rx_bit_cost: u64,
    /// Nano-joules charged to an awake node whose round delivers nothing
    /// (idle listening).
    pub idle_cost: u64,
    /// Per-node budget in nano-joules. A node whose ledger *exceeds* the
    /// budget at the end of a round falls asleep permanently and the run
    /// reports [`SimError::EnergyExhausted`](crate::SimError). `None` =
    /// unlimited (pure accounting).
    pub budget: Option<u64>,
}

impl EnergyModel {
    /// The reference pricing used by the chaos matrix, the Table-1 report
    /// energy column, and the bench energy panel: round-dominant with
    /// visible per-bit terms, no budget (accounting only — outcomes are
    /// unchanged).
    #[must_use]
    pub fn reference() -> Self {
        EnergyModel {
            round_cost: 1000,
            tx_bit_cost: 8,
            rx_bit_cost: 4,
            idle_cost: 50,
            budget: None,
        }
    }

    /// The radio-model pricing of Chang et al. as previously hard-coded
    /// in [`crate::radio`]: one unit per transmitting/listening round,
    /// idle rounds free. Kept here so the radio executor and the CONGEST
    /// kernel share exactly one charging vocabulary.
    #[must_use]
    pub fn radio_default() -> Self {
        EnergyModel {
            round_cost: 1,
            tx_bit_cost: 0,
            rx_bit_cost: 0,
            idle_cost: 0,
            budget: None,
        }
    }

    /// Returns the model with a per-node budget.
    #[must_use]
    pub fn with_budget(mut self, nano_joules: u64) -> Self {
        self.budget = Some(nano_joules);
        self
    }

    /// Returns the model with a per-awake-round cost.
    #[must_use]
    pub fn with_round_cost(mut self, nano_joules: u64) -> Self {
        self.round_cost = nano_joules;
        self
    }

    /// Returns the model with a per-transmitted-bit cost.
    #[must_use]
    pub fn with_tx_bit_cost(mut self, nano_joules: u64) -> Self {
        self.tx_bit_cost = nano_joules;
        self
    }

    /// Returns the model with a per-received-bit cost.
    #[must_use]
    pub fn with_rx_bit_cost(mut self, nano_joules: u64) -> Self {
        self.rx_bit_cost = nano_joules;
        self
    }

    /// Returns the model with an idle-listen cost.
    #[must_use]
    pub fn with_idle_cost(mut self, nano_joules: u64) -> Self {
        self.idle_cost = nano_joules;
        self
    }

    /// `true` when the model cannot affect a run: every cost zero. The
    /// executors take the exact no-energy path for inert models, so a
    /// run under one is bit-identical to a run with no model at all. A
    /// budget alone does not defeat inertness — with zero costs nothing
    /// is ever spent, so it can never exhaust.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.round_cost == 0
            && self.tx_bit_cost == 0
            && self.rx_bit_cost == 0
            && self.idle_cost == 0
    }

    /// The canonical spec string: `round:R,tx:T,rx:X,idle:I` plus
    /// `,budget:B` when a budget is set. [`EnergyModel::parse`] accepts
    /// it back verbatim, and the serve cache key embeds it, so the
    /// rendering is frozen.
    #[must_use]
    pub fn spec_string(&self) -> String {
        let mut s = format!(
            "round:{},tx:{},rx:{},idle:{}",
            self.round_cost, self.tx_bit_cost, self.rx_bit_cost, self.idle_cost
        );
        if let Some(b) = self.budget {
            s.push_str(&format!(",budget:{b}"));
        }
        s
    }

    /// Parses an energy-model spec: the preset name `reference` (or
    /// `radio`), or a comma-separated `key:value` list over the keys
    /// `round`, `tx`, `rx`, `idle`, `budget` (unmentioned costs default
    /// to zero). The grammar of the CLI's `--energy-model` flag and the
    /// serve request's `"energy"` field.
    pub fn parse(s: &str) -> Option<EnergyModel> {
        match s {
            "reference" => return Some(EnergyModel::reference()),
            "radio" => return Some(EnergyModel::radio_default()),
            _ => {}
        }
        let mut model = EnergyModel::default();
        for part in s.split(',') {
            let (key, value) = part.split_once(':')?;
            let value: u64 = value.parse().ok()?;
            match key {
                "round" => model.round_cost = value,
                "tx" => model.tx_bit_cost = value,
                "rx" => model.rx_bit_cost = value,
                "idle" => model.idle_cost = value,
                "budget" => model.budget = Some(value),
                _ => return None,
            }
        }
        Some(model)
    }
}

/// When scheduled wakes actually land.
///
/// A policy transforms every requested wake round (after fault jitter,
/// before the driver sees it) into the round the node really wakes in —
/// always **at or after** the requested round, so the executors'
/// wake-in-the-future invariant is preserved. Decisions are stateless
/// SplitMix64 draws like [`FaultPlan`](crate::FaultPlan) decisions, so
/// every time driver and the naive oracle agree bit for bit
/// (`crates/netsim/tests/differential.rs` pins every variant).
///
/// Policies deliberately break protocol rendezvous assumptions: under a
/// non-identity policy a sender and its receiver may no longer meet in
/// the same round, so runs can end in typed, deterministic failures
/// (`Stalled`, watchdog `MaxRoundsExceeded`) — that is the point of
/// testing under them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakePolicy {
    /// The block timeline: wakes land exactly when requested (today's
    /// semantics; the identity policy).
    #[default]
    Block,
    /// Fixed duty cycle: nodes can only wake in rounds `r` with
    /// `(r - 1) % period == 0` (rounds 1, 1+period, 1+2·period, …); a
    /// requested wake snaps *up* to the next on-cycle round. `period <=
    /// 1` is the identity.
    DutyCycle {
        /// The cycle length in rounds.
        period: u64,
    },
    /// Seeded heavy-tailed slip: each `(node, requested)` pair draws a
    /// geometric extra delay (the trailing ones of a SplitMix64 draw),
    /// capped at `cap`. `cap == 0` is the identity.
    HeavyTail {
        /// Seed of the slip decision stream.
        seed: u64,
        /// Largest slip, in rounds.
        cap: u64,
    },
    /// Adversarial phase shift: every node is displaced by a constant
    /// per-node offset in `0..=max_shift`, desynchronizing nodes that
    /// planned to meet. `max_shift == 0` is the identity.
    AdversarialShift {
        /// Seed of the per-node offset draw.
        seed: u64,
        /// Largest per-node offset, in rounds.
        max_shift: u64,
    },
}

impl WakePolicy {
    /// `true` when the policy cannot move any wake; the executors take
    /// the exact no-policy path for identity policies (mirroring inert
    /// fault plans and inert energy models).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        match *self {
            WakePolicy::Block => true,
            WakePolicy::DutyCycle { period } => period <= 1,
            WakePolicy::HeavyTail { cap, .. } => cap == 0,
            WakePolicy::AdversarialShift { max_shift, .. } => max_shift == 0,
        }
    }

    /// The round `node` actually wakes in when it requested `requested`.
    /// Always `>= requested`; saturating, never past `Round::MAX`.
    #[inline]
    #[must_use]
    pub fn applied(&self, node: u32, requested: Round) -> Round {
        match *self {
            WakePolicy::Block => requested,
            WakePolicy::DutyCycle { period } => {
                if period <= 1 {
                    return requested;
                }
                let rem = (requested - 1) % period;
                if rem == 0 {
                    requested
                } else {
                    requested.saturating_add(period - rem)
                }
            }
            WakePolicy::HeavyTail { seed, cap } => {
                if cap == 0 {
                    return requested;
                }
                let draw = decide(seed, TAG_HEAVY_TAIL, u64::from(node), requested);
                let extra = u64::from(draw.trailing_ones()).min(cap);
                requested.saturating_add(extra)
            }
            WakePolicy::AdversarialShift { seed, max_shift } => {
                if max_shift == 0 {
                    return requested;
                }
                let extra = decide(seed, TAG_PHASE_SHIFT, u64::from(node), 0) % (max_shift + 1);
                requested.saturating_add(extra)
            }
        }
    }

    /// The stable spec string: `block`, `duty:P`, `heavytail:SEED:CAP`,
    /// or `shift:SEED:MAX` — what [`WakePolicy::parse`] accepts back.
    #[must_use]
    pub fn spec_string(&self) -> String {
        match *self {
            WakePolicy::Block => "block".to_string(),
            WakePolicy::DutyCycle { period } => format!("duty:{period}"),
            WakePolicy::HeavyTail { seed, cap } => format!("heavytail:{seed}:{cap}"),
            WakePolicy::AdversarialShift { seed, max_shift } => format!("shift:{seed}:{max_shift}"),
        }
    }

    /// Parses a wake-policy spec (the CLI's `--wake-policy` grammar):
    /// `block`, `duty:P`, `heavytail:SEED:CAP`, `shift:SEED:MAX`.
    pub fn parse(s: &str) -> Option<WakePolicy> {
        if s == "block" {
            return Some(WakePolicy::Block);
        }
        let mut parts = s.split(':');
        let kind = parts.next()?;
        let policy = match kind {
            "duty" => WakePolicy::DutyCycle {
                period: parts.next()?.parse().ok()?,
            },
            "heavytail" => WakePolicy::HeavyTail {
                seed: parts.next()?.parse().ok()?,
                cap: parts.next()?.parse().ok()?,
            },
            "shift" => WakePolicy::AdversarialShift {
                seed: parts.next()?.parse().ok()?,
                max_shift: parts.next()?.parse().ok()?,
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_inert_and_budget_alone_stays_inert() {
        assert!(EnergyModel::default().is_inert());
        // A budget with zero costs can never be spent: still inert.
        assert!(EnergyModel::default().with_budget(5).is_inert());
        // Each single cost alone defeats inertness.
        assert!(!EnergyModel::default().with_round_cost(1).is_inert());
        assert!(!EnergyModel::default().with_tx_bit_cost(1).is_inert());
        assert!(!EnergyModel::default().with_rx_bit_cost(1).is_inert());
        assert!(!EnergyModel::default().with_idle_cost(1).is_inert());
        assert!(!EnergyModel::reference().is_inert());
        assert!(!EnergyModel::radio_default().is_inert());
    }

    #[test]
    fn model_spec_strings_round_trip() {
        for model in [
            EnergyModel::reference(),
            EnergyModel::radio_default(),
            EnergyModel::reference().with_budget(123_456),
            EnergyModel::default().with_idle_cost(9),
        ] {
            assert_eq!(EnergyModel::parse(&model.spec_string()), Some(model));
        }
        assert_eq!(
            EnergyModel::parse("reference"),
            Some(EnergyModel::reference())
        );
        assert_eq!(
            EnergyModel::parse("radio"),
            Some(EnergyModel::radio_default())
        );
        assert_eq!(
            EnergyModel::parse("round:2,budget:10"),
            Some(EnergyModel::default().with_round_cost(2).with_budget(10))
        );
        assert_eq!(EnergyModel::parse("watts:3"), None);
        assert_eq!(EnergyModel::parse("round:x"), None);
        assert_eq!(EnergyModel::parse(""), None);
    }

    #[test]
    fn block_policy_is_the_identity() {
        let p = WakePolicy::Block;
        assert!(p.is_identity());
        for node in 0..8 {
            for r in 1..100 {
                assert_eq!(p.applied(node, r), r);
            }
        }
        assert_eq!(WakePolicy::default(), WakePolicy::Block);
    }

    #[test]
    fn degenerate_policies_are_identities() {
        for p in [
            WakePolicy::DutyCycle { period: 0 },
            WakePolicy::DutyCycle { period: 1 },
            WakePolicy::HeavyTail { seed: 3, cap: 0 },
            WakePolicy::AdversarialShift {
                seed: 3,
                max_shift: 0,
            },
        ] {
            assert!(p.is_identity(), "{p:?}");
            for r in 1..50 {
                assert_eq!(p.applied(1, r), r, "{p:?}");
            }
        }
    }

    #[test]
    fn duty_cycle_snaps_up_to_the_grid() {
        let p = WakePolicy::DutyCycle { period: 5 };
        assert!(!p.is_identity());
        // On-cycle rounds (1, 6, 11, …) stay; everything else snaps up.
        assert_eq!(p.applied(0, 1), 1);
        assert_eq!(p.applied(0, 2), 6);
        assert_eq!(p.applied(0, 5), 6);
        assert_eq!(p.applied(0, 6), 6);
        assert_eq!(p.applied(0, 7), 11);
        for node in 0..8 {
            for r in 1..200 {
                let a = p.applied(node, r);
                assert!(a >= r);
                assert_eq!((a - 1) % 5, 0, "off-grid wake {a} for request {r}");
                assert!(a - r < 5, "snapped past the next grid point");
            }
        }
    }

    #[test]
    fn heavy_tail_is_bounded_deterministic_and_covers_the_range() {
        let p = WakePolicy::HeavyTail { seed: 9, cap: 4 };
        let q = WakePolicy::HeavyTail { seed: 9, cap: 4 };
        let other = WakePolicy::HeavyTail { seed: 10, cap: 4 };
        let mut seen = [false; 5];
        let mut diverged = false;
        for node in 0..64u32 {
            for r in 1..64u64 {
                let a = p.applied(node, r);
                assert_eq!(a, q.applied(node, r), "same seed must agree");
                assert!(a >= r && a - r <= 4);
                seen[(a - r) as usize] = true;
                if a != other.applied(node, r) {
                    diverged = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some slip value never drawn");
        assert!(diverged, "different seeds never diverged");
    }

    #[test]
    fn adversarial_shift_is_constant_per_node() {
        let p = WakePolicy::AdversarialShift {
            seed: 5,
            max_shift: 7,
        };
        let mut offsets = std::collections::BTreeSet::new();
        for node in 0..32u32 {
            let off = p.applied(node, 1) - 1;
            assert!(off <= 7);
            offsets.insert(off);
            for r in 1..100 {
                assert_eq!(p.applied(node, r) - r, off, "offset must not vary by round");
            }
        }
        assert!(offsets.len() > 1, "all nodes drew the same offset");
    }

    #[test]
    fn policy_spec_strings_round_trip() {
        for p in [
            WakePolicy::Block,
            WakePolicy::DutyCycle { period: 4 },
            WakePolicy::HeavyTail { seed: 7, cap: 3 },
            WakePolicy::AdversarialShift {
                seed: 2,
                max_shift: 9,
            },
        ] {
            assert_eq!(WakePolicy::parse(&p.spec_string()), Some(p));
        }
        assert_eq!(WakePolicy::parse("warp:3"), None);
        assert_eq!(WakePolicy::parse("duty"), None);
        assert_eq!(WakePolicy::parse("duty:2:3"), None);
        assert_eq!(WakePolicy::parse("heavytail:1"), None);
    }
}
