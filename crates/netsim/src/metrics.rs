//! The observability plane: per-round telemetry and phase spans.
//!
//! When [`SimConfig::record_metrics`](crate::SimConfig::record_metrics) is
//! set, both executors record one [`RoundReport`] per *active* round (a
//! round in which at least one node is awake after fault adjudication)
//! plus the exact awake timeline of every node. The stream is strictly
//! conservative with respect to [`RunStats`](crate::RunStats): summing any
//! per-round column reproduces the end-of-run aggregate, and the awake
//! timelines reproduce `awake_by_node` (the metrics-conservation proptests
//! pin this under both executors).
//!
//! On top of the raw stream, [`Metrics::phase_spans`] folds rounds into
//! [`PhaseSpan`]s under a caller-supplied labeling of rounds — the
//! registry algorithms expose their block structure (LDT build, fragment
//! merge, broadcast, …) as such labelers, which is what turns a run into
//! the per-phase awake breakdown of the paper's Table 1.
//!
//! Recording is off by default and the recorder is an `Option` on the
//! executor: with metrics disabled the hot path pays one untaken branch
//! per event, and execution is bit-identical to the no-metrics build (the
//! off-switch equivalence tests pin the fingerprints).

use crate::Round;

/// Telemetry of one active round.
///
/// `messages_sent` counts envelopes accepted by routing; every sent
/// message is then adjudicated as delivered, lost (receiver asleep), or
/// dropped (injected fault), and an injected duplication delivers one
/// extra copy, so per round:
///
/// ```text
/// messages_sent + dup_deliveries == messages_delivered + messages_lost + injected_drops
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// The simulated round number (rounds start at 1).
    pub round: Round,
    /// Nodes awake this round (after fault adjudication).
    pub awake: u64,
    /// Envelopes accepted by routing this round.
    pub messages_sent: u64,
    /// Copies handed to awake receivers (duplicated copies included).
    pub messages_delivered: u64,
    /// Messages lost to sleeping receivers per the model.
    pub messages_lost: u64,
    /// Messages destroyed in flight by the fault plan.
    pub injected_drops: u64,
    /// Extra copies delivered by the fault plan.
    pub dup_deliveries: u64,
    /// Total payload bits sent this round.
    pub bits_sent: u64,
    /// Largest per-edge bit load of this round (max over edges of the
    /// bits routed across that edge in this round) — the round's CONGEST
    /// congestion.
    pub max_edge_bits: u64,
    /// Nano-joules charged this round under the configured
    /// [`EnergyModel`](crate::EnergyModel) (round + tx + rx + idle terms;
    /// 0 without an active model). Summing the column reproduces
    /// `RunStats::energy_total()` — the energy-conservation proptests
    /// pin this.
    pub energy_spent: u64,
}

/// One maximal run of consecutive active rounds sharing a phase label.
///
/// Produced by [`Metrics::phase_spans`]; spans are chronological and a
/// label reappears as a new span every time the algorithm re-enters that
/// phase (e.g. once per Boruvka phase of Merging-Fragments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The label the round labeler assigned to every round of the span.
    pub label: &'static str,
    /// First active round of the span.
    pub first_round: Round,
    /// Last active round of the span.
    pub last_round: Round,
    /// Active rounds inside the span (silent rounds are not recorded, so
    /// this can be smaller than `last_round - first_round + 1`).
    pub active_rounds: u64,
    /// Sum over the span's rounds of the awake-node count — the awake
    /// effort the phase cost, in node-rounds.
    pub awake_node_rounds: u64,
    /// Envelopes sent during the span.
    pub messages_sent: u64,
    /// Payload bits sent during the span.
    pub bits_sent: u64,
}

/// Whole-run totals for one phase label, aggregated over every span that
/// carried it. Produced by [`Metrics::phase_totals`]; labels appear in
/// order of first occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotals {
    /// The phase label.
    pub label: &'static str,
    /// Number of [`PhaseSpan`]s with this label.
    pub spans: u64,
    /// Total active rounds across those spans.
    pub active_rounds: u64,
    /// Total awake node-rounds across those spans.
    pub awake_node_rounds: u64,
    /// Total envelopes sent across those spans.
    pub messages_sent: u64,
    /// Total payload bits sent across those spans.
    pub bits_sent: u64,
}

/// Everything the observability plane records for one run.
///
/// Empty (no rounds, no timelines) unless the run was configured with
/// [`SimConfig::record_metrics`](crate::SimConfig::record_metrics).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    /// One report per active round, in round order.
    pub per_round: Vec<RoundReport>,
    /// For each node, the exact ascending list of rounds it was awake in.
    /// `awake_rounds_by_node[v].len()` equals `RunStats::awake_by_node[v]`.
    pub awake_rounds_by_node: Vec<Vec<Round>>,
}

impl Metrics {
    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_round.is_empty() && self.awake_rounds_by_node.is_empty()
    }

    /// Number of active rounds.
    #[must_use]
    pub fn active_rounds(&self) -> u64 {
        self.per_round.len() as u64
    }

    /// The last active round, or 0 for an empty run. Fault-free this
    /// equals `RunStats::rounds`; a crash fault can strand a stale
    /// trailing round with nobody awake, making `RunStats::rounds`
    /// strictly larger (pinned in `tests/model_conformance.rs`).
    #[must_use]
    pub fn last_round(&self) -> Round {
        self.per_round.last().map_or(0, |r| r.round)
    }

    /// The measured awake complexity: max over nodes of awake rounds.
    #[must_use]
    pub fn awake_complexity(&self) -> u64 {
        self.awake_rounds_by_node
            .iter()
            .map(|t| t.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Total node-awake events (sum of timeline lengths).
    #[must_use]
    pub fn awake_total(&self) -> u64 {
        self.awake_rounds_by_node
            .iter()
            .map(|t| t.len() as u64)
            .sum()
    }

    /// Total envelopes sent.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.per_round.iter().map(|r| r.messages_sent).sum()
    }

    /// Total copies delivered.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.per_round.iter().map(|r| r.messages_delivered).sum()
    }

    /// Total messages lost to sleeping receivers.
    #[must_use]
    pub fn messages_lost(&self) -> u64 {
        self.per_round.iter().map(|r| r.messages_lost).sum()
    }

    /// Total payload bits sent.
    #[must_use]
    pub fn bits_sent(&self) -> u64 {
        self.per_round.iter().map(|r| r.bits_sent).sum()
    }

    /// Total nano-joules charged across all recorded rounds (0 without
    /// an active energy model).
    #[must_use]
    pub fn energy_spent(&self) -> u64 {
        self.per_round.iter().map(|r| r.energy_spent).sum()
    }

    /// Largest single-round per-edge congestion of the run.
    #[must_use]
    pub fn max_round_edge_bits(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.max_edge_bits)
            .max()
            .unwrap_or(0)
    }

    /// Folds the round stream into chronological [`PhaseSpan`]s under
    /// `labeler` (round number → phase label). Consecutive active rounds
    /// with equal labels merge into one span.
    pub fn phase_spans(&self, mut labeler: impl FnMut(Round) -> &'static str) -> Vec<PhaseSpan> {
        let mut spans: Vec<PhaseSpan> = Vec::new();
        for report in &self.per_round {
            let label = labeler(report.round);
            match spans.last_mut() {
                Some(span) if span.label == label => {
                    span.last_round = report.round;
                    span.active_rounds += 1;
                    span.awake_node_rounds += report.awake;
                    span.messages_sent += report.messages_sent;
                    span.bits_sent += report.bits_sent;
                }
                _ => spans.push(PhaseSpan {
                    label,
                    first_round: report.round,
                    last_round: report.round,
                    active_rounds: 1,
                    awake_node_rounds: report.awake,
                    messages_sent: report.messages_sent,
                    bits_sent: report.bits_sent,
                }),
            }
        }
        spans
    }

    /// Whole-run [`PhaseTotals`] per label, in order of first occurrence.
    /// (Label sets are small — a linear scan keeps this free of hashed
    /// containers and hence deterministic by construction.)
    pub fn phase_totals(&self, labeler: impl FnMut(Round) -> &'static str) -> Vec<PhaseTotals> {
        let mut totals: Vec<PhaseTotals> = Vec::new();
        for span in self.phase_spans(labeler) {
            let entry = match totals.iter_mut().find(|t| t.label == span.label) {
                Some(entry) => entry,
                None => {
                    totals.push(PhaseTotals {
                        label: span.label,
                        spans: 0,
                        active_rounds: 0,
                        awake_node_rounds: 0,
                        messages_sent: 0,
                        bits_sent: 0,
                    });
                    totals
                        .last_mut()
                        .expect("just pushed a totals entry for this label")
                }
            };
            entry.spans += 1;
            entry.active_rounds += span.active_rounds;
            entry.awake_node_rounds += span.awake_node_rounds;
            entry.messages_sent += span.messages_sent;
            entry.bits_sent += span.bits_sent;
        }
        totals
    }
}

/// The executors' recording half: accumulates the current round's report
/// and owns an `O(m)` per-edge bit scratch reset in `O(touched edges)`
/// per round. Crate-private — protocols never see it; the public surface
/// is [`Metrics`].
#[derive(Debug)]
pub(crate) struct MetricsRecorder {
    per_round: Vec<RoundReport>,
    awake_rounds_by_node: Vec<Vec<Round>>,
    current: RoundReport,
    /// Bits routed per edge in the current round; nonzero only at indices
    /// listed in `touched`.
    edge_bits: Vec<u64>,
    touched: Vec<u32>,
}

impl MetricsRecorder {
    pub(crate) fn new(n: usize, m: usize) -> Self {
        MetricsRecorder {
            per_round: Vec::new(),
            awake_rounds_by_node: vec![Vec::new(); n],
            current: RoundReport::default(),
            edge_bits: vec![0; m],
            touched: Vec::new(),
        }
    }

    /// Opens a round with the post-adjudication awake set.
    pub(crate) fn start_round(&mut self, round: Round, live: &[u32]) {
        self.current = RoundReport {
            round,
            awake: live.len() as u64,
            ..RoundReport::default()
        };
        for &v in live {
            self.awake_rounds_by_node[v as usize].push(round);
        }
    }

    #[inline]
    pub(crate) fn on_send(&mut self, edge: usize, bits: usize) {
        self.current.messages_sent += 1;
        self.current.bits_sent += bits as u64;
        if self.edge_bits[edge] == 0 {
            self.touched.push(edge as u32);
        }
        self.edge_bits[edge] += bits as u64;
    }

    #[inline]
    pub(crate) fn on_delivered(&mut self) {
        self.current.messages_delivered += 1;
    }

    #[inline]
    pub(crate) fn on_dup_delivered(&mut self) {
        self.current.messages_delivered += 1;
        self.current.dup_deliveries += 1;
    }

    #[inline]
    pub(crate) fn on_lost(&mut self) {
        self.current.messages_lost += 1;
    }

    #[inline]
    pub(crate) fn on_dropped(&mut self) {
        self.current.injected_drops += 1;
    }

    /// Records the round's total energy charge (called at most once per
    /// round, just before [`MetricsRecorder::finish_round`]).
    #[inline]
    pub(crate) fn set_energy(&mut self, nano_joules: u64) {
        self.current.energy_spent = nano_joules;
    }

    /// Closes the round: resolves the round's max per-edge congestion,
    /// resets the touched scratch, and appends the report.
    pub(crate) fn finish_round(&mut self) {
        let mut max_edge = 0u64;
        for &e in &self.touched {
            let bits = self.edge_bits[e as usize];
            max_edge = max_edge.max(bits);
            self.edge_bits[e as usize] = 0;
        }
        self.touched.clear();
        self.current.max_edge_bits = max_edge;
        self.per_round.push(self.current);
    }

    pub(crate) fn into_metrics(self) -> Metrics {
        Metrics {
            per_round: self.per_round,
            awake_rounds_by_node: self.awake_rounds_by_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(round: Round, awake: u64, sent: u64, bits: u64) -> RoundReport {
        RoundReport {
            round,
            awake,
            messages_sent: sent,
            messages_delivered: sent,
            bits_sent: bits,
            ..RoundReport::default()
        }
    }

    #[test]
    fn empty_metrics_have_zero_everything() {
        let m = Metrics::default();
        assert!(m.is_empty());
        assert_eq!(m.active_rounds(), 0);
        assert_eq!(m.last_round(), 0);
        assert_eq!(m.awake_complexity(), 0);
        assert_eq!(m.max_round_edge_bits(), 0);
        assert!(m.phase_spans(|_| "x").is_empty());
        assert!(m.phase_totals(|_| "x").is_empty());
    }

    #[test]
    fn recorder_tracks_rounds_and_congestion() {
        let mut rec = MetricsRecorder::new(3, 2);
        rec.start_round(4, &[0, 2]);
        rec.on_send(0, 5);
        rec.on_send(0, 5);
        rec.on_send(1, 3);
        rec.on_delivered();
        rec.on_delivered();
        rec.on_lost();
        rec.finish_round();
        rec.start_round(9, &[2]);
        rec.on_send(1, 7);
        rec.on_delivered();
        rec.on_dup_delivered();
        rec.set_energy(13);
        rec.finish_round();
        let m = rec.into_metrics();
        assert_eq!(m.active_rounds(), 2);
        assert_eq!(m.last_round(), 9);
        assert_eq!(m.per_round[0].max_edge_bits, 10, "edge 0 carried 5+5");
        assert_eq!(
            m.per_round[1].max_edge_bits, 7,
            "scratch reset between rounds"
        );
        assert_eq!(m.awake_rounds_by_node, vec![vec![4], vec![], vec![4, 9]]);
        assert_eq!(m.awake_complexity(), 2);
        assert_eq!(m.awake_total(), 3);
        assert_eq!(m.messages_sent(), 4);
        assert_eq!(m.messages_delivered(), 4);
        assert_eq!(m.messages_lost(), 1);
        assert_eq!(m.bits_sent(), 20);
        assert_eq!(m.per_round[1].dup_deliveries, 1);
        assert_eq!(m.per_round[0].energy_spent, 0);
        assert_eq!(m.energy_spent(), 13);
    }

    #[test]
    fn phase_spans_merge_consecutive_equal_labels() {
        let m = Metrics {
            per_round: vec![
                report(1, 2, 1, 8),
                report(2, 3, 0, 0),
                report(5, 1, 2, 16),
                report(6, 1, 0, 0),
                report(9, 4, 1, 8),
            ],
            awake_rounds_by_node: Vec::new(),
        };
        let spans = m.phase_spans(|r| {
            if (5..=6).contains(&r) {
                "merge"
            } else {
                "build"
            }
        });
        assert_eq!(spans.len(), 3);
        assert_eq!(
            (spans[0].label, spans[0].first_round, spans[0].last_round),
            ("build", 1, 2)
        );
        assert_eq!(spans[0].active_rounds, 2);
        assert_eq!(spans[0].awake_node_rounds, 5);
        assert_eq!(spans[0].messages_sent, 1);
        assert_eq!(
            (spans[1].label, spans[1].first_round, spans[1].last_round),
            ("merge", 5, 6)
        );
        assert_eq!(spans[1].bits_sent, 16);
        assert_eq!((spans[2].label, spans[2].first_round), ("build", 9));

        let totals = m.phase_totals(|r| {
            if (5..=6).contains(&r) {
                "merge"
            } else {
                "build"
            }
        });
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].label, "build");
        assert_eq!(totals[0].spans, 2);
        assert_eq!(totals[0].active_rounds, 3);
        assert_eq!(totals[0].awake_node_rounds, 9);
        assert_eq!(totals[1].label, "merge");
        assert_eq!(totals[1].spans, 1);
    }

    #[test]
    fn conservation_identity_holds_per_report() {
        let mut rec = MetricsRecorder::new(2, 1);
        rec.start_round(1, &[0, 1]);
        rec.on_send(0, 4);
        rec.on_dropped();
        rec.on_send(0, 4);
        rec.on_delivered();
        rec.on_dup_delivered();
        rec.on_send(0, 4);
        rec.on_lost();
        rec.finish_round();
        let m = rec.into_metrics();
        let r = &m.per_round[0];
        assert_eq!(
            r.messages_sent + r.dup_deliveries,
            r.messages_delivered + r.messages_lost + r.injected_drops
        );
    }
}
