//! Congestion measurements for Lemma 8's argument.
//!
//! Lemma 8 lower-bounds awake time through congestion: if `B` bits of an
//! execution must cross into the `O(log n)` internal tree nodes `I`, then
//! some node of `I` receives `Ω(B / log n)` bits, and a node that receives
//! `b` bits over constant-degree links with `O(log n)`-bit messages must
//! be awake `Ω(b / log n)` rounds. These helpers extract exactly those
//! quantities from a [`RunStats`].

use netsim::RunStats;

use crate::grc::Grc;

/// Traffic through the internal tree nodes `I` of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalTraffic {
    /// Total bits received by nodes of `I`.
    pub total_bits: u64,
    /// Bits received by the busiest node of `I`.
    pub max_bits: u64,
    /// Awake rounds of the busiest (most awake) node of `I`.
    pub max_awake: u64,
    /// `|I|`.
    pub node_count: usize,
}

/// Measures the `I`-node traffic of a run on `grc`.
///
/// # Panics
///
/// Panics if the stats were produced on a graph of a different size.
pub fn internal_traffic(grc: &Grc, stats: &RunStats) -> InternalTraffic {
    assert_eq!(
        stats.bits_received_by_node.len(),
        grc.n(),
        "stats do not match this G_rc instance"
    );
    let mut total_bits = 0;
    let mut max_bits = 0;
    let mut max_awake = 0;
    for &node in &grc.internal {
        let bits = stats.bits_received_by_node[node.index()];
        total_bits += bits;
        max_bits = max_bits.max(bits);
        max_awake = max_awake.max(stats.awake_by_node[node.index()]);
    }
    InternalTraffic {
        total_bits,
        max_bits,
        max_awake,
        node_count: grc.internal.len(),
    }
}

/// Lemma 8's chain made checkable on measured data: a node that received
/// `b` bits in messages of at most `msg_bits` bits over `degree` links
/// must have been awake at least `⌈b / (degree · msg_bits)⌉` rounds.
pub fn awake_floor_from_bits(bits: u64, degree: u64, msg_bits: u64) -> u64 {
    if degree == 0 || msg_bits == 0 {
        return 0;
    }
    bits.div_ceil(degree * msg_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::NodeId;

    #[test]
    fn awake_floor_rounds_up() {
        assert_eq!(awake_floor_from_bits(100, 3, 10), 4);
        assert_eq!(awake_floor_from_bits(90, 3, 10), 3);
        assert_eq!(awake_floor_from_bits(0, 3, 10), 0);
        assert_eq!(awake_floor_from_bits(100, 0, 10), 0);
    }

    #[test]
    fn internal_traffic_sums_only_internal_nodes() {
        let grc = Grc::build(3, 16, 1).unwrap();
        let mut stats = RunStats {
            bits_received_by_node: vec![0; grc.n()],
            awake_by_node: vec![0; grc.n()],
            ..Default::default()
        };
        // Give every node 5 bits and 2 awake rounds; internal nodes 50/7.
        for v in 0..grc.n() {
            stats.bits_received_by_node[v] = 5;
            stats.awake_by_node[v] = 2;
        }
        let i0: NodeId = grc.internal[0];
        stats.bits_received_by_node[i0.index()] = 50;
        stats.awake_by_node[i0.index()] = 7;
        let t = internal_traffic(&grc, &stats);
        assert_eq!(t.node_count, grc.internal.len());
        assert_eq!(t.max_bits, 50);
        assert_eq!(t.max_awake, 7);
        assert_eq!(t.total_bits, 50 + 5 * (grc.internal.len() as u64 - 1));
    }

    #[test]
    #[should_panic(expected = "do not match")]
    fn size_mismatch_panics() {
        let grc = Grc::build(3, 16, 1).unwrap();
        let stats = RunStats::default();
        internal_traffic(&grc, &stats);
    }
}
