//! The SD → DSD → CSS → MST reduction chain (Lemmas 8–10).
//!
//! * **SD → DSD**: an SD instance `(x, y)` becomes a *distributed* SD
//!   instance on `G_rc` by marking edges: every row-path edge and every
//!   tree edge is marked, and Alice's (Bob's) attachment edge to row `ℓ`
//!   is marked iff `x_ℓ = 0` (`y_ℓ = 0`). See [`mark_edges`].
//! * **DSD → CSS**: the marked subgraph is a connected spanning subgraph
//!   of `G_rc` iff the sets are disjoint ([`css_spanning_connected`] and
//!   the equivalence tests below).
//! * **CSS → MST**: re-weight the graph so every marked edge is lighter
//!   than every unmarked edge ([`css_to_mst`]); then the MST uses an
//!   unmarked edge iff the marked subgraph was not spanning-connected
//!   ([`mst_uses_unmarked`]).

use graphlib::{mst, EdgeId, GraphBuilder, WeightedGraph};

use crate::grc::{EdgeClass, Grc};
use crate::sd::SdInstance;

/// Marks `G_rc`'s edges for the DSD instance encoding `sd`.
///
/// Returns one flag per [`EdgeId`].
///
/// # Panics
///
/// Panics if `sd.len() != grc.sd_bits()` (one bit per row `2..=r`).
pub fn mark_edges(grc: &Grc, sd: &SdInstance) -> Vec<bool> {
    assert_eq!(
        sd.len(),
        grc.sd_bits(),
        "SD instance must have one bit per non-player row"
    );
    grc.classes
        .iter()
        .map(|class| match *class {
            EdgeClass::Path { .. } | EdgeClass::Tree => true,
            EdgeClass::Spoke => false,
            // Row `row` (1-based inside the classes, rows 1..r) is bit
            // `row - 1` of the SD strings.
            EdgeClass::AliceAttach { row } => !sd.x[row - 1],
            EdgeClass::BobAttach { row } => !sd.y[row - 1],
        })
        .collect()
}

/// Sequential CSS oracle: do the marked edges form a connected spanning
/// subgraph of `graph`?
pub fn css_spanning_connected(graph: &WeightedGraph, marked: &[bool]) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return true;
    }
    let mut uf = graphlib::UnionFind::new(n);
    for (i, e) in graph.edges().iter().enumerate() {
        if marked[i] {
            uf.union(e.u.index(), e.v.index());
        }
    }
    uf.set_count() == 1
}

/// The CSS → MST re-weighting: marked edges get weights `1..=k` (in edge
/// order), unmarked edges get weights above every marked one. The graph
/// topology is unchanged, so [`EdgeId`]s carry over.
pub fn css_to_mst(graph: &WeightedGraph, marked: &[bool]) -> WeightedGraph {
    let m = graph.edge_count() as u64;
    let mut b = GraphBuilder::new(graph.node_count());
    let mut next_marked = 1u64;
    let mut next_unmarked = m + 1;
    for (i, e) in graph.edges().iter().enumerate() {
        let w = if marked[i] {
            let w = next_marked;
            next_marked += 1;
            w
        } else {
            let w = next_unmarked;
            next_unmarked += 1;
            w
        };
        b.edge(e.u.raw(), e.v.raw(), w);
    }
    b.build().expect("re-weighting preserves validity")
}

/// Does an MST edge set use any unmarked edge? By the cut property this is
/// equivalent to the marked subgraph *not* being spanning-connected — the
/// final link of the reduction.
pub fn mst_uses_unmarked(marked: &[bool], mst_edges: &[EdgeId]) -> bool {
    mst_edges.iter().any(|e| !marked[e.index()])
}

/// End-to-end sequential check of the whole chain: encode `sd` on `grc`,
/// re-weight, compute the MST, and decode the SD answer from it.
pub fn decide_sd_via_mst(grc: &Grc, sd: &SdInstance) -> bool {
    let marked = mark_edges(grc, sd);
    let weighted = css_to_mst(&grc.graph, &marked);
    let tree = mst::kruskal(&weighted);
    !mst_uses_unmarked(&marked, &tree.edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grc() -> Grc {
        Grc::build(5, 16, 3).unwrap()
    }

    #[test]
    fn marking_respects_classes() {
        let g = grc();
        let sd = SdInstance::new(
            vec![true, false, true, false],
            vec![false, true, false, true],
        );
        let marked = mark_edges(&g, &sd);
        for (i, class) in g.classes.iter().enumerate() {
            match *class {
                EdgeClass::Path { .. } | EdgeClass::Tree => assert!(marked[i]),
                EdgeClass::Spoke => assert!(!marked[i]),
                EdgeClass::AliceAttach { row } => assert_eq!(marked[i], !sd.x[row - 1]),
                EdgeClass::BobAttach { row } => assert_eq!(marked[i], !sd.y[row - 1]),
            }
        }
    }

    #[test]
    #[should_panic(expected = "one bit per")]
    fn wrong_length_panics() {
        mark_edges(&grc(), &SdInstance::new(vec![true], vec![false]));
    }

    #[test]
    fn css_connected_iff_disjoint() {
        let g = grc();
        for seed in 0..30 {
            let sd = SdInstance::random(g.sd_bits(), seed);
            let marked = mark_edges(&g, &sd);
            assert_eq!(
                css_spanning_connected(&g.graph, &marked),
                sd.disjoint(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mst_decodes_sd() {
        let g = grc();
        for seed in 0..15 {
            let sd = SdInstance::random(g.sd_bits(), seed);
            assert_eq!(decide_sd_via_mst(&g, &sd), sd.disjoint(), "seed {seed}");
        }
        assert!(decide_sd_via_mst(
            &g,
            &SdInstance::random_disjoint(g.sd_bits(), 1)
        ));
        assert!(!decide_sd_via_mst(
            &g,
            &SdInstance::random_intersecting(g.sd_bits(), 1)
        ));
    }

    #[test]
    fn css_to_mst_orders_marked_below_unmarked() {
        let g = grc();
        let sd = SdInstance::random(g.sd_bits(), 4);
        let marked = mark_edges(&g, &sd);
        let w = css_to_mst(&g.graph, &marked);
        let max_marked = w
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| marked[*i])
            .map(|(_, e)| e.weight)
            .max()
            .unwrap();
        let min_unmarked = w
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| !marked[*i])
            .map(|(_, e)| e.weight)
            .min()
            .unwrap();
        assert!(max_marked < min_unmarked);
        assert_eq!(w.edge_count(), g.graph.edge_count());
    }

    #[test]
    fn empty_graph_css_is_vacuously_connected() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(css_spanning_connected(&g, &[]));
    }
}
