//! The Theorem 3 ring family.
//!
//! Theorem 3 considers a ring with i.i.d. random edge weights and argues
//! that, with constant probability, the two heaviest edges are `Ω(n)` hops
//! apart; deciding which of them leaves the MST forces communication along
//! one of the two long arcs, and the information-dissemination argument
//! (Lemma 11) turns that into an `Ω(log n)` awake bound. The helpers here
//! expose exactly those structural quantities so the benches can verify
//! both the premise (separation is linear in `n` with the right
//! probability) and the conclusion's shape (measured awake complexity of
//! our algorithms divided by `log₂ n` stays flat).

use graphlib::{generators, EdgeId, GraphError, WeightedGraph};

/// Builds the Theorem 3 instance: a ring of `n` nodes with distinct random
/// weights from a `poly(n)` space.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n < 3`.
pub fn instance(n: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    generators::ring(n, seed)
}

/// The two heaviest edges of a graph, heaviest first.
///
/// # Panics
///
/// Panics if the graph has fewer than two edges.
pub fn two_heaviest(graph: &WeightedGraph) -> (EdgeId, EdgeId) {
    assert!(graph.edge_count() >= 2, "need at least two edges");
    let mut ids: Vec<EdgeId> = (0..graph.edge_count() as u32).map(EdgeId::new).collect();
    // lint:allow(determinism) -- edge weights are pairwise distinct (WeightedGraph invariant), keys never tie
    ids.sort_unstable_by_key(|&id| std::cmp::Reverse(graph.edge(id).weight));
    (ids[0], ids[1])
}

/// Hop separation of two edges on a ring: the smaller number of *edges*
/// strictly between them along either arc.
///
/// On a ring built by [`instance`], edge `i` joins nodes `i` and `i+1`,
/// so edges `i < j` are separated by `min(j - i, n - (j - i)) - 1`
/// intermediate edges.
pub fn ring_edge_separation(n: usize, a: EdgeId, b: EdgeId) -> usize {
    let (i, j) = (a.index().min(b.index()), a.index().max(b.index()));
    let around = (j - i).min(n - (j - i));
    around.saturating_sub(1)
}

/// One sample of Theorem 3's premise: the hop separation between the two
/// heaviest edges of a fresh random ring.
pub fn heaviest_separation_sample(n: usize, seed: u64) -> Result<usize, GraphError> {
    let g = instance(n, seed)?;
    let (a, b) = two_heaviest(&g);
    Ok(ring_edge_separation(n, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::GraphBuilder;

    #[test]
    fn two_heaviest_finds_the_top_pair() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 10)
            .edge(1, 2, 40)
            .edge(2, 3, 30)
            .edge(3, 0, 20)
            .build()
            .unwrap();
        let (a, b) = two_heaviest(&g);
        assert_eq!(g.edge(a).weight, 40);
        assert_eq!(g.edge(b).weight, 30);
    }

    #[test]
    fn separation_on_small_ring() {
        // Ring of 6: edges 0..5 around. Edges 0 and 1 are adjacent (0 apart);
        // edges 0 and 3 are opposite (2 apart either way).
        assert_eq!(ring_edge_separation(6, EdgeId::new(0), EdgeId::new(1)), 0);
        assert_eq!(ring_edge_separation(6, EdgeId::new(0), EdgeId::new(3)), 2);
        assert_eq!(ring_edge_separation(6, EdgeId::new(5), EdgeId::new(0)), 0);
    }

    #[test]
    fn separation_is_symmetric() {
        for (a, b) in [(0u32, 4u32), (2, 9), (1, 7)] {
            assert_eq!(
                ring_edge_separation(12, EdgeId::new(a), EdgeId::new(b)),
                ring_edge_separation(12, EdgeId::new(b), EdgeId::new(a))
            );
        }
    }

    #[test]
    fn linear_separation_happens_with_constant_probability() {
        // Theorem 3 needs separation ≥ Ω(n) with constant probability; over
        // many seeds at n = 64, at least a fifth of samples should exceed n/8.
        let n = 64;
        let trials = 200usize;
        let far = (0..trials as u64)
            .filter(|&s| heaviest_separation_sample(n, s).unwrap() >= n / 8)
            .count();
        assert!(
            far * 5 >= trials,
            "only {far}/{trials} samples were far apart"
        );
    }

    #[test]
    fn separation_bounded_by_half_ring() {
        for seed in 0..20 {
            let sep = heaviest_separation_sample(32, seed).unwrap();
            assert!(sep <= 16);
        }
    }
}
