//! Two-party set disjointness (SD) instances.
//!
//! Alice holds `x ∈ {0,1}^k`, Bob holds `y ∈ {0,1}^k`; they must decide
//! whether there is no index `i` with `x_i = y_i = 1` (output 1 iff
//! `⟨x, y⟩ = 0`). Randomized communication complexity is `Ω(k)` bits —
//! the root of the paper's conditional awake lower bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One SD instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdInstance {
    /// Alice's input.
    pub x: Vec<bool>,
    /// Bob's input.
    pub y: Vec<bool>,
}

impl SdInstance {
    /// Creates an instance from explicit bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), y.len(), "SD inputs must have equal length");
        SdInstance { x, y }
    }

    /// Number of bits `k`.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The SD answer: `true` iff the sets are disjoint (`⟨x, y⟩ = 0`).
    pub fn disjoint(&self) -> bool {
        !self.x.iter().zip(&self.y).any(|(&a, &b)| a && b)
    }

    /// A uniformly random instance (each bit independently fair).
    pub fn random(k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        SdInstance {
            x: (0..k).map(|_| rng.gen_bool(0.5)).collect(), // lint:allow(determinism) -- fair-coin parameter to the seeded RNG
            y: (0..k).map(|_| rng.gen_bool(0.5)).collect(), // lint:allow(determinism) -- fair-coin parameter to the seeded RNG
        }
    }

    /// A random *disjoint* instance: for each index, one of the four
    /// non-intersecting patterns.
    pub fn random_disjoint(k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ DISJOINT_SALT);
        let mut x = Vec::with_capacity(k);
        let mut y = Vec::with_capacity(k);
        for _ in 0..k {
            match rng.gen_range(0..3) {
                0 => {
                    x.push(false);
                    y.push(false);
                }
                1 => {
                    x.push(true);
                    y.push(false);
                }
                _ => {
                    x.push(false);
                    y.push(true);
                }
            }
        }
        SdInstance { x, y }
    }

    /// A random *intersecting* instance: like [`SdInstance::random`] but
    /// with one index forced to `(1, 1)`.
    pub fn random_intersecting(k: usize, seed: u64) -> Self {
        assert!(k > 0, "an intersecting instance needs at least one bit");
        let mut inst = SdInstance::random(k, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ INTERSECT_SALT);
        let i = rng.gen_range(0..k);
        inst.x[i] = true;
        inst.y[i] = true;
        inst
    }

    /// The bits exchanged by the trivial deterministic protocol (Alice
    /// ships `x` to Bob): exactly `k`. Any protocol must exchange `Ω(k)`
    /// bits, so this is optimal up to constants — the reference point the
    /// congestion experiments compare against.
    pub fn trivial_protocol_bits(&self) -> usize {
        self.len()
    }
}

/// Seed salts so the three constructors draw independent streams.
const DISJOINT_SALT: u64 = 0xd15a_101e;
const INTERSECT_SALT: u64 = 0x1e5e_c7ed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjointness_detection() {
        let d = SdInstance::new(vec![true, false, true], vec![false, true, false]);
        assert!(d.disjoint());
        let i = SdInstance::new(vec![true, false], vec![true, false]);
        assert!(!i.disjoint());
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        SdInstance::new(vec![true], vec![true, false]);
    }

    #[test]
    fn random_disjoint_is_disjoint() {
        for seed in 0..50 {
            assert!(SdInstance::random_disjoint(40, seed).disjoint());
        }
    }

    #[test]
    fn random_intersecting_is_not_disjoint() {
        for seed in 0..50 {
            assert!(!SdInstance::random_intersecting(40, seed).disjoint());
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(SdInstance::random(16, 7), SdInstance::random(16, 7));
        assert_ne!(SdInstance::random(16, 7), SdInstance::random(16, 8));
    }

    #[test]
    fn trivial_protocol_cost() {
        assert_eq!(SdInstance::random(32, 0).trivial_protocol_bits(), 32);
    }
}
