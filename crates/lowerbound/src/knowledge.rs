//! The information-dissemination argument behind Theorem 3 (Lemma 11),
//! measured on real executions.
//!
//! In any execution, a node's *knowledge set* `K(v)` — the set of nodes
//! whose initial state could have influenced `v` — grows by at most a
//! factor `Δ + 1` per awake round: when `v` wakes once, it can absorb at
//! most the knowledge of its `Δ` neighbors (as of their last transmission)
//! plus its own. Hence
//!
//! ```text
//! awake(v) ≥ log_{Δ+1} |K(v)|.
//! ```
//!
//! Deciding MST requires some node to aggregate knowledge spanning the
//! whole graph (on a ring, the comparison of the two far-apart heaviest
//! edges; in our algorithms, the final root's DONE decision), so some node
//! has `|K(v)| = n` and the awake complexity is at least
//! `log_{Δ+1} n = Ω(log n)` — Theorem 3's bound, checkable per run.
//!
//! [`knowledge_sizes`] replays a [`Trace`] and returns `|K(v)|` for every
//! node; the tests and the integration suite assert the inequality on
//! every traced execution.

use graphlib::WeightedGraph;
use netsim::{Round, RunStats, Trace, TraceEvent};

/// Replays `trace` and returns the final knowledge-set size of each node.
///
/// Knowledge only flows along recorded deliveries: `K(v) ∪= K(u)` when a
/// message from `u` reaches `v`. Deliveries within one round use the
/// senders' knowledge from *before* the round (synchronous semantics).
///
/// # Panics
///
/// Panics if the trace references nodes outside the graph.
pub fn knowledge_sizes(graph: &WeightedGraph, trace: &Trace) -> Vec<usize> {
    let n = graph.node_count();
    let words = n.div_ceil(64);
    // Bitset per node.
    let mut know: Vec<Vec<u64>> = (0..n)
        .map(|v| {
            let mut bits = vec![0u64; words];
            bits[v / 64] |= 1 << (v % 64);
            bits
        })
        .collect();

    let mut round_events: Vec<(usize, usize)> = Vec::new();
    let mut current_round: Option<Round> = None;

    let flush = |events: &mut Vec<(usize, usize)>, know: &mut Vec<Vec<u64>>| {
        // Apply all of one round's deliveries against pre-round snapshots.
        let snapshots: Vec<Vec<u64>> = events.iter().map(|&(from, _)| know[from].clone()).collect();
        for (&(_, to), snap) in events.iter().zip(&snapshots) {
            for (w, bits) in know[to].iter_mut().zip(snap) {
                *w |= bits;
            }
        }
        events.clear();
    };

    for event in trace.events() {
        if let TraceEvent::Delivered {
            round, from, to, ..
        } = event
        {
            assert!(
                from.index() < n && to.index() < n,
                "trace references unknown nodes"
            );
            if current_round != Some(*round) {
                flush(&mut round_events, &mut know);
                current_round = Some(*round);
            }
            round_events.push((from.index(), to.index()));
        }
    }
    flush(&mut round_events, &mut know);

    know.iter()
        .map(|bits| bits.iter().map(|w| w.count_ones() as usize).sum())
        .collect()
}

/// The information-theoretic awake floor for a node that ended with
/// knowledge of `k` nodes over degree-`delta` links:
/// `⌈log_{delta+1} k⌉`.
pub fn awake_floor(k: usize, delta: usize) -> u64 {
    if k <= 1 || delta == 0 {
        return 0;
    }
    // Smallest a with (delta + 1)^a >= k.
    let base = (delta + 1) as u128;
    let mut a = 0;
    let mut reach: u128 = 1;
    while reach < k as u128 {
        reach = reach.saturating_mul(base);
        a += 1;
    }
    a
}

/// Checks Lemma 11's inequality `awake(v) ≥ log_{Δ+1} |K(v)|` for every
/// node of a traced run.
///
/// Returns the first violating node index, or `None` if the inequality
/// holds everywhere (it must — a violation would mean the simulator let
/// information teleport).
pub fn find_violation(graph: &WeightedGraph, stats: &RunStats, trace: &Trace) -> Option<usize> {
    let sizes = knowledge_sizes(graph, trace);
    (0..graph.node_count()).find(|&v| {
        let delta = graph.degree(graphlib::NodeId::new(v as u32));
        stats.awake_by_node[v] < awake_floor(sizes[v], delta)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;
    use mst_core::randomized::RandomizedMst;
    use netsim::{SimConfig, Simulator};

    #[test]
    fn awake_floor_values() {
        assert_eq!(awake_floor(1, 2), 0);
        assert_eq!(awake_floor(3, 2), 1);
        assert_eq!(awake_floor(4, 2), 2);
        assert_eq!(awake_floor(9, 2), 2);
        assert_eq!(awake_floor(10, 2), 3);
        assert_eq!(awake_floor(27, 2), 3);
    }

    #[test]
    fn knowledge_spreads_to_everyone_on_a_completed_mst_run() {
        let g = generators::ring(24, 5).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(3))
            .run(RandomizedMst::new)
            .unwrap();
        let sizes = knowledge_sizes(&g, &out.trace);
        // The final root's DONE decision aggregates the whole ring.
        assert_eq!(*sizes.iter().max().unwrap(), 24);
        // Everyone heard the DONE broadcast, which carries the root's
        // knowledge — so everyone ends knowing everyone.
        assert!(sizes.iter().all(|&k| k == 24), "{sizes:?}");
    }

    #[test]
    fn lemma_11_inequality_holds_on_every_traced_run() {
        for (n, seed) in [(16usize, 1u64), (24, 2), (32, 3)] {
            let g = generators::ring(n, seed).unwrap();
            let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(seed))
                .run(RandomizedMst::new)
                .unwrap();
            assert_eq!(
                find_violation(&g, &out.stats, &out.trace),
                None,
                "information teleported at n={n}, seed={seed}"
            );
        }
    }

    #[test]
    fn theorem_3_floor_is_logarithmic_on_rings() {
        // Some node must aggregate the whole ring (degree 2), so the
        // measured awake max is at least log_3(n) — the Ω(log n) bound on
        // this very execution.
        let n = 64;
        let g = generators::ring(n, 7).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(1))
            .run(RandomizedMst::new)
            .unwrap();
        let sizes = knowledge_sizes(&g, &out.trace);
        let full = sizes
            .iter()
            .position(|&k| k == n)
            .expect("someone knows everything");
        let floor = awake_floor(n, 2);
        assert!(floor >= 4, "log_3(64) rounds up to 4");
        assert!(
            out.stats.awake_by_node[full] >= floor,
            "node {full} awake {} below the Ω(log n) floor {floor}",
            out.stats.awake_by_node[full]
        );
    }

    #[test]
    fn knowledge_respects_synchronous_semantics() {
        // Two deliveries in the same round must use pre-round knowledge:
        // a→b and b→c in round r gives c only b's old knowledge, not a's.
        use graphlib::GraphBuilder;
        use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

        #[derive(Debug)]
        struct Chain;
        impl Protocol for Chain {
            type Msg = ();
            fn init(&mut self, _: &NodeCtx) -> NextWake {
                NextWake::At(1)
            }
            fn send(&mut self, ctx: &NodeCtx, _: Round, outbox: &mut Outbox<()>) {
                outbox.extend(ctx.ports().map(|p| Envelope::new(p, ())));
            }
            fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<()>]) -> NextWake {
                NextWake::Halt
            }
        }

        let g = GraphBuilder::new(3)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .build()
            .unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace())
            .run(|_| Chain)
            .unwrap();
        let sizes = knowledge_sizes(&g, &out.trace);
        // One simultaneous exchange: ends know themselves + the middle;
        // the middle knows all three; nobody learns across in one round.
        assert_eq!(sizes, vec![2, 3, 2]);
    }
}
