//! The `G_rc` lower-bound graph of Figure 1.
//!
//! `G_rc` consists of `r` parallel paths ("rows") of `c` nodes each; the
//! bottom row `p_1` contains the two players — **Alice** (first node) and
//! **Bob** (last node) — who attach to the first and last node of every
//! other row. A set `X` of `Θ(log n)` equally spaced nodes of `p_1`
//! (cardinality a power of two, containing both endpoints) sends "spoke"
//! edges to the same positions of every other row, and a balanced binary
//! tree with leaf set `X` is added on top; its internal nodes are the set
//! `I`. The tree plus the spokes make the diameter `Θ(c / log n)` while
//! keeping `|I| = O(log n)` — every fast protocol must squeeze `Ω(r)` bits
//! through those few nodes, which is what Lemma 8 exploits.

use graphlib::{generators, GraphBuilder, GraphError, NodeId, WeightedGraph};

/// How an edge of `G_rc` is used by the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Consecutive nodes of one row (0-based row index).
    Path {
        /// The row, `0` = `p_1`.
        row: usize,
    },
    /// Alice to the first node of a row `>= 1`.
    AliceAttach {
        /// The attached row.
        row: usize,
    },
    /// Bob to the last node of a row `>= 1`.
    BobAttach {
        /// The attached row.
        row: usize,
    },
    /// An `X` node to the same position in another row.
    Spoke,
    /// A balanced-binary-tree edge over the leaf set `X`.
    Tree,
}

/// The constructed graph plus all the structural metadata the experiments
/// need.
#[derive(Debug, Clone)]
pub struct Grc {
    /// The weighted graph (distinct random weights).
    pub graph: WeightedGraph,
    /// Number of rows `r`.
    pub rows: usize,
    /// Nodes per row `c`.
    pub cols: usize,
    /// Alice: first node of `p_1`.
    pub alice: NodeId,
    /// Bob: last node of `p_1`.
    pub bob: NodeId,
    /// The leaf set `X` (nodes of `p_1`), in position order.
    pub x_nodes: Vec<NodeId>,
    /// Column positions of the `X` nodes.
    pub x_positions: Vec<usize>,
    /// The internal binary-tree nodes `I`.
    pub internal: Vec<NodeId>,
    /// Edge class of every edge, indexed by [`graphlib::EdgeId`].
    pub classes: Vec<EdgeClass>,
}

impl Grc {
    /// Builds `G_rc` with `rows` parallel paths of `cols` nodes.
    ///
    /// The leaf count `|X|` is the smallest power of two that is at least
    /// `log₂(rows·cols)` (and at least 2).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `rows == 0`, `cols < 2`, or
    /// `cols` is too small to host `|X|` distinct positions.
    pub fn build(rows: usize, cols: usize, seed: u64) -> Result<Grc, GraphError> {
        if rows == 0 || cols < 2 {
            return Err(GraphError::InvalidSize {
                reason: format!("G_rc needs rows >= 1 and cols >= 2, got {rows}x{cols}"),
            });
        }
        let base = rows * cols;
        let x_count = x_count_for(base);
        if cols < x_count {
            return Err(GraphError::InvalidSize {
                reason: format!("cols {cols} cannot host {x_count} distinct X positions"),
            });
        }

        // Equally spaced X positions including both endpoints.
        let x_positions: Vec<usize> = (0..x_count)
            .map(|k| k * (cols - 1) / (x_count - 1))
            .collect();
        debug_assert!(x_positions.windows(2).all(|w| w[0] < w[1]));

        let at = |row: usize, col: usize| (row * cols + col) as u32;
        let internal_base = base as u32;
        let internal_count = x_count - 1;
        let n = base + internal_count;

        // Edges in construction order, with classes recorded side by side.
        let mut pairs: Vec<(u32, u32, EdgeClass)> = Vec::new();
        for row in 0..rows {
            for col in 0..cols - 1 {
                pairs.push((at(row, col), at(row, col + 1), EdgeClass::Path { row }));
            }
        }
        for row in 1..rows {
            pairs.push((at(0, 0), at(row, 0), EdgeClass::AliceAttach { row }));
            pairs.push((
                at(0, cols - 1),
                at(row, cols - 1),
                EdgeClass::BobAttach { row },
            ));
        }
        for &j in &x_positions {
            for row in 1..rows {
                // Skip duplicates of the Alice/Bob attachment edges.
                if j == 0 || j == cols - 1 {
                    continue;
                }
                pairs.push((at(0, j), at(row, j), EdgeClass::Spoke));
            }
        }

        // Balanced binary tree over X: internal nodes allocated bottom-up.
        let mut next_internal = internal_base;
        let mut internal = Vec::with_capacity(internal_count);
        let mut frontier: Vec<u32> = x_positions.iter().map(|&j| at(0, j)).collect();
        while frontier.len() > 1 {
            let mut above = Vec::with_capacity(frontier.len() / 2);
            for pair in frontier.chunks(2) {
                let parent = next_internal;
                next_internal += 1;
                internal.push(NodeId::new(parent));
                pairs.push((parent, pair[0], EdgeClass::Tree));
                pairs.push((parent, pair[1], EdgeClass::Tree));
                above.push(parent);
            }
            frontier = above;
        }
        debug_assert_eq!(internal.len(), internal_count);

        let weights =
            generators::distinct_weights(pairs.len(), (n as u64).pow(3).max(1 << 16), seed)?;
        let mut b = GraphBuilder::new(n);
        let mut classes = Vec::with_capacity(pairs.len());
        for (k, (u, v, class)) in pairs.into_iter().enumerate() {
            b.edge(u, v, weights[k]);
            classes.push(class);
        }

        Ok(Grc {
            graph: b.build()?,
            rows,
            cols,
            alice: NodeId::new(0),
            bob: NodeId::new(at(0, cols - 1)),
            x_nodes: x_positions.iter().map(|&j| NodeId::new(at(0, j))).collect(),
            x_positions,
            internal,
            classes,
        })
    }

    /// Total node count `n = r·c + |I|`.
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// `true` if `node` is one of the internal tree nodes `I`.
    pub fn is_internal(&self, node: NodeId) -> bool {
        node.index() >= self.rows * self.cols
    }

    /// The length of Alice's and Bob's SD input strings: one bit per row
    /// `p_ℓ`, `2 ≤ ℓ ≤ r` (0-based rows `1..rows`).
    pub fn sd_bits(&self) -> usize {
        self.rows.saturating_sub(1)
    }
}

/// Smallest power of two ≥ `max(2, ⌈log₂ base⌉)`.
fn x_count_for(base: usize) -> usize {
    let target = (usize::BITS - base.max(2).leading_zeros()) as usize; // ≈ ⌈log2⌉
    target.max(2).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::traversal;

    #[test]
    fn x_count_is_a_power_of_two_of_log_scale() {
        assert_eq!(x_count_for(4), 4);
        assert_eq!(x_count_for(1024), 16);
        assert!(x_count_for(1 << 20).is_power_of_two());
        assert!(x_count_for(2) >= 2);
    }

    #[test]
    fn build_small_grc() {
        let g = Grc::build(4, 16, 1).unwrap();
        assert_eq!(g.rows, 4);
        assert_eq!(g.cols, 16);
        assert!(g.x_nodes.len().is_power_of_two());
        assert_eq!(g.internal.len(), g.x_nodes.len() - 1);
        assert_eq!(g.n(), 4 * 16 + g.internal.len());
        assert_eq!(g.classes.len(), g.graph.edge_count());
        assert!(traversal::is_connected(&g.graph));
    }

    #[test]
    fn alice_and_bob_attach_to_every_row() {
        let g = Grc::build(5, 16, 2).unwrap();
        // Alice: path edge + (rows-1) attachments + spokes/tree as X node.
        let alice_attach = g
            .classes
            .iter()
            .filter(|c| matches!(c, EdgeClass::AliceAttach { .. }))
            .count();
        let bob_attach = g
            .classes
            .iter()
            .filter(|c| matches!(c, EdgeClass::BobAttach { .. }))
            .count();
        assert_eq!(alice_attach, 4);
        assert_eq!(bob_attach, 4);
    }

    #[test]
    fn tree_spans_x_with_internal_nodes() {
        let g = Grc::build(3, 32, 3).unwrap();
        let tree_edges = g
            .classes
            .iter()
            .filter(|c| matches!(c, EdgeClass::Tree))
            .count();
        // A binary tree over |X| leaves with |X|-1 internal nodes has
        // 2(|X|-1) edges.
        assert_eq!(tree_edges, 2 * (g.x_nodes.len() - 1));
        for &i in &g.internal {
            assert!(g.is_internal(i));
            assert!(g.graph.degree(i) >= 2);
        }
    }

    #[test]
    fn diameter_scales_with_c_over_log_n() {
        // The X spacing is about c/(|X|-1); the tree adds O(log |X|) hops.
        let g = Grc::build(4, 64, 4).unwrap();
        let d = traversal::diameter(&g.graph).unwrap() as usize;
        let spacing = g.cols / (g.x_nodes.len() - 1);
        assert!(
            d <= 2 * spacing + 4 * g.x_nodes.len().ilog2() as usize + 8,
            "diameter {d} too large for spacing {spacing}"
        );
        assert!(d >= spacing / 2, "diameter {d} suspiciously small");
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Grc::build(0, 16, 0).is_err());
        assert!(Grc::build(4, 1, 0).is_err());
        assert!(Grc::build(4, 2, 0).is_err()); // cols can't host X
    }

    #[test]
    fn sd_bits_is_rows_minus_one() {
        let g = Grc::build(6, 16, 5).unwrap();
        assert_eq!(g.sd_bits(), 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Grc::build(4, 16, 9).unwrap();
        let b = Grc::build(4, 16, 9).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.x_positions, b.x_positions);
    }
}
