//! Lower-bound constructions from Section 3 of the paper, made executable.
//!
//! * [`ring`] — the random-weight ring family behind Theorem 3's
//!   unconditional `Ω(log n)` awake lower bound;
//! * [`grc`] — the `G_rc` graph of Figure 1 used by the awake × round
//!   trade-off (Theorem 4);
//! * [`sd`] — classical two-party set disjointness instances;
//! * [`reduction`] — the SD → DSD → CSS → MST reduction chain
//!   (Lemmas 8–10) as concrete instance transformations with sequential
//!   checkers;
//! * [`congestion`] — measurement helpers that read a simulator run's
//!   per-node/per-edge traffic and extract the quantities Lemma 8's
//!   argument bounds (bits through the `O(log n)` binary-tree nodes `I`).
//!
//! Lower bounds cannot be "run", but their *structures* can: the benches
//! built on this crate reproduce the shape of each bound (awake/log n
//! flatness on rings; awake × rounds ≥ Ω̃(n) on `G_rc`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod grc;
pub mod knowledge;
pub mod reduction;
pub mod ring;
pub mod sd;
