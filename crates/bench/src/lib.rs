//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary regenerates one of the paper's artifacts (see
//! `EXPERIMENTS.md` at the repository root):
//!
//! * `table1` — Table 1: awake/run time of both algorithms across `n`;
//! * `ring_lb` — Theorem 3: the ring lower-bound family;
//! * `grc_tradeoff` — Theorem 4 + Figure 1: awake × round products and
//!   `I`-node congestion on `G_rc`;
//! * `ablations` — the design-choice ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]

/// Simple fixed-width markdown row printing.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a nonempty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
    }
}
