//! Shared experiment harness for the benchmark binaries and the CLI's
//! `sweep` subcommand.
//!
//! Each binary regenerates one of the paper's artifacts (see
//! `EXPERIMENTS.md` at the repository root):
//!
//! * `table1` — Table 1: awake/run time of both algorithms across `n`;
//! * `ring_lb` — Theorem 3: the ring lower-bound family;
//! * `grc_tradeoff` — Theorem 4 + Figure 1: awake × round products and
//!   `I`-node congestion on `G_rc`;
//! * `ablations` — the design-choice ablations listed in `DESIGN.md`.
//!
//! The [`harness`] module is what they are built on: declarative sweeps
//! over (algorithm × graph family × n × seed), executed on a scoped thread
//! pool. Every trial is a pure function of its `(n, seed)` cell — graphs
//! are rebuilt per trial and all randomness derives from the trial seed —
//! so a parallel sweep is bit-identical to a sequential one.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod engine_panel;
pub mod harness;
pub mod report;
pub mod serve;

pub use chaos::{run_chaos, ChaosReport, ChaosSpec, ChaosTrial, Outcome};
pub use engine_panel::{
    render_engine_panel_json, run_engine_panel, EnginePanelRow, EnginePanelSpec,
};
pub use harness::{aggregate, Cell, Sweep, TrialResult};
pub use report::{generate, Report, ReportSpec};

/// Renders one markdown table row; the binaries print it themselves
/// (library code stays print-free — see the `print-in-lib` lint rule).
pub fn format_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a nonempty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
    }
}
