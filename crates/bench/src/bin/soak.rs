//! Fault-tolerance soak: every registry algorithm × graph family ×
//! fault level, outcomes classified (see `bench::chaos`).
//!
//! ```text
//! soak [--seed S] [--sizes 8,12] [--trials K] [--out matrix.json]
//! ```
//!
//! Prints the algorithm × level matrix (`correct/typed/wrong` per cell)
//! and exits nonzero if any trial lands in the wrong-output bucket —
//! injected faults may degrade a run, but never silently corrupt it.

use std::process::ExitCode;

use bench::chaos::{run_chaos, ChaosSpec, Outcome};

fn parse_args() -> Result<(ChaosSpec, Option<String>), String> {
    let mut spec = ChaosSpec::default();
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--trials" => {
                spec.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?
            }
            "--sizes" => {
                spec.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--sizes: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok((spec, out))
}

fn main() -> ExitCode {
    let (spec, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("soak: {e}");
            eprintln!("usage: soak [--seed S] [--sizes 8,12] [--trials K] [--out matrix.json]");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# fault-tolerance soak: seed={} sizes={:?} trials/cell={}",
        spec.seed, spec.sizes, spec.trials
    );
    let report = run_chaos(&spec);
    println!("{}", report.summary_table());
    println!("(cell = correct/typed-failure/wrong-output)");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("soak: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("matrix written to {path}");
    }
    let wrong = report.wrong_outputs();
    if !wrong.is_empty() {
        eprintln!(
            "soak: {} wrong-output trial(s) — this is a bug:",
            wrong.len()
        );
        for t in wrong {
            let detail = match &t.outcome {
                Outcome::WrongOutput(d) => d.as_str(),
                _ => "",
            };
            eprintln!(
                "  {} family={} level={} n={} seed={}: {}",
                t.algorithm, t.family, t.level, t.n, t.seed, detail
            );
        }
        return ExitCode::FAILURE;
    }
    println!("no wrong outputs: every trial was correct or failed with a typed error");
    ExitCode::SUCCESS
}
