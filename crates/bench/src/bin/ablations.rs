//! Ablations of the design choices called out in `DESIGN.md`.
//!
//! * **A1 — coin pruning**: Step (i) of `Randomized-MST` restricts merges
//!   to tails→heads MOEs to keep merge components star-shaped. We measure
//!   the *supergraph chain depth* that would arise without pruning
//!   (computed structurally per phase) — the quantity that would translate
//!   into awake time if merged naively.
//! * **A2 — token cap**: `Deterministic-MST` caps valid incoming MOEs at
//!   3. We sweep the cap and report phases/awake/rounds.
//! * **A3 — coin bias**: the paper flips fair coins; we sweep
//!   `P(heads)` and report phase counts.
//!
//! A2 and A3 run through the shared harness: each configuration override
//! is registered as a labeled custom runner ([`Sweep::algorithm_fn`]), so
//! the sweep grid and the multi-seed averaging come for free.

use bench::{aggregate, mean, Sweep};
use graphlib::{generators, mst, EdgeId, UnionFind, WeightedGraph};
use mst_core::deterministic::DeterministicConfig;
use mst_core::randomized::RandomizedConfig;
use mst_core::{run_deterministic_with, run_randomized_with, MstOutcome, RunError};

/// A labeled configuration variant for [`Sweep::algorithm_fn`].
type LabeledRunner = (
    String,
    Box<dyn Fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError> + Sync>,
);

/// Structural measurement for A1: simulate Borůvka phases and report the
/// maximum depth of a merge component in the fragment supergraph (a) with
/// all MOEs, as naive merging would, and (b) expected-star depth 1 under
/// tails→heads pruning.
fn unpruned_chain_depths(n: usize, seed: u64) -> Vec<usize> {
    let g = generators::random_connected(n, 0.1, seed).unwrap();
    let mut uf = UnionFind::new(n);
    let mut depths = Vec::new();
    loop {
        // Fragment MOEs.
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        let mut any = false;
        for (i, e) in g.edges().iter().enumerate() {
            let (ru, rv) = (uf.find(e.u.index()), uf.find(e.v.index()));
            if ru == rv {
                continue;
            }
            any = true;
            for r in [ru, rv] {
                let better = best[r].is_none_or(|cur| g.edge(cur).weight > e.weight);
                if better {
                    best[r] = Some(EdgeId::new(i as u32));
                }
            }
        }
        if !any {
            break;
        }
        // Depth of merge components: BFS over the fragment supergraph whose
        // edges are ALL the MOEs (what naive merging must traverse).
        // BTreeMap, not HashMap: `max_depth` depends on which node of each
        // component the BFS starts from, so iteration order below must be
        // deterministic or the reported depths drift run to run.
        let mut adj: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (r, moe) in best.iter().enumerate() {
            if let Some(id) = moe {
                let e = g.edge(*id);
                let a = uf.find(e.u.index());
                let b = uf.find(e.v.index());
                adj.entry(a).or_default().push(b);
                adj.entry(b).or_default().push(a);
                debug_assert!(a == r || b == r);
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut max_depth = 0usize;
        for &start in adj.keys() {
            if !seen.insert(start) {
                continue;
            }
            let mut frontier = vec![start];
            let mut depth = 0;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for v in frontier {
                    for &w in adj.get(&v).into_iter().flatten() {
                        if seen.insert(w) {
                            next.push(w);
                        }
                    }
                }
                if !next.is_empty() {
                    depth += 1;
                }
                frontier = next;
            }
            max_depth = max_depth.max(depth);
        }
        depths.push(max_depth);
        for moe in best.into_iter().flatten() {
            let e = g.edge(moe);
            uf.union(e.u.index(), e.v.index());
        }
    }
    depths
}

fn main() {
    println!("## A1 — why valid-MOE pruning: merge-component depth without it\n");
    println!("| n    | phases | max chain depth | mean chain depth |");
    println!("|------|--------|-----------------|------------------|");
    for &n in &[32usize, 128, 512] {
        let depths = unpruned_chain_depths(n, 1);
        let dd: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
        println!(
            "| {n:<4} | {:<6} | {:>15} | {:>16.1} |",
            depths.len(),
            depths.iter().max().unwrap(),
            mean(&dd)
        );
    }
    println!(
        "\nWith pruning every merge component is a star (depth 1, O(1) awake);\n\
         without it chains of the depths above would each cost that many\n\
         awake rounds to re-label — the blow-up Step (i) prevents.\n"
    );

    println!("## A2 — deterministic token cap sweep\n");
    println!("| cap | phases | awake max | rounds   |");
    println!("|-----|--------|-----------|----------|");
    let a2_family =
        |_n: usize, _seed: u64| generators::random_connected(48, 0.1, 3).map_err(|e| e.to_string());
    let reference = mst::kruskal(&generators::random_connected(48, 0.1, 3).unwrap()).total_weight;
    let capped: Vec<LabeledRunner> = [1u64, 2, 3]
        .into_iter()
        .map(|cap| {
            let run = move |g: &WeightedGraph, _seed: u64| {
                run_deterministic_with(
                    g,
                    DeterministicConfig {
                        token_cap: cap,
                        ..Default::default()
                    },
                )
            };
            (
                format!("cap={cap}"),
                Box::new(run)
                    as Box<dyn Fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError> + Sync>,
            )
        })
        .collect();
    let mut sweep = Sweep::new(&a2_family).sizes([48]);
    for (label, run) in &capped {
        sweep = sweep.algorithm_fn(label.clone(), run.as_ref());
    }
    let results = sweep.run().expect("token cap sweep");
    for r in &results {
        assert_eq!(
            r.total_weight,
            u128::from(reference),
            "{} broke correctness",
            r.algorithm
        );
        println!(
            "| {:<3} | {:<6} | {:>9} | {:>8} |",
            r.algorithm.trim_start_matches("cap="),
            r.phases,
            r.stats.awake_max(),
            r.stats.rounds
        );
    }
    println!(
        "\n(Cap 3 is the paper's choice and also a structural ceiling: NBR-INFO\n\
         and the five-color palette are sized for G' degree ≤ 4 = cap + 1.\n\
         A larger cap trips the NBR-INFO capacity invariant by design —\n\
         the whole step (ii) machinery is built around ≤ 3 incoming MOEs.)\n"
    );

    println!("## A3 — coin bias sweep (Randomized-MST, 5 seeds each)\n");
    println!("| P(heads) | mean phases | mean awake | mean rounds |");
    println!("|----------|-------------|------------|-------------|");
    let a3_family = |_n: usize, _seed: u64| {
        generators::random_connected(64, 0.08, 5).map_err(|e| e.to_string())
    };
    let a3_reference =
        mst::kruskal(&generators::random_connected(64, 0.08, 5).unwrap()).total_weight;
    let biased: Vec<LabeledRunner> = [0.1f64, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|bias| {
            let run = move |g: &WeightedGraph, seed: u64| {
                run_randomized_with(
                    g,
                    seed,
                    RandomizedConfig {
                        heads_probability: bias,
                        prune_with_coins: true,
                        ..Default::default()
                    },
                )
            };
            (
                format!("{bias}"),
                Box::new(run)
                    as Box<dyn Fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError> + Sync>,
            )
        })
        .collect();
    let mut sweep = Sweep::new(&a3_family).sizes([64]).seeds(0..5);
    for (label, run) in &biased {
        sweep = sweep.algorithm_fn(label.clone(), run.as_ref());
    }
    let results = sweep.run().expect("coin bias sweep");
    for r in &results {
        assert_eq!(
            r.total_weight,
            u128::from(a3_reference),
            "bias {} broke correctness",
            r.algorithm
        );
    }
    for c in aggregate(&results) {
        println!(
            "| {:<8} | {:>11.1} | {:>10.1} | {:>11.0} |",
            c.algorithm, c.phases, c.awake_max, c.rounds
        );
    }
    println!(
        "\nFair coins minimize expected phases (P(tails→heads) = p(1-p) peaks\n\
         at 1/2) — the paper's choice is the sweet spot."
    );
}
