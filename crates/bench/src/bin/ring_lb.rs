//! Regenerates the **Theorem 3** experiment: the `Ω(log n)` awake lower
//! bound on rings, with the matching upper bound measured.
//!
//! Three panels:
//!
//! 1. the construction's premise — separation of the two heaviest edges
//!    grows linearly in `n` with constant probability;
//! 2. awake complexity of `Randomized-MST` on the same rings, normalized
//!    by `log₂ n` (flat ⇒ the algorithm meets the bound), swept through
//!    the shared harness;
//! 3. the same for `Deterministic-MST` at smaller sizes.

use bench::{aggregate, mean, Sweep};
use lowerbound::knowledge::{awake_floor, knowledge_sizes};
use lowerbound::ring;
use mst_core::randomized::RandomizedMst;
use mst_core::registry;
use netsim::{SimConfig, Simulator};

fn main() {
    println!("## Premise: two heaviest ring edges are Ω(n) apart (50 seeds each)\n");
    println!("| n    | mean sep | mean sep / n | P(sep >= n/8) |");
    println!("|------|----------|--------------|---------------|");
    for &n in &[32usize, 64, 128, 256, 512, 1024] {
        let seps: Vec<f64> = (0..50)
            .map(|s| ring::heaviest_separation_sample(n, s).unwrap() as f64)
            .collect();
        let far = seps.iter().filter(|&&s| s >= (n / 8) as f64).count() as f64 / seps.len() as f64;
        println!(
            "| {n:<4} | {:>8.1} | {:>12.3} | {far:>13.2} |",
            mean(&seps),
            mean(&seps) / n as f64
        );
    }

    let ring_family = |n: usize, seed: u64| ring::instance(n, seed).map_err(|e| e.to_string());

    println!("\n## Randomized-MST on rings: awake/log2(n) flatness (3 seeds each)\n");
    println!("| n    | awake max | awake/log2(n) | rounds    |");
    println!("|------|-----------|---------------|-----------|");
    let results = Sweep::new(&ring_family)
        .algorithm(registry::find("randomized").expect("registry"))
        .sizes([32usize, 64, 128, 256, 512, 1024])
        .seeds(0..3)
        .run()
        .expect("randomized ring sweep");
    for c in aggregate(&results) {
        println!(
            "| {:<4} | {:>9.0} | {:>13.1} | {:>9.0} |",
            c.n,
            c.awake_max,
            c.awake_max / (c.n as f64).log2(),
            c.rounds
        );
    }

    println!("\n## Deterministic-MST on rings\n");
    println!("| n    | awake max | awake/log2(n) | rounds    |");
    println!("|------|-----------|---------------|-----------|");
    let results = Sweep::new(&ring_family)
        .algorithm(registry::find("deterministic").expect("registry"))
        .sizes([16usize, 32, 64, 128])
        .seeds([1])
        .run()
        .expect("deterministic ring sweep");
    for c in aggregate(&results) {
        println!(
            "| {:<4} | {:>9.0} | {:>13.1} | {:>9.0} |",
            c.n,
            c.awake_max,
            c.awake_max / (c.n as f64).log2(),
            c.rounds
        );
    }

    println!("\n## Lemma 11 measured: knowledge spread vs the awake floor\n");
    println!("| n    | max |K(v)| | floor log3(n) | awake of that node | slack |");
    println!("|------|-----------|---------------|--------------------|-------|");
    for &n in &[32usize, 64, 128, 256] {
        let g = ring::instance(n, 2).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(4))
            .run(RandomizedMst::new)
            .unwrap();
        let sizes = knowledge_sizes(&g, &out.trace);
        let (v, &k) = sizes.iter().enumerate().max_by_key(|&(_, &k)| k).unwrap();
        let floor = awake_floor(k, 2);
        let awake = out.stats.awake_by_node[v];
        println!(
            "| {n:<4} | {k:>9} | {floor:>13} | {awake:>18} | {:>4.1}x |",
            awake as f64 / floor.max(1) as f64
        );
    }
    println!(
        "\nShape: panel 1 justifies the Ω(log n) bound's premise; panels 2–3\n\
         show both algorithms matching it (flat awake/log2 n); the last panel\n\
         replays each execution's information flow and confirms every run\n\
         obeys the awake ≥ log_{{Δ+1}}|K| floor that proves Theorem 3."
    );
}
