//! Regenerates the **Theorem 3** experiment: the `Ω(log n)` awake lower
//! bound on rings, with the matching upper bound measured.
//!
//! Three panels:
//!
//! 1. the construction's premise — separation of the two heaviest edges
//!    grows linearly in `n` with constant probability;
//! 2. awake complexity of `Randomized-MST` on the same rings, normalized
//!    by `log₂ n` (flat ⇒ the algorithm meets the bound);
//! 3. the same for `Deterministic-MST` at smaller sizes.

use bench::mean;
use lowerbound::knowledge::{awake_floor, knowledge_sizes};
use lowerbound::ring;
use mst_core::randomized::RandomizedMst;
use mst_core::{run_deterministic, run_randomized};
use netsim::{SimConfig, Simulator};

fn main() {
    println!("## Premise: two heaviest ring edges are Ω(n) apart (50 seeds each)\n");
    println!("| n    | mean sep | mean sep / n | P(sep >= n/8) |");
    println!("|------|----------|--------------|---------------|");
    for &n in &[32usize, 64, 128, 256, 512, 1024] {
        let seps: Vec<f64> = (0..50)
            .map(|s| ring::heaviest_separation_sample(n, s).unwrap() as f64)
            .collect();
        let far = seps.iter().filter(|&&s| s >= (n / 8) as f64).count() as f64 / seps.len() as f64;
        println!(
            "| {n:<4} | {:>8.1} | {:>12.3} | {far:>13.2} |",
            mean(&seps),
            mean(&seps) / n as f64
        );
    }

    println!("\n## Randomized-MST on rings: awake/log2(n) flatness (3 seeds each)\n");
    println!("| n    | awake max | awake/log2(n) | rounds    |");
    println!("|------|-----------|---------------|-----------|");
    for &n in &[32usize, 64, 128, 256, 512, 1024] {
        let mut awake = Vec::new();
        let mut rounds = Vec::new();
        for s in 0..3 {
            let g = ring::instance(n, s).unwrap();
            let out = run_randomized(&g, s + 11).unwrap();
            awake.push(out.stats.awake_max() as f64);
            rounds.push(out.stats.rounds as f64);
        }
        println!(
            "| {n:<4} | {:>9.0} | {:>13.1} | {:>9.0} |",
            mean(&awake),
            mean(&awake) / (n as f64).log2(),
            mean(&rounds)
        );
    }

    println!("\n## Deterministic-MST on rings\n");
    println!("| n    | awake max | awake/log2(n) | rounds    |");
    println!("|------|-----------|---------------|-----------|");
    for &n in &[16usize, 32, 64, 128] {
        let g = ring::instance(n, 1).unwrap();
        let out = run_deterministic(&g).unwrap();
        println!(
            "| {n:<4} | {:>9} | {:>13.1} | {:>9} |",
            out.stats.awake_max(),
            out.stats.awake_max() as f64 / (n as f64).log2(),
            out.stats.rounds
        );
    }
    println!("\n## Lemma 11 measured: knowledge spread vs the awake floor\n");
    println!("| n    | max |K(v)| | floor log3(n) | awake of that node | slack |");
    println!("|------|-----------|---------------|--------------------|-------|");
    for &n in &[32usize, 64, 128, 256] {
        let g = ring::instance(n, 2).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_trace().with_seed(4))
            .run(RandomizedMst::new)
            .unwrap();
        let sizes = knowledge_sizes(&g, &out.trace);
        let (v, &k) = sizes.iter().enumerate().max_by_key(|&(_, &k)| k).unwrap();
        let floor = awake_floor(k, 2);
        let awake = out.stats.awake_by_node[v];
        println!(
            "| {n:<4} | {k:>9} | {floor:>13} | {awake:>18} | {:>4.1}x |",
            awake as f64 / floor.max(1) as f64
        );
    }
    println!(
        "\nShape: panel 1 justifies the Ω(log n) bound's premise; panels 2–3\n\
         show both algorithms matching it (flat awake/log2 n); the last panel\n\
         replays each execution's information flow and confirms every run\n\
         obeys the awake ≥ log_{{Δ+1}}|K| floor that proves Theorem 3."
    );
}
