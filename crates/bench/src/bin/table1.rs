//! Regenerates **Table 1** of the paper as measured scaling data.
//!
//! Paper rows:
//!
//! | Algorithm | Awake Time | Run Time |
//! |---|---|---|
//! | Randomized-MST | O(log n) | O(n log n) |
//! | Deterministic-MST | O(log n) | O(n N log n) |
//!
//! We sweep `n` and print, per algorithm, the measured awake complexity
//! and run time together with the normalized columns `awake / log₂ n`,
//! `rounds / (n log₂ n)`, and (deterministic) `rounds / (n N log₂ n)`.
//! The paper's claims hold iff the normalized columns stay flat.

use bench::mean;
use graphlib::generators;
use mst_core::{run_always_awake, run_deterministic, run_logstar, run_prim, run_randomized};

fn main() {
    let seeds: Vec<u64> = (0..3).collect();

    println!("## Table 1, row 1: Randomized-MST — awake O(log n), run time O(n log n)\n");
    println!("| n    | awake max | awake/log2(n) | rounds    | rounds/(n·log2 n) | phases |");
    println!("|------|-----------|---------------|-----------|-------------------|--------|");
    for &n in &[16usize, 32, 64, 128, 256, 512] {
        let mut awake = Vec::new();
        let mut rounds = Vec::new();
        let mut phases = Vec::new();
        for &s in &seeds {
            let g = generators::random_connected(n, 0.05, s + n as u64).unwrap();
            let out = run_randomized(&g, s).unwrap();
            awake.push(out.stats.awake_max() as f64);
            rounds.push(out.stats.rounds as f64);
            phases.push(out.phases as f64);
        }
        let log_n = (n as f64).log2();
        println!(
            "| {n:<4} | {:>9.0} | {:>13.1} | {:>9.0} | {:>17.2} | {:>6.1} |",
            mean(&awake),
            mean(&awake) / log_n,
            mean(&rounds),
            mean(&rounds) / (n as f64 * log_n),
            mean(&phases),
        );
    }

    println!("\n## Table 1, row 2: Deterministic-MST — awake O(log n), run time O(n·N·log n)\n");
    println!("| n    | N    | awake max | awake/log2(n) | rounds     | rounds/(n·N·log2 n) |");
    println!("|------|------|-----------|---------------|------------|---------------------|");
    for &n in &[8usize, 16, 32, 64, 128] {
        let g = generators::random_connected(n, 0.08, n as u64).unwrap();
        let big_n = g.max_external_id();
        let out = run_deterministic(&g).unwrap();
        let log_n = (n as f64).log2();
        println!(
            "| {n:<4} | {big_n:<4} | {:>9} | {:>13.1} | {:>10} | {:>19.3} |",
            out.stats.awake_max(),
            out.stats.awake_max() as f64 / log_n,
            out.stats.rounds,
            out.stats.rounds as f64 / (n as f64 * big_n as f64 * log_n),
        );
    }

    println!("\n## Corollary 1: Cole–Vishkin variant — awake O(log n log* n), run time O(n log n log* n)\n");
    println!("| n    | N    | awake max | rounds     | rounds vs Fast-Awake |");
    println!("|------|------|-----------|------------|----------------------|");
    for &n in &[8usize, 16, 32, 64] {
        // Sparse ids make the comparison vivid: N = 16n.
        let g = generators::with_id_space(
            generators::random_connected(n, 0.1, n as u64).unwrap(),
            16 * n as u64,
            1,
        )
        .unwrap();
        let fast = run_deterministic(&g).unwrap();
        let cv = run_logstar(&g).unwrap();
        assert_eq!(fast.edges, cv.edges);
        println!(
            "| {n:<4} | {:<4} | {:>9} | {:>10} | {:>19.1}x |",
            g.max_external_id(),
            cv.stats.awake_max(),
            cv.stats.rounds,
            fast.stats.rounds as f64 / cv.stats.rounds as f64,
        );
    }

    println!("\n## Baseline: always-awake GHS (traditional model, awake = run time)\n");
    println!("| n    | awake max | rounds    | awake/rounds |");
    println!("|------|-----------|-----------|--------------|");
    for &n in &[16usize, 64, 256] {
        let g = generators::random_connected(n, 0.05, n as u64).unwrap();
        let out = run_always_awake(&g, 0).unwrap();
        println!(
            "| {n:<4} | {:>9} | {:>9} | {:>12.2} |",
            out.stats.awake_max(),
            out.stats.rounds,
            out.stats.awake_max() as f64 / out.stats.rounds as f64,
        );
    }
    println!("\n## Message complexity (GHS lineage: O(m log n) for the randomized variant)\n");
    println!("| n    | m     | messages | msgs/(m·log2 n) |");
    println!("|------|-------|----------|-----------------|");
    for &n in &[32usize, 128, 512] {
        let g = generators::random_connected(n, 0.05, n as u64).unwrap();
        let out = run_randomized(&g, 2).unwrap();
        let m = g.edge_count() as f64;
        println!(
            "| {n:<4} | {:<5} | {:>8} | {:>15.2} |",
            g.edge_count(),
            out.stats.messages_delivered,
            out.stats.messages_delivered as f64 / (m * (n as f64).log2()),
        );
    }

    println!("\n## Baseline: Prim-style sequential growth (sleeping, but Θ(n) awake)\n");
    println!("| n    | awake max | awake/n | rounds    | phases |");
    println!("|------|-----------|---------|-----------|--------|");
    for &n in &[16usize, 32, 64, 128] {
        let g = generators::random_connected(n, 0.1, n as u64).unwrap();
        let out = run_prim(&g, 1).unwrap();
        println!(
            "| {n:<4} | {:>9} | {:>7.2} | {:>9} | {:>6} |",
            out.stats.awake_max(),
            out.stats.awake_max() as f64 / n as f64,
            out.stats.rounds,
            out.phases,
        );
    }

    println!(
        "\nShape check: both sleeping rows keep awake/log2(n) flat (Θ(log n) awake);\n\
         rounds/(n log2 n) resp. rounds/(n N log2 n) flat (the round bounds);\n\
         the always-awake baseline pays awake = rounds, and the Prim baseline\n\
         shows sleep states alone don't help (awake/n flat, i.e. Θ(n) awake)."
    );
}
