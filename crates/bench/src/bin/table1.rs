//! Regenerates **Table 1** of the paper as measured scaling data.
//!
//! Paper rows:
//!
//! | Algorithm | Awake Time | Run Time |
//! |---|---|---|
//! | Randomized-MST | O(log n) | O(n log n) |
//! | Deterministic-MST | O(log n) | O(n N log n) |
//!
//! We sweep `n` and print, per algorithm, the measured awake complexity
//! and run time together with the normalized columns `awake / log₂ n`,
//! `rounds / (n log₂ n)`, and (deterministic) `rounds / (n N log₂ n)`.
//! The paper's claims hold iff the normalized columns stay flat.
//!
//! Every panel is a [`bench::Sweep`] over the registry; multi-seed panels
//! run their trials on all available cores (results are seed-deterministic
//! and identical to a single-threaded run).

// lint:allow(wall-clock) -- throughput column reports real elapsed time
use std::time::Instant;

use bench::{aggregate, Sweep};
use graphlib::generators;
use mst_core::registry;

fn sparse_family(p: f64) -> impl Fn(usize, u64) -> Result<graphlib::WeightedGraph, String> + Sync {
    move |n, seed| generators::random_connected(n, p, seed + n as u64).map_err(|e| e.to_string())
}

fn main() {
    let randomized = registry::find("randomized").expect("registry");
    let deterministic = registry::find("deterministic").expect("registry");
    let logstar = registry::find("logstar").expect("registry");
    let always_awake = registry::find("always-awake").expect("registry");
    let prim = registry::find("prim").expect("registry");

    println!("## Table 1, row 1: Randomized-MST — awake O(log n), run time O(n log n)\n");
    println!("| n    | awake max | awake/log2(n) | rounds    | rounds/(n·log2 n) | phases |");
    println!("|------|-----------|---------------|-----------|-------------------|--------|");
    let family = sparse_family(0.05);
    // lint:allow(wall-clock) -- throughput column reports real elapsed time
    let started = Instant::now();
    let results = Sweep::new(&family)
        .algorithm(randomized)
        .sizes([16usize, 32, 64, 128, 256, 512])
        .seeds(0..3)
        .run()
        .expect("randomized sweep");
    let panel1_elapsed = started.elapsed();
    for c in aggregate(&results) {
        let log_n = (c.n as f64).log2();
        println!(
            "| {:<4} | {:>9.0} | {:>13.1} | {:>9.0} | {:>17.2} | {:>6.1} |",
            c.n,
            c.awake_max,
            c.awake_max / log_n,
            c.rounds,
            c.rounds / (c.n as f64 * log_n),
            c.phases,
        );
    }

    println!("\n## Table 1, row 2: Deterministic-MST — awake O(log n), run time O(n·N·log n)\n");
    println!("| n    | N    | awake max | awake/log2(n) | rounds     | rounds/(n·N·log2 n) |");
    println!("|------|------|-----------|---------------|------------|---------------------|");
    let det_family = |n: usize, _seed: u64| {
        generators::random_connected(n, 0.08, n as u64).map_err(|e| e.to_string())
    };
    let results = Sweep::new(&det_family)
        .algorithm(deterministic)
        .sizes([8usize, 16, 32, 64, 128])
        .run()
        .expect("deterministic sweep");
    for c in aggregate(&results) {
        let log_n = (c.n as f64).log2();
        println!(
            "| {:<4} | {:<4.0} | {:>9.0} | {:>13.1} | {:>10.0} | {:>19.3} |",
            c.n,
            c.max_external_id,
            c.awake_max,
            c.awake_max / log_n,
            c.rounds,
            c.rounds / (c.n as f64 * c.max_external_id * log_n),
        );
    }

    println!("\n## Corollary 1: Cole–Vishkin variant — awake O(log n log* n), run time O(n log n log* n)\n");
    println!("| n    | N    | awake max | rounds     | rounds vs Fast-Awake |");
    println!("|------|------|-----------|------------|----------------------|");
    // Sparse ids make the comparison vivid: N = 16n.
    let sparse_ids = |n: usize, _seed: u64| {
        generators::with_id_space(
            generators::random_connected(n, 0.1, n as u64).map_err(|e| e.to_string())?,
            16 * n as u64,
            1,
        )
        .map_err(|e| e.to_string())
    };
    let results = Sweep::new(&sparse_ids)
        .algorithm(deterministic)
        .algorithm(logstar)
        .sizes([8usize, 16, 32, 64])
        .run()
        .expect("coloring sweep");
    let (fast, cv): (Vec<_>, Vec<_>) = results
        .iter()
        .partition(|r| r.algorithm == deterministic.name);
    for (f, c) in fast.iter().zip(&cv) {
        assert_eq!(
            f.total_weight, c.total_weight,
            "variants disagree on the MST"
        );
        println!(
            "| {:<4} | {:<4} | {:>9} | {:>10} | {:>19.1}x |",
            c.n,
            c.max_external_id,
            c.stats.awake_max(),
            c.stats.rounds,
            f.stats.rounds as f64 / c.stats.rounds as f64,
        );
    }

    println!("\n## Baseline: always-awake GHS (traditional model, awake = run time)\n");
    println!("| n    | awake max | rounds    | awake/rounds |");
    println!("|------|-----------|-----------|--------------|");
    let plain = |n: usize, _seed: u64| {
        generators::random_connected(n, 0.05, n as u64).map_err(|e| e.to_string())
    };
    let results = Sweep::new(&plain)
        .algorithm(always_awake)
        .sizes([16usize, 64, 256])
        .run()
        .expect("always-awake sweep");
    for c in aggregate(&results) {
        println!(
            "| {:<4} | {:>9.0} | {:>9.0} | {:>12.2} |",
            c.n,
            c.awake_max,
            c.rounds,
            c.awake_max / c.rounds,
        );
    }

    println!("\n## Message complexity (GHS lineage: O(m log n) for the randomized variant)\n");
    println!("| n    | m     | messages | msgs/(m·log2 n) |");
    println!("|------|-------|----------|-----------------|");
    let results = Sweep::new(&plain)
        .algorithm(randomized)
        .sizes([32usize, 128, 512])
        .seeds([2])
        .run()
        .expect("message sweep");
    for c in aggregate(&results) {
        println!(
            "| {:<4} | {:<5.0} | {:>8.0} | {:>15.2} |",
            c.n,
            c.graph_edges,
            c.messages,
            c.messages / (c.graph_edges * (c.n as f64).log2()),
        );
    }

    println!("\n## Baseline: Prim-style sequential growth (sleeping, but Θ(n) awake)\n");
    println!("| n    | awake max | awake/n | rounds    | phases |");
    println!("|------|-----------|---------|-----------|--------|");
    let prim_family = |n: usize, _seed: u64| {
        generators::random_connected(n, 0.1, n as u64).map_err(|e| e.to_string())
    };
    let results = Sweep::new(&prim_family)
        .algorithm(prim)
        .sizes([16usize, 32, 64, 128])
        .run()
        .expect("prim sweep");
    for c in aggregate(&results) {
        println!(
            "| {:<4} | {:>9.0} | {:>7.2} | {:>9.0} | {:>6.0} |",
            c.n,
            c.awake_max,
            c.awake_max / c.n as f64,
            c.rounds,
            c.phases,
        );
    }

    println!(
        "\nShape check: both sleeping rows keep awake/log2(n) flat (Θ(log n) awake);\n\
         rounds/(n log2 n) resp. rounds/(n N log2 n) flat (the round bounds);\n\
         the always-awake baseline pays awake = rounds, and the Prim baseline\n\
         shows sleep states alone don't help (awake/n flat, i.e. Θ(n) awake)."
    );
    println!(
        "\nWall clock: randomized panel (n ≤ 512 × 3 seeds) took {:.2?} on {} worker thread(s).",
        panel1_elapsed,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
