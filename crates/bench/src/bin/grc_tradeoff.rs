//! Regenerates the **Theorem 4 / Figure 1** experiment: the `Ω̃(n)` lower
//! bound on awake × round complexity, on the `G_rc` family.
//!
//! Panels:
//!
//! 1. `G_rc` geometry per size (diameter `Θ(c/log n)`, `|I| = O(log n)`);
//! 2. awake × rounds products for the sleeping algorithm and the
//!    always-awake baseline, normalized by `n`;
//! 3. congestion at the internal tree nodes `I` while solving MST
//!    instances that encode set disjointness (Lemmas 8–10): total bits
//!    into `I` vs the SD input size `r`.

use graphlib::traversal;
use lowerbound::congestion::internal_traffic;
use lowerbound::grc::Grc;
use lowerbound::reduction::{css_to_mst, mark_edges, mst_uses_unmarked};
use lowerbound::sd::SdInstance;
use mst_core::registry;

fn main() {
    let randomized = registry::find("randomized").expect("registry");
    let always_awake = registry::find("always-awake").expect("registry");
    let shapes: Vec<(usize, usize)> = vec![(4, 32), (6, 48), (8, 64), (8, 96), (12, 96)];

    println!("## G_rc geometry\n");
    println!("| r  | c   | n    | |X| | |I| | diameter | c/log2(n) |");
    println!("|----|-----|------|-----|-----|----------|-----------|");
    let mut grcs = Vec::new();
    for &(r, c) in &shapes {
        let grc = Grc::build(r, c, 7).unwrap();
        let d = traversal::diameter(&grc.graph).unwrap();
        println!(
            "| {r:<2} | {c:<3} | {:<4} | {:<3} | {:<3} | {d:>8} | {:>9.1} |",
            grc.n(),
            grc.x_nodes.len(),
            grc.internal.len(),
            c as f64 / (grc.n() as f64).log2()
        );
        grcs.push(grc);
    }

    println!("\n## Awake × rounds on G_rc (Theorem 4: product ∈ Ω̃(n))\n");
    println!("| n    | algorithm        | awake | rounds  | product    | product/n |");
    println!("|------|------------------|-------|---------|------------|-----------|");
    for grc in &grcs {
        let n = grc.n() as f64;
        let sleeping = randomized.run(&grc.graph, 3).unwrap();
        let awake = always_awake.run(&grc.graph, 3).unwrap();
        for (name, out) in [("Randomized-MST", &sleeping), ("GHS always-awake", &awake)] {
            let product = out.stats.awake_round_product();
            println!(
                "| {:<4} | {name:<16} | {:>5} | {:>7} | {:>10} | {:>9.1} |",
                grc.n(),
                out.stats.awake_max(),
                out.stats.rounds,
                product,
                product as f64 / n
            );
        }
    }

    println!("\n## Congestion at I while solving SD-encoded MST (Lemma 8)\n");
    println!(
        "| n    | r (SD bits) | bits into I | busiest I bits | busiest I awake | SD decoded |"
    );
    println!(
        "|------|-------------|-------------|----------------|-----------------|------------|"
    );
    for grc in &grcs {
        let sd = SdInstance::random(grc.sd_bits(), 5);
        let marked = mark_edges(grc, &sd);
        let weighted = css_to_mst(&grc.graph, &marked);
        let out = randomized.run(&weighted, 5).unwrap();
        let ok = mst_uses_unmarked(&marked, &out.edges) != sd.disjoint();
        let t = internal_traffic(grc, &out.stats);
        println!(
            "| {:<4} | {:<11} | {:>11} | {:>14} | {:>15} | {:>10} |",
            grc.n(),
            grc.sd_bits(),
            t.total_bits,
            t.max_bits,
            t.max_awake,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    println!(
        "\nShape: every product/n stays ≥ 1 (the trade-off lower bound); the\n\
         always-awake baseline's product is orders of magnitude above the\n\
         sleeping algorithm's, which sits near the frontier."
    );
}
