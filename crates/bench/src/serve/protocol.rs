//! Newline-delimited JSON protocol for the serve daemon.
//!
//! One request per line, one response line per request, over a Unix
//! domain socket. The parser is hand-rolled (this workspace is
//! dependency-free by design — no serde): a small recursive-descent
//! JSON reader whose numbers stay **raw strings** until a field asks
//! for a type, so a 64-bit seed like `18446744073709551615` survives
//! without an `f64` round-trip mangling it.
//!
//! ## Request grammar
//!
//! ```json
//! {"id":1,"cmd":"run","alg":"randomized","graph":"ring:64","seed":7}
//! {"id":2,"cmd":"run","alg":"logstar","graph":"grid:4x8","seed":1,
//!  "executor":"calendar","shards":4,
//!  "faults":{"fault_seed":9,"drop_ppm":200,"crashes":[[3,40]]}}
//! {"id":3,"cmd":"sweep","algs":"randomized,aa",
//!  "template":"ring:{n}","sizes":[16,32],"seeds":[0,1]}
//! {"id":4,"cmd":"report","sizes":[8,12],"seeds":[0,1]}
//! {"id":5,"cmd":"chaos","seed":3,"sizes":[8,12],"trials":2}
//! {"id":6,"cmd":"stats"}
//! {"id":7,"cmd":"shutdown"}
//! ```
//!
//! ## Response envelope
//!
//! ```json
//! {"id":1,"ok":true,"source":"exec","result":{...}}
//! {"id":1,"ok":false,"source":"cache","error":{"code":"run.disconnected","message":"..."}}
//! ```
//!
//! `source` says where the bytes came from: `"exec"` (this request ran
//! it), `"cache"` (bounded LRU hit), `"coalesced"` (an identical
//! request was already in flight and this one rode along),
//! `"admission"` (shed by the token bucket), `"control"` (stats /
//! shutdown), `"reject"` (malformed request). The `result` / `error`
//! fragment of a cache or coalesced response is byte-identical to the
//! cold execution that produced it — that is the service's core
//! contract and the thing `tests/serve.rs` hammers on.

use graphlib::WeightedGraph;
use mst_core::wire::{fnv64, RunRequest};
use mst_core::{AlgorithmSpec, MstOutcome};
use netsim::{EnergyModel, Executor, FaultPlan};

use mst_core::wire::CanonicalRun;

/// Typed serve-plane error codes (the `run.*` / `sim.*` families come
/// from [`mst_core::runner::RUN_ERROR_CODES`] and
/// [`netsim::SIM_ERROR_CODES`]). Frozen spellings: responses embed
/// these, and clients match on them.
pub mod codes {
    /// The request line was not valid JSON or missed required fields.
    pub const PARSE: &str = "request.parse";
    /// `alg`/`algs` named an algorithm the registry does not know.
    pub const BAD_ALGORITHM: &str = "request.bad-algorithm";
    /// A sweep template did not contain the `{n}` placeholder.
    pub const BAD_TEMPLATE: &str = "request.bad-template";
    /// `executor` was not `sync`, `calendar`, or `naive`.
    pub const BAD_EXECUTOR: &str = "request.bad-executor";
    /// The graph spec failed to build (deterministic, cacheable).
    pub const BAD_GRAPH: &str = "request.bad-graph";
    /// Shed by the token bucket: the daemon is over budget.
    pub const OVER_CAPACITY: &str = "serve.over-capacity";
    /// The daemon is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "serve.shutting-down";
    /// A worker panicked or a harness invariant broke.
    pub const INTERNAL: &str = "serve.internal";
}

// ---------------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order in a `Vec` (no
/// hashing anywhere near the wire), numbers keep their raw spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, unparsed — callers choose u64/i64/f64 as the field needs.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as array elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid utf-8 in number".to_string())?;
            if raw.is_empty() || raw == "-" {
                return Err(format!("malformed number at offset {start}"));
            }
            Ok(Json::Num(raw.to_string()))
        }
        Some(c) => Err(format!(
            "unexpected byte '{}' at offset {pos}",
            *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape in string".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute (or serve from cache) one canonical run.
    Run(CanonicalRun),
    /// A full benchmark sweep over a size × seed grid.
    Sweep {
        /// Resolved algorithms, in request order.
        algs: Vec<&'static AlgorithmSpec>,
        /// Graph template containing `{n}`.
        template: String,
        /// Graph sizes.
        sizes: Vec<usize>,
        /// Seeds per size.
        seeds: Vec<u64>,
    },
    /// The EXPERIMENTS-style scaling report.
    Report {
        /// Graph sizes.
        sizes: Vec<usize>,
        /// Seeds per size.
        seeds: Vec<u64>,
    },
    /// A chaos (fault-sweep) campaign.
    Chaos {
        /// Campaign master seed.
        seed: u64,
        /// Graph sizes.
        sizes: Vec<usize>,
        /// Trials per cell.
        trials: u64,
    },
    /// Counter snapshot (control plane, never cached, never shed).
    Stats,
    /// Begin graceful drain (control plane).
    Shutdown,
}

/// A request plus its client-chosen correlation id.
#[derive(Debug, Clone)]
pub struct RequestEnvelope {
    /// Echoed verbatim in the response. Defaults to 0 when absent.
    pub id: u64,
    /// The validated request.
    pub request: Request,
}

/// A request that failed validation: carries whatever id could be
/// salvaged plus a typed code, ready to render as a reject response.
#[derive(Debug, Clone)]
pub struct RequestError {
    /// Salvaged correlation id (0 if the line was unparseable).
    pub id: u64,
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

fn u64_list(value: Option<&Json>, default: &[u64]) -> Result<Vec<u64>, String> {
    match value {
        None => Ok(default.to_vec()),
        Some(v) => v
            .as_arr()
            .ok_or("expected an array of integers")?
            .iter()
            .map(|item| {
                item.as_u64()
                    .ok_or_else(|| "expected an integer".to_string())
            })
            .collect(),
    }
}

fn usize_list(value: Option<&Json>, default: &[usize]) -> Result<Vec<usize>, String> {
    let list = u64_list(value, &[])?;
    if list.is_empty() {
        return Ok(default.to_vec());
    }
    Ok(list.into_iter().map(|n| n as usize).collect())
}

/// Parses one NDJSON request line into a validated envelope.
pub fn parse_request(line: &str) -> Result<RequestEnvelope, RequestError> {
    let doc = Json::parse(line).map_err(|e| RequestError {
        id: 0,
        code: codes::PARSE,
        message: format!("bad JSON: {e}"),
    })?;
    let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
    let fail = |code: &'static str, message: String| RequestError { id, code, message };
    let parse_fail = |message: String| fail(codes::PARSE, message);

    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(codes::PARSE, "missing string field 'cmd'".into()))?;

    let request = match cmd {
        "run" => {
            let field = |name: &str| {
                doc.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| parse_fail(format!("run: missing string field '{name}'")))
            };
            let executor = match doc.get("executor").and_then(Json::as_str) {
                None => None,
                Some(name) => Some(Executor::parse(name).ok_or_else(|| {
                    fail(
                        codes::BAD_EXECUTOR,
                        format!("unknown executor '{name}' (expected sync, calendar, or naive)"),
                    )
                })?),
            };
            let energy = match doc.get("energy").and_then(Json::as_str) {
                None => None,
                Some(spec) => Some(EnergyModel::parse(spec).ok_or_else(|| {
                    parse_fail(format!(
                        "unknown energy model '{spec}' (expected 'reference', 'radio', \
                         or a comma list of round:/tx:/rx:/idle:/budget: costs)"
                    ))
                })?),
            };
            // A bare budget prices the run under the reference model.
            let energy = match doc.get("budget").and_then(Json::as_u64) {
                Some(b) => Some(energy.unwrap_or_else(EnergyModel::reference).with_budget(b)),
                None => energy,
            };
            let req = RunRequest {
                alg: field("alg")?,
                graph: field("graph")?,
                seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
                executor,
                shards: doc
                    .get("shards")
                    .and_then(Json::as_u64)
                    .map(|n| n.max(1) as u32),
                faults: parse_fault_plan(doc.get("faults")).map_err(&parse_fail)?,
                energy,
            };
            let canonical = req
                .canonicalize()
                .map_err(|e| fail(codes::BAD_ALGORITHM, e))?;
            Request::Run(canonical)
        }
        "sweep" => {
            let raw_algs = doc
                .get("algs")
                .and_then(Json::as_str)
                .unwrap_or("randomized");
            let mut algs = Vec::new();
            for name in raw_algs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let spec = mst_core::registry::find(name).ok_or_else(|| {
                    fail(codes::BAD_ALGORITHM, format!("unknown algorithm '{name}'"))
                })?;
                algs.push(spec);
            }
            if algs.is_empty() {
                return Err(fail(codes::BAD_ALGORITHM, "empty algorithm list".into()));
            }
            let template = doc
                .get("template")
                .and_then(Json::as_str)
                .unwrap_or("ring:{n}")
                .to_string();
            if !template.contains("{n}") {
                return Err(fail(
                    codes::BAD_TEMPLATE,
                    format!("template '{template}' has no {{n}} placeholder"),
                ));
            }
            Request::Sweep {
                algs,
                template,
                sizes: usize_list(doc.get("sizes"), &[16, 32]).map_err(&parse_fail)?,
                seeds: u64_list(doc.get("seeds"), &[0]).map_err(&parse_fail)?,
            }
        }
        "report" => Request::Report {
            sizes: usize_list(doc.get("sizes"), &[8, 12, 16, 24]).map_err(&parse_fail)?,
            seeds: u64_list(doc.get("seeds"), &[0, 1]).map_err(&parse_fail)?,
        },
        "chaos" => Request::Chaos {
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            sizes: usize_list(doc.get("sizes"), &[8, 12]).map_err(&parse_fail)?,
            trials: doc.get("trials").and_then(Json::as_u64).unwrap_or(2).max(1),
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(fail(
                codes::PARSE,
                format!(
                    "unknown cmd '{other}' (expected run, sweep, report, chaos, stats, shutdown)"
                ),
            ))
        }
    };
    Ok(RequestEnvelope { id, request })
}

fn parse_fault_plan(value: Option<&Json>) -> Result<FaultPlan, String> {
    let Some(obj) = value else {
        return Ok(FaultPlan::default());
    };
    let num = |name: &str| -> Result<u64, String> {
        match obj.get(name) {
            None => Ok(0),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("faults.{name}: expected an unsigned integer")),
        }
    };
    let mut plan = FaultPlan::seeded(num("fault_seed")?)
        .with_drop_ppm(num("drop_ppm")? as u32)
        .with_duplicate_ppm(num("duplicate_ppm")? as u32)
        .with_spurious_sleep_ppm(num("spurious_sleep_ppm")? as u32)
        .with_wake_jitter(num("wake_jitter")?);
    if let Some(crashes) = obj.get("crashes") {
        let items = crashes
            .as_arr()
            .ok_or("faults.crashes: expected an array of [node, round] pairs")?;
        for pair in items {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("faults.crashes: expected [node, round] pairs")?;
            let node = pair[0]
                .as_u64()
                .ok_or("faults.crashes: node must be an unsigned integer")?;
            let round = pair[1]
                .as_u64()
                .ok_or("faults.crashes: round must be an unsigned integer")?;
            plan = plan.with_crash(node as u32, round);
        }
    }
    Ok(plan)
}

impl Request {
    /// The canonical cache-key string for cacheable requests (`None` for
    /// the control plane). Run keys come from
    /// [`CanonicalRun::cache_key`]; batch keys spell out every grid
    /// parameter. Executor knobs never appear — results are
    /// driver-independent by the bit-identity proofs.
    pub fn cache_key(&self) -> Option<String> {
        fn join<T: std::fmt::Display>(items: &[T]) -> String {
            items.iter().map(T::to_string).collect::<Vec<_>>().join(",")
        }
        match self {
            Request::Run(run) => Some(run.cache_key()),
            Request::Sweep {
                algs,
                template,
                sizes,
                seeds,
            } => {
                let names: Vec<&str> = algs.iter().map(|a| a.name).collect();
                Some(format!(
                    "sweep|algs={}|template={template}|sizes={}|seeds={}",
                    names.join(","),
                    join(sizes),
                    join(seeds)
                ))
            }
            Request::Report { sizes, seeds } => Some(format!(
                "report|sizes={}|seeds={}",
                join(sizes),
                join(seeds)
            )),
            Request::Chaos {
                seed,
                sizes,
                trials,
            } => Some(format!(
                "chaos|seed={seed}|sizes={}|trials={trials}",
                join(sizes)
            )),
            Request::Stats | Request::Shutdown => None,
        }
    }

    /// FNV-1a 64 of [`Request::cache_key`].
    pub fn fingerprint(&self) -> Option<u64> {
        self.cache_key().map(|k| fnv64(k.as_bytes()))
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Where a response's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// This request triggered the execution.
    Exec,
    /// Served from the bounded LRU.
    Cache,
    /// Rode along on an identical in-flight execution.
    Coalesced,
    /// Shed by the token bucket before any work happened.
    Admission,
    /// Control plane (stats, shutdown).
    Control,
    /// The request never validated.
    Reject,
}

impl Source {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Exec => "exec",
            Source::Cache => "cache",
            Source::Coalesced => "coalesced",
            Source::Admission => "admission",
            Source::Control => "control",
            Source::Reject => "reject",
        }
    }
}

/// Renders an error body fragment: `{"code":...,"message":...}`.
pub fn render_error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"code\":\"{}\",\"message\":\"{}\"}}",
        json_escape(code),
        json_escape(message)
    )
}

/// Wraps a body fragment in the response envelope. `ok` chooses whether
/// the fragment lands under `result` or `error`.
pub fn render_response(id: u64, source: Source, ok: bool, body: &str) -> String {
    let field = if ok { "result" } else { "error" };
    format!(
        "{{\"id\":{id},\"ok\":{ok},\"source\":\"{}\",\"{field}\":{body}}}",
        source.as_str()
    )
}

/// Renders the deterministic run-result fragment — the CLI's
/// `--json` output minus its one machine-dependent field
/// (`peak_rss_bytes`), so the fragment is cacheable and byte-comparable
/// across processes. Field order and formatting otherwise mirror
/// [`render_json`](../../cli) exactly.
pub fn render_run_result(
    alg: &AlgorithmSpec,
    graph: &WeightedGraph,
    seed: u64,
    faults: Option<&FaultPlan>,
    energy: Option<&EnergyModel>,
    out: &MstOutcome,
) -> String {
    let plan = faults.cloned().unwrap_or_default();
    let crashes: Vec<String> = plan
        .crashes
        .iter()
        .map(|(node, round)| format!("[{node},{round}]"))
        .collect();
    // The energy object appears only for runs under an active model, so
    // plain-run fragments stay byte-identical to the pre-energy wire
    // format (pinned goldens, cross-process cmp artifacts).
    let energy = match energy {
        Some(model) => format!(
            ",\"energy\":{{\"model\":\"{}\",\"total\":{},\"max\":{},\
             \"idle_listen_rounds\":{},\"exhausted_nodes\":{}}}",
            model.spec_string(),
            out.stats.energy_total(),
            out.stats.energy_max(),
            out.stats.idle_listen_rounds,
            out.stats.exhausted_nodes,
        ),
        None => String::new(),
    };
    format!(
        "{{\"algorithm\":\"{}\",\"seed\":{},\"nodes\":{},\"edges\":{},\"tree_edges\":{},\
         \"total_weight\":{},\"phases\":{},\"awake_max\":{},\"awake_avg\":{:.3},\
         \"rounds\":{},\"awake_round_product\":{},\"messages_delivered\":{},\
         \"messages_lost\":{},\"max_message_bits\":{},\"log_constant\":{},\
         \"injected_drops\":{},\"dup_deliveries\":{},\"crashed_nodes\":{},\
         \"memory\":{{\"graph_bytes\":{},\"arena_peak_envelopes\":{}}}{}\
         ,\"fault_plan\":{{\"fault_seed\":{},\"drop_ppm\":{},\"duplicate_ppm\":{},\
         \"spurious_sleep_ppm\":{},\"wake_jitter\":{},\"crashes\":[{}]}}}}",
        alg.name,
        seed,
        graph.node_count(),
        graph.edge_count(),
        out.edges.len(),
        graph.total_weight(out.edges.iter().copied()),
        out.phases,
        out.stats.awake_max(),
        out.stats.awake_avg(),
        out.stats.rounds,
        out.stats.awake_round_product(),
        out.stats.messages_delivered,
        out.stats.messages_lost,
        out.stats.max_message_bits,
        out.stats.log_constant(graph.node_count()),
        out.stats.injected_drops,
        out.stats.dup_deliveries,
        out.stats.crashed_nodes,
        out.stats.graph_bytes,
        out.stats.arena_peak_envelopes,
        energy,
        plan.fault_seed,
        plan.drop_ppm,
        plan.duplicate_ppm,
        plan.spurious_sleep_ppm,
        plan.wake_jitter,
        crashes.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_the_request_shapes() {
        let doc = Json::parse(
            r#"{"id":3,"cmd":"run","alg":"randomized","graph":"ring:64","seed":18446744073709551615,"faults":{"drop_ppm":200,"crashes":[[3,40],[5,9]]}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(3));
        // u64::MAX survives: numbers are raw strings, never f64.
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        let crashes = doc.get("faults").unwrap().get("crashes").unwrap();
        assert_eq!(crashes.as_arr().unwrap().len(), 2);
    }

    #[test]
    fn json_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nulll", "{\"a\":1}x", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn json_unescapes_strings() {
        let doc = Json::parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(json_escape("a\"b\\c\nd"), r#"a\"b\\c\nd"#);
    }

    #[test]
    fn parse_request_validates_each_command() {
        let env =
            parse_request(r#"{"id":1,"cmd":"run","alg":"randomized","graph":"ring:8","seed":7}"#)
                .unwrap();
        assert_eq!(env.id, 1);
        assert!(matches!(env.request, Request::Run(_)));

        let err =
            parse_request(r#"{"id":2,"cmd":"run","alg":"nope","graph":"ring:8"}"#).unwrap_err();
        assert_eq!(err.id, 2);
        assert_eq!(err.code, codes::BAD_ALGORITHM);

        let err = parse_request(r#"{"id":3,"cmd":"sweep","template":"ring:64"}"#).unwrap_err();
        assert_eq!(err.code, codes::BAD_TEMPLATE);

        let err = parse_request(
            r#"{"id":4,"cmd":"run","alg":"prim","graph":"ring:8","executor":"warp"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, codes::BAD_EXECUTOR);

        let err = parse_request("not json").unwrap_err();
        assert_eq!((err.id, err.code), (0, codes::PARSE));

        assert!(matches!(
            parse_request(r#"{"id":5,"cmd":"stats"}"#).unwrap().request,
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"id":6,"cmd":"shutdown"}"#)
                .unwrap()
                .request,
            Request::Shutdown
        ));
    }

    #[test]
    fn cache_keys_cover_every_grid_parameter() {
        let sweep = parse_request(
            r#"{"cmd":"sweep","algs":"randomized,always-awake","template":"ring:{n}","sizes":[16],"seeds":[0,1]}"#,
        )
        .unwrap();
        assert_eq!(
            sweep.request.cache_key().unwrap(),
            "sweep|algs=randomized,always-awake|template=ring:{n}|sizes=16|seeds=0,1"
        );
        let chaos = parse_request(r#"{"cmd":"chaos","seed":3,"sizes":[8,12],"trials":2}"#).unwrap();
        assert_eq!(
            chaos.request.cache_key().unwrap(),
            "chaos|seed=3|sizes=8,12|trials=2"
        );
        let report = parse_request(r#"{"cmd":"report"}"#).unwrap();
        assert_eq!(
            report.request.cache_key().unwrap(),
            "report|sizes=8,12,16,24|seeds=0,1"
        );
        assert!(parse_request(r#"{"cmd":"stats"}"#)
            .unwrap()
            .request
            .cache_key()
            .is_none());
    }

    #[test]
    fn envelope_shape_is_stable() {
        assert_eq!(
            render_response(7, Source::Cache, true, "{\"x\":1}"),
            "{\"id\":7,\"ok\":true,\"source\":\"cache\",\"result\":{\"x\":1}}"
        );
        assert_eq!(
            render_response(
                8,
                Source::Admission,
                false,
                &render_error_body(codes::OVER_CAPACITY, "admission bucket empty")
            ),
            "{\"id\":8,\"ok\":false,\"source\":\"admission\",\"error\":\
             {\"code\":\"serve.over-capacity\",\"message\":\"admission bucket empty\"}}"
        );
    }
}
