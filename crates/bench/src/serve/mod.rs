//! Sweep-as-a-service: the `sleeping-mst serve` daemon.
//!
//! A long-lived process owning a fixed worker pool of warm executor
//! scratches, accepting newline-delimited JSON requests (run / sweep /
//! report / chaos — see [`protocol`]) over a Unix domain socket and
//! answering each line with exactly one response line. Three properties
//! the whole design hangs on:
//!
//! * **Bit-determinism is cacheability.** Every simulation artifact is
//!   a pure function of its canonical request
//!   ([`mst_core::wire::CanonicalRun`]), so responses are cached in a
//!   bounded deterministic LRU ([`cache::ResultCache`]) and identical
//!   in-flight requests coalesce onto a single execution — the repeat
//!   requester gets the *same bytes* the cold run produced, marked
//!   `"source":"cache"` / `"coalesced"` so clients can tell.
//! * **Admission, not queueing.** A token bucket
//!   ([`admission::TokenBucket`]) guards the front door; over-budget
//!   requests are shed immediately with the typed error
//!   `serve.over-capacity` instead of piling up latency behind the pool.
//! * **Graceful drain.** Shutdown (a `shutdown` request or
//!   [`Server::begin_shutdown`]) stops accepting work, lets every
//!   queued and in-flight job publish its response, then tears down
//!   workers, connections, and the socket file — no request that was
//!   admitted is ever dropped.
//!
//! The wall clock appears in exactly two places — the daemon's monotonic
//! epoch (admission timestamps) and the loadgen's latency measurements —
//! both quarantined behind explicit `wall-clock` lint waivers; everything
//! the simulator computes stays seed-deterministic.

pub mod admission;
pub mod cache;
pub mod protocol;
pub(crate) mod worker;

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
// lint:allow(wall-clock) -- the daemon's monotonic epoch for admission timestamps
use std::time::Instant;

use mst_core::MstScratch;

use self::admission::TokenBucket;
use self::protocol::{render_error_body, render_response, Request, Source};
use self::worker::{Dispatch, Job, JobKind};

pub use self::worker::Counters;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path; a stale file is replaced at bind time.
    pub socket: PathBuf,
    /// Worker threads, each owning one warm [`MstScratch`]. Min 1.
    pub workers: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Token-bucket burst capacity.
    pub bucket_capacity: u64,
    /// Token-bucket refill rate (tokens per second).
    pub refill_per_sec: u64,
}

impl ServeConfig {
    /// A config with production-ish defaults on the given socket path.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            workers: 2,
            cache_capacity: 256,
            bucket_capacity: 4096,
            refill_per_sec: 4096,
        }
    }
}

/// Final state a drained daemon reports from [`Server::join`].
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Front-door counters.
    pub counters: Counters,
    /// Entries resident in the cache at shutdown.
    pub cache_len: usize,
    /// Entries evicted over the daemon's lifetime.
    pub cache_evictions: u64,
}

struct ServerInner {
    dispatch: Arc<Dispatch>,
    /// Monotonic epoch; admission timestamps are nanoseconds since this.
    epoch: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
    workers: usize,
    /// Write-half clones of every accepted connection, for forced
    /// close during teardown.
    conns: Mutex<Vec<UnixStream>>,
    /// Per-connection reader threads (each joins its own writer).
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerInner {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.dispatch.state.lock().expect("dispatch lock");
            st.draining = true;
        }
        self.dispatch.work.notify_all();
        // Unblock the accept loop so it can observe the flag.
        let _ = UnixStream::connect(&self.socket);
    }
}

/// A running daemon. Start with [`Server::start`], stop with a client
/// `shutdown` request or [`Server::begin_shutdown`], then reap with
/// [`Server::join`].
pub struct Server {
    inner: Arc<ServerInner>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the socket (replacing a stale file), spawns the worker pool
    /// and the accept loop, and returns immediately.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)
            .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?;
        let dispatch = Arc::new(Dispatch::new(
            config.cache_capacity,
            TokenBucket::new(config.bucket_capacity, config.refill_per_sec),
        ));
        let inner = Arc::new(ServerInner {
            dispatch: Arc::clone(&dispatch),
            // lint:allow(wall-clock) -- admission timestamps are relative to this monotonic epoch
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            socket: config.socket.clone(),
            workers: config.workers.max(1),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let dispatch = Arc::clone(&dispatch);
                thread::spawn(move || {
                    let mut scratch = MstScratch::new();
                    dispatch.worker_loop(&mut scratch);
                })
            })
            .collect();
        let accept_inner = Arc::clone(&inner);
        let listener = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if let Ok(clone) = stream.try_clone() {
                    accept_inner.conns.lock().expect("conns lock").push(clone);
                }
                let conn_inner = Arc::clone(&accept_inner);
                let handle = thread::spawn(move || handle_conn(conn_inner, stream));
                accept_inner
                    .readers
                    .lock()
                    .expect("readers lock")
                    .push(handle);
            }
        });
        Ok(Server {
            inner,
            listener: Some(listener),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.inner.socket
    }

    /// Initiates graceful shutdown from the hosting process (equivalent
    /// to a client `shutdown` request). Idempotent.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Blocks until shutdown is initiated, every admitted job has
    /// published its response, and all threads have exited; removes the
    /// socket file and returns the final counters.
    pub fn join(mut self) -> Result<ServerStats, String> {
        if let Some(listener) = self.listener.take() {
            listener.join().map_err(|_| "accept loop panicked")?;
        }
        {
            let mut st = self.inner.dispatch.state.lock().expect("dispatch lock");
            while !(st.queue.is_empty() && st.in_flight.is_empty()) {
                st = self.inner.dispatch.idle.wait(st).expect("dispatch lock");
            }
        }
        self.inner.dispatch.work.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().map_err(|_| "worker panicked")?;
        }
        for conn in self.inner.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let readers: Vec<JoinHandle<()>> = self
            .inner
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for reader in readers {
            let _ = reader.join();
        }
        let _ = std::fs::remove_file(&self.inner.socket);
        let st = self.inner.dispatch.state.lock().expect("dispatch lock");
        Ok(ServerStats {
            counters: st.counters,
            cache_len: st.cache.len(),
            cache_evictions: st.cache.evictions,
        })
    }
}

/// One connection: a reader loop on this thread plus a dedicated writer
/// thread, decoupled by a channel so a worker publishing a result never
/// blocks on a slow client socket.
fn handle_conn(inner: Arc<ServerInner>, stream: UnixStream) {
    let (tx, rx) = mpsc::channel::<String>();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for line in rx {
            // A hung-up client just loses its remaining lines; keep
            // draining the channel so senders never observe an error.
            let _ = out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush());
        }
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        respond(&inner, line.trim(), &tx);
    }
    drop(tx);
    let _ = writer.join();
}

/// Handles one request line: immediate response for control-plane,
/// reject, shed, and cache-hit paths; queued/coalesced work responds
/// later through the connection's writer channel.
fn respond(inner: &ServerInner, line: &str, tx: &Sender<String>) {
    let envelope = match protocol::parse_request(line) {
        Err(err) => {
            inner
                .dispatch
                .state
                .lock()
                .expect("dispatch lock")
                .counters
                .rejected += 1;
            let body = render_error_body(err.code, &err.message);
            let _ = tx.send(render_response(err.id, Source::Reject, false, &body));
            return;
        }
        Ok(envelope) => envelope,
    };
    match envelope.request {
        Request::Stats => {
            let body = {
                let st = inner.dispatch.state.lock().expect("dispatch lock");
                st.counters
                    .render(st.cache.len(), st.cache.evictions, inner.workers)
            };
            let _ = tx.send(render_response(envelope.id, Source::Control, true, &body));
        }
        Request::Shutdown => {
            let _ = tx.send(render_response(
                envelope.id,
                Source::Control,
                true,
                "{\"draining\":true}",
            ));
            inner.begin_shutdown();
        }
        request => {
            let fingerprint = request.fingerprint().expect("cacheable request");
            let kind = match request {
                Request::Run(run) => JobKind::Run(run),
                Request::Sweep {
                    algs,
                    template,
                    sizes,
                    seeds,
                } => JobKind::Sweep {
                    algs,
                    template,
                    sizes,
                    seeds,
                },
                Request::Report { sizes, seeds } => JobKind::Report { sizes, seeds },
                Request::Chaos {
                    seed,
                    sizes,
                    trials,
                } => JobKind::Chaos {
                    seed,
                    sizes,
                    trials,
                },
                Request::Stats | Request::Shutdown => unreachable!("handled above"),
            };
            let now_nanos = inner.epoch.elapsed().as_nanos() as u64;
            let immediate = inner.dispatch.submit(
                Job { fingerprint, kind },
                envelope.id,
                tx.clone(),
                now_nanos,
            );
            if let Some(line) = immediate {
                let _ = tx.send(line);
            }
        }
    }
}
