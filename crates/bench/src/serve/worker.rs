//! Dispatch state and the worker pool.
//!
//! All coordination lives behind one `Mutex<DispatchState>` plus two
//! condvars: `work` (workers sleep here waiting for jobs) and `idle`
//! (the drain path sleeps here waiting for the queue *and* the
//! in-flight table to empty). The lock covers admission, cache lookup,
//! coalescing, and result publication, so the front-door decision for a
//! request is atomic: between "miss recorded" and "waiter registered"
//! nothing can race in and double-execute.
//!
//! Each worker owns a warm [`MstScratch`] for its whole lifetime — the
//! executor arena is paid for once per worker, not once per request
//! (the same trick the sweep harness's worker threads use).

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use graphlib::generators;
use mst_core::wire::CanonicalRun;
use mst_core::{AlgorithmSpec, MstScratch};

use crate::harness::{self, Sweep};
use crate::serve::admission::TokenBucket;
use crate::serve::cache::ResultCache;
use crate::serve::protocol::{
    codes, render_error_body, render_response, render_run_result, Source,
};
use crate::{chaos, report};

/// The work a job executes; rendering is part of the job so cached
/// bytes are exactly what a cold response would have carried.
#[derive(Debug, Clone)]
pub(crate) enum JobKind {
    /// One canonical algorithm run.
    Run(CanonicalRun),
    /// A harness sweep over a size × seed grid.
    Sweep {
        algs: Vec<&'static AlgorithmSpec>,
        template: String,
        sizes: Vec<usize>,
        seeds: Vec<u64>,
    },
    /// The scaling report.
    Report { sizes: Vec<usize>, seeds: Vec<u64> },
    /// A chaos campaign.
    Chaos {
        seed: u64,
        sizes: Vec<usize>,
        trials: u64,
    },
}

/// A queued unit of work, keyed by its canonical fingerprint.
#[derive(Debug)]
pub(crate) struct Job {
    pub fingerprint: u64,
    pub kind: JobKind,
}

/// A requester waiting on an in-flight execution.
#[derive(Debug)]
pub(crate) struct Waiter {
    /// Correlation id to stamp on the response.
    pub id: u64,
    /// The connection's writer channel.
    pub tx: Sender<String>,
    /// `false` for the requester that triggered the execution,
    /// `true` for everyone who coalesced onto it.
    pub coalesced: bool,
}

/// Monotone front-door counters; a snapshot renders as the `stats`
/// response and the final [`ServerStats`](crate::serve::ServerStats).
/// Invariant (checked by `tests/serve.rs`):
/// `received == shed + hits + coalesced + misses` and
/// `executed == misses` once the daemon has drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Cacheable requests that parsed and validated.
    pub received: u64,
    /// Requests shed by the token bucket.
    pub shed: u64,
    /// Requests served straight from the LRU.
    pub hits: u64,
    /// Requests that rode along on an identical in-flight execution.
    pub coalesced: u64,
    /// Requests that triggered an execution.
    pub misses: u64,
    /// Executions completed by the worker pool.
    pub executed: u64,
    /// Malformed or invalid request lines.
    pub rejected: u64,
}

impl Counters {
    /// Renders the stats response body.
    pub fn render(&self, cache_len: usize, cache_evictions: u64, workers: usize) -> String {
        format!(
            "{{\"received\":{},\"shed\":{},\"hits\":{},\"coalesced\":{},\"misses\":{},\
             \"executed\":{},\"rejected\":{},\"cache_len\":{cache_len},\
             \"cache_evictions\":{cache_evictions},\"workers\":{workers}}}",
            self.received,
            self.shed,
            self.hits,
            self.coalesced,
            self.misses,
            self.executed,
            self.rejected,
        )
    }
}

/// Everything the dispatcher lock protects.
#[derive(Debug)]
pub(crate) struct DispatchState {
    pub queue: VecDeque<Job>,
    /// fingerprint → everyone waiting on that execution. Presence of a
    /// key means the job is queued or running.
    pub in_flight: BTreeMap<u64, Vec<Waiter>>,
    pub cache: ResultCache,
    pub bucket: TokenBucket,
    pub counters: Counters,
    /// Set when the daemon stops accepting work; workers exit once the
    /// queue is empty.
    pub draining: bool,
}

/// The shared dispatcher: state + wakeup channels.
#[derive(Debug)]
pub(crate) struct Dispatch {
    pub state: Mutex<DispatchState>,
    /// Signaled when a job is queued or draining begins.
    pub work: Condvar,
    /// Signaled when the last queued/in-flight job completes.
    pub idle: Condvar,
}

impl Dispatch {
    pub(crate) fn new(cache_capacity: usize, bucket: TokenBucket) -> Dispatch {
        Dispatch {
            state: Mutex::new(DispatchState {
                queue: VecDeque::new(),
                in_flight: BTreeMap::new(),
                cache: ResultCache::new(cache_capacity),
                bucket,
                counters: Counters::default(),
                draining: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// Front door for one cacheable request. Returns the response line
    /// to send immediately (shed / hit / draining), or `None` if the
    /// request was queued or coalesced — its line will arrive via `tx`
    /// when the execution lands.
    pub(crate) fn submit(
        &self,
        job: Job,
        id: u64,
        tx: Sender<String>,
        now_nanos: u64,
    ) -> Option<String> {
        let mut st = self.state.lock().expect("dispatch lock");
        if st.draining {
            return Some(render_response(
                id,
                Source::Control,
                false,
                &render_error_body(codes::SHUTTING_DOWN, "daemon is draining; no new work"),
            ));
        }
        st.counters.received += 1;
        // Admission first: the bucket guards the front door, cache hits
        // included — shedding must stay deterministic in the arrival
        // sequence alone, not in what happens to be cached.
        if !st.bucket.try_admit(now_nanos) {
            st.counters.shed += 1;
            return Some(render_response(
                id,
                Source::Admission,
                false,
                &render_error_body(
                    codes::OVER_CAPACITY,
                    "admission bucket empty; retry after a refill interval",
                ),
            ));
        }
        if let Some(cached) = st.cache.get(job.fingerprint) {
            st.counters.hits += 1;
            return Some(render_response(id, Source::Cache, cached.ok, &cached.body));
        }
        if let Some(waiters) = st.in_flight.get_mut(&job.fingerprint) {
            waiters.push(Waiter {
                id,
                tx,
                coalesced: true,
            });
            st.counters.coalesced += 1;
            return None;
        }
        st.counters.misses += 1;
        st.in_flight.insert(
            job.fingerprint,
            vec![Waiter {
                id,
                tx,
                coalesced: false,
            }],
        );
        st.queue.push_back(job);
        drop(st);
        self.work.notify_one();
        None
    }

    /// Worker thread body: pull → execute → publish, until draining and
    /// the queue is empty.
    pub(crate) fn worker_loop(self: &Arc<Self>, scratch: &mut MstScratch) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("dispatch lock");
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.draining {
                        return;
                    }
                    st = self.work.wait(st).expect("dispatch lock");
                }
            };
            let outcome = execute_job(&job.kind, scratch);
            let (ok, body): (bool, Arc<str>) = match outcome {
                Ok(body) => (true, Arc::from(body)),
                Err((code, message)) => (false, Arc::from(render_error_body(code, &message))),
            };
            let waiters = {
                let mut st = self.state.lock().expect("dispatch lock");
                st.cache.insert(job.fingerprint, ok, Arc::clone(&body));
                st.counters.executed += 1;
                let waiters = st.in_flight.remove(&job.fingerprint).unwrap_or_default();
                if st.queue.is_empty() && st.in_flight.is_empty() {
                    self.idle.notify_all();
                }
                waiters
            };
            for w in waiters {
                let source = if w.coalesced {
                    Source::Coalesced
                } else {
                    Source::Exec
                };
                // A hung-up connection just drops its line.
                let _ = w.tx.send(render_response(w.id, source, ok, &body));
            }
        }
    }
}

/// Executes one job, rendering its response body fragment. Errors carry
/// a typed code plus a human-readable message; every error here is a
/// deterministic function of the request, so callers cache them like
/// successes.
pub(crate) fn execute_job(
    kind: &JobKind,
    scratch: &mut MstScratch,
) -> Result<String, (&'static str, String)> {
    match kind {
        JobKind::Run(run) => {
            let graph =
                generators::from_spec(&run.graph, run.seed).map_err(|e| (codes::BAD_GRAPH, e))?;
            let out = run
                .alg
                .run_with_options(&graph, &run.exec_options(), scratch)
                .map_err(|e| (e.to_json_code(), e.to_string()))?;
            Ok(render_run_result(
                run.alg,
                &graph,
                run.seed,
                run.faults.as_ref(),
                run.energy.as_ref(),
                &out,
            ))
        }
        JobKind::Sweep {
            algs,
            template,
            sizes,
            seeds,
        } => {
            let template = template.clone();
            let family = move |n: usize, seed: u64| {
                generators::from_spec(&template.replace("{n}", &n.to_string()), seed)
            };
            let mut sweep = Sweep::new(&family)
                .sizes(sizes.iter().copied())
                .seeds(seeds.iter().copied())
                .threads(1);
            for alg in algs {
                sweep = sweep.algorithm(alg);
            }
            let results = sweep.run().map_err(|e| (codes::BAD_GRAPH, e))?;
            Ok(harness::render_json(&results))
        }
        JobKind::Report { sizes, seeds } => {
            let spec = report::ReportSpec {
                sizes: sizes.clone(),
                seeds: seeds.clone(),
                ..report::ReportSpec::default()
            };
            let report = report::generate(&spec).map_err(|e| (codes::INTERNAL, e))?;
            Ok(report.to_json())
        }
        JobKind::Chaos {
            seed,
            sizes,
            trials,
        } => {
            let spec = chaos::ChaosSpec {
                seed: *seed,
                sizes: sizes.clone(),
                trials: *trials,
                ..chaos::ChaosSpec::default()
            };
            Ok(chaos::run_chaos(&spec).to_json())
        }
    }
}
