//! Deterministic bounded LRU for canonical run results.
//!
//! Keys are the FNV-1a 64 fingerprints of canonical request keys
//! ([`mst_core::wire::CanonicalRun::fingerprint`]); values are rendered
//! response bodies — the exact bytes a cold execution produced, stored
//! behind `Arc<str>` so a hit fans out without copying. Recency is an
//! explicit monotone stamp in a `BTreeMap`, not pointer identity or a
//! hashed order, so eviction order is a pure function of the access
//! sequence: the same request trace always evicts the same entries.
//!
//! Deterministic *errors* are cached too — a bad graph spec or a
//! fault-induced `run.*` failure reproduces bit-for-bit, so replaying it
//! for every duplicate request would be pure waste. The `ok` flag rides
//! along with the body so the response envelope stays truthful.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A cached outcome: whether the execution succeeded and the rendered
/// body fragment (a `result` value on success, an `error` object
/// otherwise).
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// `true` if `body` is a success payload.
    pub ok: bool,
    /// Rendered JSON fragment, byte-identical to the cold execution.
    pub body: Arc<str>,
}

#[derive(Debug)]
struct Entry {
    ok: bool,
    body: Arc<str>,
    stamp: u64,
}

/// Bounded LRU keyed by request fingerprint. A capacity of zero disables
/// caching entirely (every lookup misses, every insert is dropped) —
/// handy for tests that want to exercise the execution path repeatedly.
#[derive(Debug, Default)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u64, Entry>,
    recency: BTreeMap<u64, u64>,
    /// Total entries evicted to make room (monotone).
    pub evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            ..ResultCache::default()
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `fingerprint`, refreshing its recency on a hit.
    pub fn get(&mut self, fingerprint: u64) -> Option<CachedResult> {
        let entry = self.entries.get_mut(&fingerprint)?;
        self.recency.remove(&entry.stamp);
        self.tick += 1;
        entry.stamp = self.tick;
        self.recency.insert(entry.stamp, fingerprint);
        Some(CachedResult {
            ok: entry.ok,
            body: Arc::clone(&entry.body),
        })
    }

    /// Inserts (or refreshes) a result, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, fingerprint: u64, ok: bool, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            self.recency.remove(&entry.stamp);
            entry.stamp = self.tick;
            entry.ok = ok;
            entry.body = body;
            self.recency.insert(self.tick, fingerprint);
            return;
        }
        if self.entries.len() == self.capacity {
            // Oldest stamp = least recently used; BTreeMap iteration is
            // ordered, so this is deterministic by construction.
            let (&oldest, &victim) = self.recency.iter().next().expect("full cache has entries");
            self.recency.remove(&oldest);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.entries.insert(
            fingerprint,
            Entry {
                ok,
                body,
                stamp: self.tick,
            },
        );
        self.recency.insert(self.tick, fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let mut c = ResultCache::new(4);
        c.insert(1, true, body("alpha"));
        c.insert(2, false, body("beta"));
        let hit = c.get(1).unwrap();
        assert!(hit.ok);
        assert_eq!(&*hit.body, "alpha");
        let err = c.get(2).unwrap();
        assert!(!err.ok);
        assert_eq!(&*err.body, "beta");
        assert!(c.get(3).is_none());
    }

    #[test]
    fn evicts_least_recently_used_deterministically() {
        let mut c = ResultCache::new(2);
        c.insert(1, true, body("a"));
        c.insert(2, true, body("b"));
        assert!(c.get(1).is_some()); // 1 is now fresher than 2
        c.insert(3, true, body("c")); // evicts 2
        assert_eq!(c.evictions, 1);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(1, true, body("a"));
        c.insert(2, true, body("b"));
        c.insert(1, true, body("a2")); // refresh, no eviction
        assert_eq!(c.evictions, 0);
        assert_eq!(c.len(), 2);
        c.insert(3, true, body("c")); // evicts 2 (1 was refreshed)
        assert!(c.get(2).is_none());
        assert_eq!(&*c.get(1).unwrap().body, "a2");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(1, true, body("a"));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn same_access_trace_same_final_state() {
        let trace: Vec<(u64, bool)> = (0..300)
            .map(|i: u64| ((i * 7) % 13, i.is_multiple_of(3)))
            .collect();
        let run = || {
            let mut c = ResultCache::new(5);
            for &(fp, insert) in &trace {
                if insert {
                    c.insert(fp, true, body(&format!("v{fp}")));
                } else {
                    let _ = c.get(fp);
                }
            }
            let keys: Vec<u64> = c.entries.keys().copied().collect();
            (keys, c.evictions)
        };
        assert_eq!(run(), run());
    }
}
