//! Token-bucket admission control for the serve daemon's front door.
//!
//! The bucket is a pure function of its configuration and the sequence
//! of arrival timestamps it is fed: no clock is read in here, so the
//! exact admit/shed pattern of a recorded trace replays bit-for-bit
//! (the daemon feeds it nanoseconds from its own monotonic epoch; tests
//! and the loadgen determinism suite feed it synthetic timestamps).
//! Integer arithmetic throughout — token balances are kept in
//! *nano-tokens* (`1 token = 10⁹ nano-tokens`), which makes the refill
//! product exact: a refill rate of `r` tokens/second credits exactly
//! `r · elapsed_nanos` nano-tokens.

/// Nano-tokens per token.
const NANO: u128 = 1_000_000_000;

/// A classic token bucket: starts full, drains one token per admitted
/// request, refills continuously at a fixed rate up to its capacity.
/// Over-budget requests are shed immediately (typed error at the
/// protocol layer) — nothing ever queues behind the bucket, so a burst
/// can never build a latency pileup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    /// Capacity in nano-tokens.
    capacity_nt: u128,
    /// Refill rate in tokens per second (= nano-tokens per nanosecond).
    refill_per_sec: u64,
    /// Current balance in nano-tokens.
    available_nt: u128,
    /// Timestamp of the last [`TokenBucket::try_admit`] call.
    last_nanos: u64,
}

impl TokenBucket {
    /// A full bucket holding `capacity` tokens, refilling at
    /// `refill_per_sec` tokens per second.
    pub fn new(capacity: u64, refill_per_sec: u64) -> TokenBucket {
        TokenBucket {
            capacity_nt: u128::from(capacity) * NANO,
            refill_per_sec,
            available_nt: u128::from(capacity) * NANO,
            last_nanos: 0,
        }
    }

    /// Admits or sheds one request arriving at `now_nanos` (monotonic,
    /// relative to any fixed epoch). Deterministic: the decision depends
    /// only on the construction parameters and the sequence of
    /// timestamps seen so far. A non-monotonic timestamp credits no
    /// refill (elapsed saturates at zero) and never panics.
    pub fn try_admit(&mut self, now_nanos: u64) -> bool {
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = self.last_nanos.max(now_nanos);
        self.available_nt = (self.available_nt
            + u128::from(elapsed) * u128::from(self.refill_per_sec))
        .min(self.capacity_nt);
        if self.available_nt >= NANO {
            self.available_nt -= NANO;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (floor).
    pub fn available(&self) -> u64 {
        (self.available_nt / NANO) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: exact admit/shed sequences for pinned
    /// (capacity, refill, arrival-times) cases.
    #[test]
    fn pinned_burst_then_refill_sequence() {
        // Capacity 3, refill 2 tokens/sec. Arrivals (ms): a burst of five
        // at t=0, then one every 250 ms.
        let mut b = TokenBucket::new(3, 2);
        let admitted: Vec<bool> = [0u64, 0, 0, 0, 0, 250, 500, 750, 1000, 1250]
            .iter()
            .map(|&ms| b.try_admit(ms * 1_000_000))
            .collect();
        // Burst: 3 admitted, 2 shed. Then 250 ms refills 0.5 tokens:
        // t=250 has 0.5 → shed; t=500 has 1.0 → admit; t=750 has 0.5 →
        // shed; t=1000 has 1.0 → admit; t=1250 has 0.5 → shed.
        assert_eq!(
            admitted,
            vec![true, true, true, false, false, false, true, false, true, false]
        );
    }

    #[test]
    fn pinned_zero_refill_is_a_hard_cap() {
        let mut b = TokenBucket::new(2, 0);
        let admitted: Vec<bool> = (0..5).map(|i| b.try_admit(i * 1_000_000_000)).collect();
        assert_eq!(admitted, vec![true, true, false, false, false]);
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let mut b = TokenBucket::new(2, 1000);
        assert!(b.try_admit(0));
        assert!(b.try_admit(0));
        // A huge gap refills to capacity, not beyond.
        assert!(b.try_admit(3_600_000_000_000));
        assert_eq!(b.available(), 1);
    }

    #[test]
    fn non_monotonic_timestamps_credit_nothing() {
        let mut b = TokenBucket::new(1, 1_000_000);
        assert!(b.try_admit(1_000_000_000));
        // Going backwards must not refill (and must not panic).
        assert!(!b.try_admit(500_000_000));
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn replay_is_bit_deterministic() {
        let arrivals: Vec<u64> = (0..200).map(|i| (i * i) % 1_700_000_007).collect();
        let run = |mut b: TokenBucket| -> Vec<bool> {
            arrivals.iter().map(|&t| b.try_admit(t)).collect()
        };
        assert_eq!(run(TokenBucket::new(5, 3)), run(TokenBucket::new(5, 3)));
    }
}
