//! Declarative experiment sweeps over (algorithm × graph family × n × seed).
//!
//! A [`Sweep`] enumerates its trial grid in a fixed order, fans the trials
//! out over `std::thread::scope` workers, and returns the results in grid
//! order. Because each trial rebuilds its graph from `(n, seed)` and every
//! bit of randomness derives from the trial seed, the results are
//! **bit-identical regardless of thread count** — `threads(1)` is the
//! reference schedule and the parallel runs must (and do, see the tests)
//! reproduce it exactly.
//!
//! Algorithms come from the [`mst_core::registry`] table by default;
//! ablation-style sweeps can wrap a closure with [`Sweep::algorithm_fn`]
//! to run configuration variants under their own label.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use graphlib::WeightedGraph;
use mst_core::registry::AlgorithmSpec;
use mst_core::{ExecOptions, MstOutcome, MstScratch, RunError};
use netsim::{EnergyModel, Executor, RunStats};

/// How one sweep algorithm executes a trial.
enum Runner<'a> {
    Registry(&'static AlgorithmSpec),
    #[allow(clippy::type_complexity)]
    Custom(&'a (dyn Fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError> + Sync)),
}

/// An algorithm entry of a sweep: a display name plus its runner.
pub struct SweepAlgo<'a> {
    name: String,
    runner: Runner<'a>,
}

/// One completed trial of a sweep.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Display name of the algorithm (registry name or custom label).
    pub algorithm: String,
    /// The size parameter the graph family was instantiated with.
    pub n: usize,
    /// The trial seed (drives graph weights and algorithm coins).
    pub seed: u64,
    /// Nodes in the instantiated graph.
    pub nodes: usize,
    /// Edges in the instantiated graph.
    pub graph_edges: usize,
    /// The id-space bound `N` of the instantiated graph.
    pub max_external_id: u64,
    /// Edges in the output tree/forest.
    pub tree_edges: usize,
    /// Total weight of the output tree/forest.
    pub total_weight: u128,
    /// Merge phases completed.
    pub phases: u64,
    /// Full simulator metrics.
    pub stats: RunStats,
}

/// Mean metrics of one (algorithm, n) sweep cell across its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Algorithm display name.
    pub algorithm: String,
    /// Family size parameter.
    pub n: usize,
    /// Number of trials (seeds) aggregated.
    pub count: usize,
    /// Mean graph edge count `m`.
    pub graph_edges: f64,
    /// Mean id bound `N`.
    pub max_external_id: f64,
    /// Mean awake complexity (max over nodes).
    pub awake_max: f64,
    /// Mean per-node-average awake rounds.
    pub awake_avg: f64,
    /// Mean run time in rounds.
    pub rounds: f64,
    /// Mean merge phases.
    pub phases: f64,
    /// Mean messages delivered.
    pub messages: f64,
    /// Mean messages lost to sleeping receivers.
    pub messages_lost: f64,
    /// Mean awake × rounds product.
    pub awake_round_product: f64,
}

/// A declarative sweep: one graph family, a set of algorithms, sizes, and
/// seeds. Build with [`Sweep::new`], add axes with the builder methods,
/// execute with [`Sweep::run`].
pub struct Sweep<'a> {
    graph: &'a (dyn Fn(usize, u64) -> Result<WeightedGraph, String> + Sync),
    algos: Vec<SweepAlgo<'a>>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    threads: usize,
    executor: Option<Executor>,
    shards: Option<u32>,
    energy: Option<EnergyModel>,
}

impl<'a> Sweep<'a> {
    /// Starts a sweep over the graph family `graph`: a function from
    /// `(n, seed)` to a graph. The function must be deterministic — trials
    /// rebuild the graph from scratch, possibly on different threads.
    pub fn new(graph: &'a (dyn Fn(usize, u64) -> Result<WeightedGraph, String> + Sync)) -> Self {
        Sweep {
            graph,
            algos: Vec::new(),
            sizes: Vec::new(),
            seeds: vec![0],
            threads: 0,
            executor: None,
            shards: None,
            energy: None,
        }
    }

    /// Adds a registry algorithm to the sweep.
    pub fn algorithm(mut self, spec: &'static AlgorithmSpec) -> Self {
        self.algos.push(SweepAlgo {
            name: spec.name.to_string(),
            runner: Runner::Registry(spec),
        });
        self
    }

    /// Adds a custom runner under `label` — for ablation variants that
    /// wrap `run_*_with` configuration overrides.
    pub fn algorithm_fn(
        mut self,
        label: impl Into<String>,
        run: &'a (dyn Fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError> + Sync),
    ) -> Self {
        self.algos.push(SweepAlgo {
            name: label.into(),
            runner: Runner::Custom(run),
        });
        self
    }

    /// Sets the family sizes to sweep.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the trial seeds (default: the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the worker thread count; `0` (the default) uses the machine's
    /// available parallelism. Results do not depend on this value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the time driver for registry trials (default: each
    /// algorithm's registry default — the calendar driver). Every driver
    /// is bit-identical, so results do not depend on this value either;
    /// it only changes wall-clock cost. Custom [`Sweep::algorithm_fn`]
    /// runners build their own options and ignore this knob.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Pins the send-half-step shard count for registry trials. Like the
    /// driver choice, shard counts are bit-identical — the cross-shard
    /// sweep test pins it — so results do not depend on this value; it
    /// only trades wall-clock for cores within each trial.
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Prices every registry trial under `model` (see
    /// [`netsim::EnergyModel`]). Charging happens inside the one
    /// execution kernel, so the resulting per-node ledgers are
    /// bit-identical across drivers, shard counts, and thread counts
    /// like every other stat. A model with a budget can make trials fail
    /// with the typed [`mst_core::RunError::EnergyExhausted`]. Custom
    /// [`Sweep::algorithm_fn`] runners ignore this knob.
    pub fn energy(mut self, model: EnergyModel) -> Self {
        self.energy = Some(model);
        self
    }

    /// Executes every (algorithm, size, seed) trial and returns the
    /// results in grid order: algorithms outermost, then sizes, then
    /// seeds — the same order a sequential triple loop would produce.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest failing trial in grid order
    /// (graph construction failures and [`RunError`]s, stringified with
    /// their trial coordinates).
    pub fn run(&self) -> Result<Vec<TrialResult>, String> {
        let trials: Vec<(usize, usize, u64)> = self
            .algos
            .iter()
            .enumerate()
            .flat_map(|(ai, _)| {
                self.sizes
                    .iter()
                    .flat_map(move |&n| self.seeds.iter().map(move |&seed| (ai, n, seed)))
            })
            .collect();

        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
        .min(trials.len().max(1));

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<TrialResult, String>>>> =
            trials.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One executor scratch per worker: consecutive trials
                    // on this thread reuse the wake queue, delivery arena,
                    // and stats buffers instead of reallocating them.
                    let mut scratch = MstScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(ai, n, seed)) = trials.get(i) else {
                            break;
                        };
                        let outcome = self.run_trial(ai, n, seed, &mut scratch);
                        *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("trial not executed")
            })
            .collect()
    }

    fn run_trial(
        &self,
        ai: usize,
        n: usize,
        seed: u64,
        scratch: &mut MstScratch,
    ) -> Result<TrialResult, String> {
        let algo = &self.algos[ai];
        let graph =
            (self.graph)(n, seed).map_err(|e| format!("graph family at n={n} seed={seed}: {e}"))?;
        let out = match algo.runner {
            Runner::Registry(spec) => {
                let mut opts = ExecOptions::seeded(seed);
                if let Some(executor) = self.executor {
                    opts = opts.with_executor(executor);
                }
                if let Some(shards) = self.shards {
                    opts = opts.with_shards(shards);
                }
                if let Some(model) = self.energy {
                    opts = opts.with_energy(model);
                }
                spec.run_with_options(&graph, &opts, scratch)
            }
            Runner::Custom(f) => f(&graph, seed),
        }
        .map_err(|e| format!("{} on n={n} seed={seed}: {e}", algo.name))?;
        Ok(TrialResult {
            algorithm: algo.name.clone(),
            n,
            seed,
            nodes: graph.node_count(),
            graph_edges: graph.edge_count(),
            max_external_id: graph.max_external_id(),
            tree_edges: out.edges.len(),
            total_weight: u128::from(graph.total_weight(out.edges.iter().copied())),
            phases: out.phases,
            stats: out.stats,
        })
    }
}

/// Groups trial results into (algorithm, n) cells — in first-appearance
/// order — and averages the metrics across seeds.
pub fn aggregate(results: &[TrialResult]) -> Vec<Cell> {
    let mut cells: Vec<Cell> = Vec::new();
    let mut sums: Vec<Vec<&TrialResult>> = Vec::new();
    for r in results {
        let key = cells
            .iter()
            .position(|c| c.algorithm == r.algorithm && c.n == r.n);
        match key {
            Some(i) => sums[i].push(r),
            None => {
                cells.push(Cell {
                    algorithm: r.algorithm.clone(),
                    n: r.n,
                    count: 0,
                    graph_edges: 0.0,
                    max_external_id: 0.0,
                    awake_max: 0.0,
                    awake_avg: 0.0,
                    rounds: 0.0,
                    phases: 0.0,
                    messages: 0.0,
                    messages_lost: 0.0,
                    awake_round_product: 0.0,
                });
                sums.push(vec![r]);
            }
        }
    }
    for (cell, group) in cells.iter_mut().zip(&sums) {
        let k = group.len() as f64;
        cell.count = group.len();
        for r in group {
            cell.graph_edges += r.graph_edges as f64 / k;
            cell.max_external_id += r.max_external_id as f64 / k;
            cell.awake_max += r.stats.awake_max() as f64 / k;
            cell.awake_avg += r.stats.awake_avg() / k;
            cell.rounds += r.stats.rounds as f64 / k;
            cell.phases += r.phases as f64 / k;
            cell.messages += r.stats.messages_delivered as f64 / k;
            cell.messages_lost += r.stats.messages_lost as f64 / k;
            cell.awake_round_product += r.stats.awake_round_product() as f64 / k;
        }
    }
    cells
}

/// Renders aggregated cells as a markdown table with the standard columns.
pub fn render_cells(cells: &[Cell]) -> String {
    let mut s = String::from(
        "| algorithm | n | seeds | awake max | awake/log2(n) | rounds | phases | messages |\n\
         |-----------|---|-------|-----------|---------------|--------|--------|----------|\n",
    );
    for c in cells {
        let log_n = (c.n as f64).log2().max(1.0);
        s.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.2} | {:.0} | {:.1} | {:.0} |\n",
            c.algorithm,
            c.n,
            c.count,
            c.awake_max,
            c.awake_max / log_n,
            c.rounds,
            c.phases,
            c.messages,
        ));
    }
    s
}

/// Renders raw trial results as a JSON array (hand-rolled; every field is
/// a number or a registry/label string, so no escaping is needed).
pub fn render_json(results: &[TrialResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"algorithm\":\"{}\",\"n\":{},\"seed\":{},\"nodes\":{},\
                 \"graph_edges\":{},\"max_external_id\":{},\"tree_edges\":{},\
                 \"total_weight\":{},\"phases\":{},\"awake_max\":{},\
                 \"awake_avg\":{:.3},\"rounds\":{},\"awake_round_product\":{},\
                 \"messages_delivered\":{},\"messages_lost\":{},\
                 \"max_message_bits\":{},\"log_constant\":{}}}",
                r.algorithm,
                r.n,
                r.seed,
                r.nodes,
                r.graph_edges,
                r.max_external_id,
                r.tree_edges,
                r.total_weight,
                r.phases,
                r.stats.awake_max(),
                r.stats.awake_avg(),
                r.stats.rounds,
                r.stats.awake_round_product(),
                r.stats.messages_delivered,
                r.stats.messages_lost,
                r.stats.max_message_bits,
                r.stats.log_constant(r.nodes),
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;
    use mst_core::registry;

    fn ring_family(n: usize, seed: u64) -> Result<WeightedGraph, String> {
        generators::ring(n, seed).map_err(|e| e.to_string())
    }

    #[test]
    fn sweep_runs_grid_in_order() {
        let results = Sweep::new(&ring_family)
            .algorithm(registry::find("randomized").unwrap())
            .algorithm(registry::find("always-awake").unwrap())
            .sizes([8, 16])
            .seeds([1, 2])
            .threads(1)
            .run()
            .unwrap();
        let coords: Vec<(&str, usize, u64)> = results
            .iter()
            .map(|r| (r.algorithm.as_str(), r.n, r.seed))
            .collect();
        assert_eq!(
            coords,
            vec![
                ("randomized", 8, 1),
                ("randomized", 8, 2),
                ("randomized", 16, 1),
                ("randomized", 16, 2),
                ("always-awake", 8, 1),
                ("always-awake", 8, 2),
                ("always-awake", 16, 1),
                ("always-awake", 16, 2),
            ]
        );
        assert!(results.iter().all(|r| r.tree_edges == r.n - 1));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let build = |threads| {
            Sweep::new(&ring_family)
                .algorithm(registry::find("randomized").unwrap())
                .algorithm(registry::find("spanning-tree").unwrap())
                .sizes([8, 12, 16, 24])
                .seeds(0..3)
                .threads(threads)
                .run()
                .unwrap()
        };
        let sequential = build(1);
        let parallel = build(4);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!((a.n, a.seed), (b.n, b.seed));
            assert_eq!(
                a.stats, b.stats,
                "{} n={} seed={}",
                a.algorithm, a.n, a.seed
            );
            assert_eq!(a.tree_edges, b.tree_edges);
            assert_eq!(a.total_weight, b.total_weight);
        }
    }

    #[test]
    fn custom_runner_and_aggregation() {
        let fixed = |g: &WeightedGraph, _seed: u64| registry::find("randomized").unwrap().run(g, 7);
        // Pin the graph seed too, so every trial is the identical instance.
        let fixed_family = |n: usize, _seed: u64| generators::ring(n, 3).map_err(|e| e.to_string());
        let results = Sweep::new(&fixed_family)
            .algorithm_fn("randomized[seed=7]", &fixed)
            .sizes([8])
            .seeds(0..4)
            .threads(2)
            .run()
            .unwrap();
        // The custom runner pins the algorithm seed, so all 4 trials agree.
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.stats, results[0].stats);
        }
        let cells = aggregate(&results);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].count, 4);
        assert_eq!(cells[0].algorithm, "randomized[seed=7]");
        assert!((cells[0].awake_max - results[0].stats.awake_max() as f64).abs() < 1e-9);
        let table = render_cells(&cells);
        assert!(table.contains("randomized[seed=7]"));
        let json = render_json(&results);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"algorithm\"").count(), 4);
    }

    #[test]
    fn sweep_is_bit_identical_across_executors() {
        let build = |executor| {
            Sweep::new(&ring_family)
                .algorithm(registry::find("randomized").unwrap())
                .algorithm(registry::find("deterministic").unwrap())
                .sizes([8, 16])
                .seeds(0..2)
                .threads(1)
                .executor(executor)
                .run()
                .unwrap()
        };
        let calendar = build(Executor::Calendar);
        for executor in [Executor::Sync, Executor::Naive] {
            let other = build(executor);
            assert_eq!(calendar.len(), other.len());
            for (a, b) in calendar.iter().zip(&other) {
                assert_eq!(a.stats, b.stats, "{executor} {} n={}", a.algorithm, a.n);
                assert_eq!(a.tree_edges, b.tree_edges);
                assert_eq!(a.total_weight, b.total_weight);
                assert_eq!(a.phases, b.phases);
            }
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_shard_counts() {
        let build = |shards| {
            Sweep::new(&ring_family)
                .algorithm(registry::find("randomized").unwrap())
                .sizes([8, 16])
                .seeds(0..2)
                .threads(1)
                .shards(shards)
                .run()
                .unwrap()
        };
        let serial = build(1);
        for shards in [2, 4] {
            let sharded = build(shards);
            assert_eq!(serial.len(), sharded.len());
            for (a, b) in serial.iter().zip(&sharded) {
                assert_eq!(
                    a.stats, b.stats,
                    "shards={shards} {} n={}",
                    a.algorithm, a.n
                );
                assert_eq!(a.tree_edges, b.tree_edges);
                assert_eq!(a.total_weight, b.total_weight);
                assert_eq!(a.phases, b.phases);
            }
        }
    }

    #[test]
    fn failing_trial_reports_grid_coordinates() {
        let err = Sweep::new(&ring_family)
            .algorithm(registry::find("randomized").unwrap())
            .sizes([2]) // rings need n >= 3
            .threads(1)
            .run()
            .unwrap_err();
        assert!(err.contains("n=2"), "{err}");
    }

    #[test]
    fn prim_disconnected_surfaces_as_sweep_error() {
        let disconnected = |_n: usize, _seed: u64| {
            graphlib::GraphBuilder::new(4)
                .edge(0, 1, 1)
                .edge(2, 3, 2)
                .build()
                .map_err(|e| e.to_string())
        };
        let err = Sweep::new(&disconnected)
            .algorithm(registry::find("prim").unwrap())
            .sizes([4])
            .threads(1)
            .run()
            .unwrap_err();
        assert!(err.contains("connected"), "{err}");
    }
}
