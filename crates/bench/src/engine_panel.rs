//! Driver-throughput panel: a sparse-wake protocol that stresses the
//! time drivers themselves rather than any MST logic.
//!
//! The registry algorithms wake their nodes too densely to separate the
//! drivers — on the standard sweeps a run simulates only ~40 rounds per
//! node-awake event, so the round-synchronous driver's extra cost (one
//! silent tick per empty round) drowns in protocol work. This panel runs
//! the opposite regime, the one the sleeping model is *about*: each node
//! wakes only [`EnginePanelSpec::wakes`] times, with seed-chosen gaps of
//! up to `gap_per_node · n` rounds between wakes, and sends a single
//! cheap message per wake. Total rounds then exceed total wake events by
//! a factor of ~`gap_per_node`, which is exactly where the calendar
//! driver's heap-jump (`O(log n)` per *wake*) beats the synchronous
//! driver's tick loop (`O(1)` per *round*).
//!
//! The naive `O(n)`-scan oracle driver costs `O(rounds · n)` here, which
//! is astronomical at panel sizes — include [`netsim::Executor::Naive`]
//! in a spec only at small `n`.
//!
//! The `bench-engine` CLI subcommand renders this panel as
//! `BENCH_engine.json`; `EXPERIMENTS.md` tabulates the resulting
//! calendar-vs-sync wall-clock win across `n`.
//!
//! The scale campaign added a second workload: **wave**, in which every
//! node wakes in the same synchronized rounds (the opposite regime from
//! sparse wakes — maximally wide rounds on a streaming-built chorded
//! cycle). Wide rounds are where [`netsim::SimConfig::shards`] can win,
//! so the wave rows sweep shard counts and the panel asserts
//! bit-identical [`netsim::RunStats`] across them, exactly as it does
//! across drivers.

use graphlib::{generators, GraphBuilder, Port, WeightedGraph};
use netsim::{
    EnergyModel, Executor, NextWake, NodeCtx, Outbox, Protocol, Round, SimConfig, Simulator,
};

/// What the panel sweeps: sizes × drivers for the sparse workload, sizes
/// × shard counts for the wave workload, plus the wake-schedule shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePanelSpec {
    /// Node counts to run the sparse workload on (one graph per size).
    pub sizes: Vec<usize>,
    /// Drivers to time on each sparse size.
    pub executors: Vec<Executor>,
    /// Master seed: graph structure and every node's wake schedule
    /// derive from it, so the simulated work is identical across drivers
    /// (the panel asserts this by comparing [`netsim::RunStats`]).
    pub seed: u64,
    /// Awake rounds per node before it halts.
    pub wakes: u32,
    /// Maximum sleep gap between a node's wakes, in units of `n` rounds.
    pub gap_per_node: u64,
    /// Node counts to run the wave workload on (empty = no wave rows).
    pub wave_sizes: Vec<usize>,
    /// Shard counts to time on each wave size; `1` is the serial
    /// baseline the speedup column is measured against.
    pub shards: Vec<u32>,
    /// Optional pricing model charged inside the kernel. When set, every
    /// row carries an `energy_total` ledger sum, and the panel's existing
    /// cross-driver / cross-shard [`netsim::RunStats`] equality check
    /// extends to the per-node energy ledger for free (the ledger lives
    /// in the stats).
    pub energy: Option<EnergyModel>,
}

impl Default for EnginePanelSpec {
    fn default() -> Self {
        EnginePanelSpec {
            sizes: vec![1 << 14],
            executors: vec![Executor::Calendar, Executor::Sync],
            seed: 0,
            wakes: 3,
            gap_per_node: 4096,
            wave_sizes: Vec::new(),
            shards: vec![1],
            energy: Some(EnergyModel::reference()),
        }
    }
}

/// One timed panel cell: a sparse (size, driver) pair at `shards = 1`,
/// or a wave (size, shard-count) pair under the calendar driver.
#[derive(Debug, Clone)]
pub struct EnginePanelRow {
    /// Which workload produced the row: `"sparse"` or `"wave"`.
    pub workload: &'static str,
    /// Node count.
    pub n: usize,
    /// The driver timed.
    pub executor: Executor,
    /// Send-half-step shard count the row was timed with.
    pub shards: u32,
    /// Simulated rounds until the last node halted.
    pub rounds: u64,
    /// Messages sent (delivered + lost to sleeping receivers).
    pub messages: u64,
    /// Heap bytes of the CSR graph representation
    /// ([`netsim::RunStats::graph_bytes`]).
    pub graph_bytes: u64,
    /// Graph bytes per node — the scale campaign's memory budget column.
    pub bytes_per_node: f64,
    /// Ledger sum under [`EnginePanelSpec::energy`] (0 with no model).
    /// Deterministic in the spec seed, like `rounds` and `messages`.
    pub energy_total: u64,
    /// Wall-clock seconds for the simulation call.
    pub wall_seconds: f64,
    /// Simulated rounds per wall-clock second.
    pub rounds_per_sec: f64,
    /// Messages per wall-clock second.
    pub messages_per_sec: f64,
}

/// SplitMix64 step — the panel's only randomness source, keyed off the
/// spec seed and each node's [`NodeCtx::rng_seed`].
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The panel protocol: wake a few times with huge seed-chosen gaps, send
/// one message per wake, halt. All scheduling state derives from the
/// node's `rng_seed`, so every driver simulates the identical run.
struct SparseWake {
    state: u64,
    remaining: u32,
    max_gap: u64,
}

impl SparseWake {
    fn new(ctx: &NodeCtx, wakes: u32, max_gap: u64) -> Self {
        SparseWake {
            state: ctx.rng_seed,
            remaining: wakes,
            max_gap: max_gap.max(1),
        }
    }

    /// Next sleep gap in `[1, max_gap]`.
    fn gap(&mut self) -> u64 {
        self.state = mix(self.state);
        1 + self.state % self.max_gap
    }
}

impl Protocol for SparseWake {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        if self.remaining == 0 {
            return NextWake::Halt;
        }
        NextWake::At(self.gap())
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<u64>) {
        if ctx.degree() > 0 {
            self.state = mix(self.state);
            let port = Port::new((self.state % ctx.degree() as u64) as u32);
            outbox.push(port, self.state);
        }
    }

    fn deliver(
        &mut self,
        _ctx: &NodeCtx,
        round: Round,
        _inbox: &[netsim::Envelope<u64>],
    ) -> NextWake {
        self.remaining -= 1;
        if self.remaining == 0 {
            NextWake::Halt
        } else {
            NextWake::At(round + self.gap())
        }
    }
}

/// Rounds between the wave workload's synchronized wakes. Large enough
/// that the calendar driver still exercises its jump path between
/// waves; irrelevant to the per-wave send cost the shard sweep times.
const WAVE_GAP: u64 = 64;

/// The wave workload: every node wakes in the same rounds
/// (`WAVE_GAP, 2·WAVE_GAP, …`), sends one seed-derived message on every
/// port, and halts after [`EnginePanelSpec::wakes`] waves. Each active
/// round has all `n` nodes awake — the maximally wide regime where the
/// sharded send half-step can spread work across cores.
struct WaveWake {
    state: u64,
    remaining: u32,
}

impl WaveWake {
    fn new(ctx: &NodeCtx, wakes: u32) -> Self {
        WaveWake {
            state: ctx.rng_seed,
            remaining: wakes,
        }
    }
}

impl Protocol for WaveWake {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeCtx) -> NextWake {
        if self.remaining == 0 {
            return NextWake::Halt;
        }
        NextWake::At(WAVE_GAP)
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<u64>) {
        for port in ctx.ports() {
            self.state = mix(self.state);
            outbox.push(port, self.state);
        }
    }

    fn deliver(
        &mut self,
        _ctx: &NodeCtx,
        round: Round,
        _inbox: &[netsim::Envelope<u64>],
    ) -> NextWake {
        self.remaining -= 1;
        if self.remaining == 0 {
            NextWake::Halt
        } else {
            NextWake::At(round + WAVE_GAP)
        }
    }
}

/// Builds the panel graph for one size: a seeded random recursive tree
/// plus ~2·n extra random edges — sparse, connected, built in
/// `O(n log n)` so sizes up to `2^17` stay cheap (the workspace's
/// `random_connected` generator Bernoulli-samples all `n²` pairs, which
/// does not).
fn panel_graph(n: usize, seed: u64) -> Result<WeightedGraph, String> {
    let mut state = mix(seed ^ 0x5eed_9a9e);
    let mut step = || {
        state = mix(state);
        state
    };
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(3 * n);
    for i in 1..n as u32 {
        let j = (step() % u64::from(i)) as u32;
        pairs.push((j, i));
    }
    for _ in 0..2 * n {
        let u = (step() % n as u64) as u32;
        let v = (step() % n as u64) as u32;
        if u != v {
            pairs.push((u.min(v), u.max(v)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut b = GraphBuilder::new(n);
    for (k, &(u, v)) in pairs.iter().enumerate() {
        b.edge(u, v, 1 + k as u64);
    }
    b.build().map_err(|e| e.to_string())
}

/// Runs the full panel: sizes outermost, drivers innermost, so each
/// size's graph is built once and every driver times the identical
/// simulated run. Cross-driver [`netsim::RunStats`] equality is checked
/// against the first driver of each size; a mismatch is an error (it
/// would make the throughput comparison meaningless).
///
/// # Errors
///
/// Graph construction and simulation errors, stringified with their
/// panel coordinates, and any cross-driver stats divergence.
pub fn run_engine_panel(spec: &EnginePanelSpec) -> Result<Vec<EnginePanelRow>, String> {
    let mut rows = Vec::new();
    for &n in &spec.sizes {
        let graph = panel_graph(n.max(1), spec.seed)?;
        let max_gap = spec.gap_per_node.saturating_mul(n.max(1) as u64);
        let mut reference: Option<netsim::RunStats> = None;
        for &executor in &spec.executors {
            let mut config = SimConfig::default()
                .with_seed(spec.seed)
                .with_executor(executor);
            if let Some(model) = spec.energy {
                config = config.with_energy(model);
            }
            let sim = Simulator::new(&graph, config);
            // lint:allow(wall-clock) -- the panel's whole point is real elapsed time per driver
            let started = std::time::Instant::now();
            let out = sim
                .run(|ctx| SparseWake::new(ctx, spec.wakes, max_gap))
                .map_err(|e| format!("engine panel n={n} {executor}: {e}"))?;
            let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
            match &reference {
                None => reference = Some(out.stats.clone()),
                Some(first) => {
                    if *first != out.stats {
                        return Err(format!(
                            "engine panel n={n}: {executor} diverged from {} \
                             ({:?} vs {:?})",
                            spec.executors[0], out.stats, first
                        ));
                    }
                }
            }
            let messages = out.stats.messages_delivered + out.stats.messages_lost;
            rows.push(EnginePanelRow {
                workload: "sparse",
                n,
                executor,
                shards: 1,
                rounds: out.stats.rounds,
                messages,
                graph_bytes: out.stats.graph_bytes,
                bytes_per_node: out.stats.graph_bytes as f64 / n.max(1) as f64,
                energy_total: out.stats.energy_total(),
                wall_seconds,
                rounds_per_sec: out.stats.rounds as f64 / wall_seconds,
                messages_per_sec: messages as f64 / wall_seconds,
            });
        }
    }
    for &n in &spec.wave_sizes {
        // Streaming CSR construction: the chorded cycle never
        // materializes an edge list, so the only O(m) memory is the
        // graph's own CSR arrays (`graph_bytes` reports them).
        let graph = generators::chorded_cycle(n.max(8), 2, spec.seed)
            .map_err(|e| format!("engine panel wave n={n}: {e}"))?;
        let mut reference: Option<netsim::RunStats> = None;
        for &shards in &spec.shards {
            let mut config = SimConfig::default()
                .with_seed(spec.seed)
                .with_shards(shards);
            if let Some(model) = spec.energy {
                config = config.with_energy(model);
            }
            let sim = Simulator::new(&graph, config);
            // lint:allow(wall-clock) -- the shard sweep times real elapsed time per shard count
            let started = std::time::Instant::now();
            let out = sim
                .run(|ctx| WaveWake::new(ctx, spec.wakes))
                .map_err(|e| format!("engine panel wave n={n} shards={shards}: {e}"))?;
            let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
            match &reference {
                None => reference = Some(out.stats.clone()),
                Some(first) => {
                    if *first != out.stats {
                        return Err(format!(
                            "engine panel wave n={n}: shards={shards} diverged from \
                             shards={} ({:?} vs {:?})",
                            spec.shards[0], out.stats, first
                        ));
                    }
                }
            }
            let messages = out.stats.messages_delivered + out.stats.messages_lost;
            rows.push(EnginePanelRow {
                workload: "wave",
                n,
                executor: Executor::Calendar,
                shards,
                rounds: out.stats.rounds,
                messages,
                graph_bytes: out.stats.graph_bytes,
                bytes_per_node: out.stats.graph_bytes as f64 / n.max(1) as f64,
                energy_total: out.stats.energy_total(),
                wall_seconds,
                rounds_per_sec: out.stats.rounds as f64 / wall_seconds,
                messages_per_sec: messages as f64 / wall_seconds,
            });
        }
    }
    Ok(rows)
}

/// Renders panel rows as a JSON array (the `BENCH_engine.json` artifact).
/// Only the wall-clock fields vary run to run; `n`, `executor`,
/// `rounds`, and `messages` are deterministic in the spec seed.
pub fn render_engine_panel_json(rows: &[EnginePanelRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\":\"{}\",\"n\":{},\"executor\":\"{}\",\"shards\":{},\
                 \"rounds\":{},\"messages\":{},\"graph_bytes\":{},\
                 \"bytes_per_node\":{:.2},\"energy_total\":{},\"wall_seconds\":{:.6},\
                 \"rounds_per_sec\":{:.1},\"messages_per_sec\":{:.1}}}",
                r.workload,
                r.n,
                r.executor,
                r.shards,
                r.rounds,
                r.messages,
                r.graph_bytes,
                r.bytes_per_node,
                r.energy_total,
                r.wall_seconds,
                r.rounds_per_sec,
                r.messages_per_sec,
            )
        })
        .collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_graph_is_connected_and_sparse() {
        let g = panel_graph(64, 3).unwrap();
        assert_eq!(g.node_count(), 64);
        assert!(g.edge_count() >= 63);
        assert!(g.edge_count() <= 3 * 64);
        let mut uf = graphlib::UnionFind::new(64);
        for e in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn panel_rows_agree_across_all_three_drivers() {
        let spec = EnginePanelSpec {
            sizes: vec![32, 48],
            executors: vec![Executor::Calendar, Executor::Sync, Executor::Naive],
            seed: 9,
            wakes: 3,
            gap_per_node: 4,
            wave_sizes: vec![],
            shards: vec![1],
            energy: Some(EnergyModel::reference()),
        };
        let rows = run_engine_panel(&spec).unwrap();
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            assert_eq!(chunk[0].rounds, chunk[1].rounds);
            assert_eq!(chunk[0].rounds, chunk[2].rounds);
            assert_eq!(chunk[0].messages, chunk[1].messages);
            assert_eq!(chunk[0].messages, chunk[2].messages);
            assert!(chunk[0].energy_total > 0, "reference model charged");
            assert_eq!(chunk[0].energy_total, chunk[1].energy_total);
            assert_eq!(chunk[0].energy_total, chunk[2].energy_total);
            assert!(chunk[0].rounds > chunk[0].n as u64, "gaps were simulated");
        }
        let json = render_engine_panel_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"executor\"").count(), 6);
        assert_eq!(json.matches("\"energy_total\"").count(), 6);
    }

    /// Wave rows must agree bit-for-bit across shard counts, including
    /// counts that actually engage the parallel path (n = 256 ≥ the
    /// kernel's minimum-awake gate) and report the memory columns.
    #[test]
    fn wave_rows_agree_across_shard_counts() {
        let spec = EnginePanelSpec {
            sizes: vec![],
            executors: vec![],
            seed: 5,
            wakes: 2,
            gap_per_node: 4,
            wave_sizes: vec![256],
            shards: vec![1, 2, 3],
            energy: Some(EnergyModel::reference()),
        };
        let rows = run_engine_panel(&spec).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.workload, "wave");
            assert_eq!(row.rounds, rows[0].rounds);
            assert_eq!(row.messages, rows[0].messages);
            assert!(row.energy_total > 0);
            assert_eq!(row.energy_total, rows[0].energy_total);
            assert!(row.graph_bytes > 0);
            assert!(row.bytes_per_node > 0.0);
        }
        // Every node awake in every wave: messages = sum of degrees × waves.
        assert!(rows[0].messages >= 2 * 2 * 256);
        let json = render_engine_panel_json(&rows);
        assert_eq!(json.matches("\"workload\":\"wave\"").count(), 3);
        assert!(json.contains("\"graph_bytes\""));
    }

    #[test]
    fn sparse_wake_halts_every_node() {
        let g = panel_graph(16, 1).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| SparseWake::new(ctx, 2, 40))
            .unwrap();
        assert_eq!(out.stats.awake_max(), 2);
        assert!(out.stats.rounds >= 2);
    }
}
