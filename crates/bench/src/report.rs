//! The Table-1 report generator: sweeps the registry across graph
//! families and sizes with metrics recording on, and renders a
//! byte-deterministic artifact (JSON + markdown) comparing the measured
//! awake/round/message scaling against the paper's bounds, with
//! fitted-exponent columns and per-phase awake breakdowns.
//!
//! Determinism contract: generation is sequential (one scratch, fixed
//! grid order), every run derives from `(family, n, seed)`, floats are
//! rendered with fixed precision, and no wall-clock or hashed container
//! is involved — regenerating the report yields identical bytes, and
//! because every time driver is a bit-equal oracle of the others, a
//! report generated under [`Executor::Naive`] (or [`Executor::Sync`])
//! matches the [`Executor::Calendar`] bytes too (pinned in
//! `tests/report_golden.rs`).

use graphlib::{generators, WeightedGraph};
use mst_core::registry::{self, AlgorithmSpec};
use mst_core::{ExecOptions, MstScratch};
use netsim::{EnergyModel, Executor, Metrics, RunStats};

/// The report panel: sizes, seeds, and the backing time driver.
#[derive(Debug, Clone)]
pub struct ReportSpec {
    /// Graph sizes swept per family.
    pub sizes: Vec<usize>,
    /// Trial seeds per (family, algorithm, n) cell.
    pub seeds: Vec<u64>,
    /// Backing time driver. All drivers render identical report bytes
    /// (the golden tests pin `Naive` against `Calendar`); the choice only
    /// changes generation wall-clock.
    pub executor: Executor,
    /// Energy model the panel charges under (no budget by default, so
    /// outcomes are unchanged — the model only fills the energy columns).
    /// The ledger is deterministic, so it is part of the pinned report
    /// bytes.
    pub energy: EnergyModel,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            sizes: vec![8, 12, 16, 24],
            seeds: vec![0, 1],
            executor: Executor::Calendar,
            energy: EnergyModel::reference(),
        }
    }
}

/// One (algorithm, n) cell: means across the panel's seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Graph size.
    pub n: usize,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean measured awake complexity (max awake rounds over nodes).
    pub awake_max: f64,
    /// `awake_max / log2(n)` — the constant the paper's `O(log n)` hides.
    pub awake_over_log: f64,
    /// Mean run time in rounds (last round of the run).
    pub rounds: f64,
    /// Mean count of *active* rounds (rounds with at least one awake node).
    pub active_rounds: f64,
    /// Mean envelopes sent.
    pub messages_sent: f64,
    /// Mean payload bits sent.
    pub bits_sent: f64,
    /// Mean (over seeds) of the run's max single-round per-edge congestion.
    pub max_edge_bits: f64,
    /// Mean heaviest per-node energy spend (nano-joules) under the
    /// panel's [`EnergyModel`] — the energy analogue of `awake_max`.
    pub energy_max: f64,
    /// Mean total energy spend across all nodes.
    pub energy_total: f64,
}

/// One phase label's whole-run totals for the breakdown panel (largest
/// size, first seed).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// The algorithm's phase label.
    pub label: &'static str,
    /// Spans carrying this label.
    pub spans: u64,
    /// Active rounds across those spans.
    pub active_rounds: u64,
    /// Awake node-rounds across those spans.
    pub awake_node_rounds: u64,
    /// Fraction of the run's total awake node-rounds spent here.
    pub awake_share: f64,
    /// Envelopes sent across those spans.
    pub messages_sent: u64,
}

/// One algorithm's measured block of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmReport {
    /// Registry name.
    pub name: &'static str,
    /// The paper's awake-complexity bound for this algorithm.
    pub awake_bound: &'static str,
    /// The paper's round-complexity bound.
    pub rounds_bound: &'static str,
    /// Fitted exponent `b` of `awake_max ~ n^b` across the panel's sizes.
    pub awake_exponent: f64,
    /// Fitted exponent of `rounds ~ n^b`.
    pub rounds_exponent: f64,
    /// Fitted exponent of `messages_sent ~ n^b`.
    pub messages_exponent: f64,
    /// One row per swept size.
    pub rows: Vec<CellRow>,
    /// Per-phase awake breakdown at the largest size, first seed.
    pub phases: Vec<PhaseRow>,
}

/// One graph family's block of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyReport {
    /// Family name (`random`, `ring`).
    pub family: &'static str,
    /// Every registry algorithm, in registry order.
    pub algorithms: Vec<AlgorithmReport>,
}

/// The full Table-1 artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Sizes swept.
    pub sizes: Vec<usize>,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// Canonical spec string of the panel's [`EnergyModel`]
    /// ([`EnergyModel::spec_string`]) — the pricing behind the energy
    /// columns.
    pub energy: String,
    /// One block per graph family.
    pub families: Vec<FamilyReport>,
}

/// The paper's bounds per registry algorithm (Table 1 plus the baselines).
fn paper_bounds(name: &str) -> (&'static str, &'static str) {
    match name {
        "randomized" => ("O(log n)", "O(n log n)"),
        "deterministic" => ("O(log n)", "O(n N log n)"),
        "logstar" => ("O(log n log* n)", "O(n log n log* n)"),
        "prim" => ("Theta(n)", "O(n^2)"),
        "spanning-tree" => ("O(log n)", "O(n log n)"),
        "always-awake" => ("= rounds", "O(n log n)"),
        _ => ("?", "?"),
    }
}

/// The report's graph families. Both are connected (so `prim` runs) and
/// deterministic functions of `(n, seed)`.
fn build_family(family: &str, n: usize, seed: u64) -> Result<WeightedGraph, String> {
    let graph = match family {
        "random" => generators::random_connected(n, 0.25, seed.wrapping_mul(1000) + n as u64),
        "ring" => generators::ring(n, seed),
        other => return Err(format!("unknown graph family `{other}`")),
    };
    graph.map_err(|e| format!("{family} family at n={n} seed={seed}: {e}"))
}

const FAMILIES: &[&str] = &["random", "ring"];

/// One run under the chosen time driver, reduced to what the report
/// needs. Every driver goes through the same registry runner — the
/// executor knob on [`ExecOptions`] is the only difference — so the
/// drivers simulate the identical protocol stream.
fn run_once(
    spec: &AlgorithmSpec,
    graph: &WeightedGraph,
    seed: u64,
    executor: Executor,
    energy: EnergyModel,
    scratch: &mut MstScratch,
) -> Result<(RunStats, Metrics), String> {
    spec.run_with_options(
        graph,
        &ExecOptions::seeded(seed)
            .with_metrics()
            .with_executor(executor)
            .with_energy(energy),
        scratch,
    )
    .map(|out| (out.stats, out.metrics))
    .map_err(|e| format!("{} on n={} seed={seed}: {e}", spec.name, graph.node_count()))
}

/// Least-squares slope of `ln(y)` on `ln(n)` — the fitted exponent `b` of
/// `y ~ n^b`. Returns 0 for degenerate panels (fewer than two sizes).
fn fitted_exponent(points: &[(usize, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let k = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|&(n, _)| (n as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y.max(1.0).ln()).collect();
    let mx = xs.iter().sum::<f64>() / k;
    let my = ys.iter().sum::<f64>() / k;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        0.0
    } else {
        sxy / sxx
    }
}

/// Generates the report for `spec`. Sequential by design — determinism
/// over throughput; the default panel takes well under a second.
///
/// # Errors
///
/// Stringified graph-construction or run errors with their grid
/// coordinates.
pub fn generate(spec: &ReportSpec) -> Result<Report, String> {
    if spec.sizes.is_empty() || spec.seeds.is_empty() {
        return Err("report panel needs at least one size and one seed".to_string());
    }
    let breakdown_n = spec.sizes.iter().copied().max().unwrap_or(0);
    let breakdown_seed = spec.seeds[0];
    let mut scratch = MstScratch::new();
    let mut families = Vec::new();
    for &family in FAMILIES {
        let mut algorithms = Vec::new();
        for alg in registry::ALGORITHMS {
            let (awake_bound, rounds_bound) = paper_bounds(alg.name);
            let mut rows = Vec::new();
            let mut phases = Vec::new();
            for &n in &spec.sizes {
                let mut cell = CellRow {
                    n,
                    seeds: spec.seeds.len(),
                    awake_max: 0.0,
                    awake_over_log: 0.0,
                    rounds: 0.0,
                    active_rounds: 0.0,
                    messages_sent: 0.0,
                    bits_sent: 0.0,
                    max_edge_bits: 0.0,
                    energy_max: 0.0,
                    energy_total: 0.0,
                };
                let k = spec.seeds.len() as f64;
                for &seed in &spec.seeds {
                    let graph = build_family(family, n, seed)?;
                    let (stats, metrics) =
                        run_once(alg, &graph, seed, spec.executor, spec.energy, &mut scratch)?;
                    cell.energy_max += stats.energy_max() as f64 / k;
                    cell.energy_total += stats.energy_total() as f64 / k;
                    cell.awake_max += stats.awake_max() as f64 / k;
                    cell.rounds += stats.rounds as f64 / k;
                    cell.active_rounds += metrics.active_rounds() as f64 / k;
                    cell.messages_sent += metrics.messages_sent() as f64 / k;
                    cell.bits_sent += metrics.bits_sent() as f64 / k;
                    cell.max_edge_bits += metrics.max_round_edge_bits() as f64 / k;
                    if n == breakdown_n && seed == breakdown_seed {
                        let total_awake = metrics.awake_total().max(1);
                        phases = alg
                            .phase_totals(&graph, &metrics)
                            .into_iter()
                            .map(|t| PhaseRow {
                                label: t.label,
                                spans: t.spans,
                                active_rounds: t.active_rounds,
                                awake_node_rounds: t.awake_node_rounds,
                                awake_share: t.awake_node_rounds as f64 / total_awake as f64,
                                messages_sent: t.messages_sent,
                            })
                            .collect();
                    }
                }
                cell.awake_over_log = cell.awake_max / (n as f64).log2().max(1.0);
                rows.push(cell);
            }
            let fit = |f: &dyn Fn(&CellRow) -> f64| {
                fitted_exponent(&rows.iter().map(|r| (r.n, f(r))).collect::<Vec<_>>())
            };
            algorithms.push(AlgorithmReport {
                name: alg.name,
                awake_bound,
                rounds_bound,
                awake_exponent: fit(&|r| r.awake_max),
                rounds_exponent: fit(&|r| r.rounds),
                messages_exponent: fit(&|r| r.messages_sent),
                rows,
                phases,
            });
        }
        families.push(FamilyReport { family, algorithms });
    }
    Ok(Report {
        sizes: spec.sizes.clone(),
        seeds: spec.seeds.clone(),
        energy: spec.energy.spec_string(),
        families,
    })
}

fn push_list<T: std::fmt::Display>(out: &mut String, items: &[T]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_string());
    }
    out.push(']');
}

impl Report {
    /// Renders the report as deterministic JSON (hand-rolled: fixed field
    /// order, fixed `{:.3}` float precision, no escaping needed because
    /// every string is a static registry name or label).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"report\":\"table1-measured\",\"sizes\":");
        push_list(&mut s, &self.sizes);
        s.push_str(",\"seeds\":");
        push_list(&mut s, &self.seeds);
        s.push_str(&format!(",\"energy\":\"{}\"", self.energy));
        s.push_str(",\"families\":[");
        for (fi, fam) in self.families.iter().enumerate() {
            if fi > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"family\":\"{}\",\"algorithms\":[", fam.family));
            for (ai, alg) in fam.algorithms.iter().enumerate() {
                if ai > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"name\":\"{}\",\"awake_bound\":\"{}\",\"rounds_bound\":\"{}\",\
                     \"awake_exponent\":{:.3},\"rounds_exponent\":{:.3},\
                     \"messages_exponent\":{:.3},\"rows\":[",
                    alg.name,
                    alg.awake_bound,
                    alg.rounds_bound,
                    alg.awake_exponent,
                    alg.rounds_exponent,
                    alg.messages_exponent,
                ));
                for (ri, r) in alg.rows.iter().enumerate() {
                    if ri > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"n\":{},\"seeds\":{},\"awake_max\":{:.3},\
                         \"awake_over_log\":{:.3},\"rounds\":{:.3},\
                         \"active_rounds\":{:.3},\"messages_sent\":{:.3},\
                         \"bits_sent\":{:.3},\"max_edge_bits\":{:.3},\
                         \"energy_max\":{:.3},\"energy_total\":{:.3}}}",
                        r.n,
                        r.seeds,
                        r.awake_max,
                        r.awake_over_log,
                        r.rounds,
                        r.active_rounds,
                        r.messages_sent,
                        r.bits_sent,
                        r.max_edge_bits,
                        r.energy_max,
                        r.energy_total,
                    ));
                }
                s.push_str("],\"phases\":[");
                for (pi, p) in alg.phases.iter().enumerate() {
                    if pi > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"label\":\"{}\",\"spans\":{},\"active_rounds\":{},\
                         \"awake_node_rounds\":{},\"awake_share\":{:.3},\
                         \"messages_sent\":{}}}",
                        p.label,
                        p.spans,
                        p.active_rounds,
                        p.awake_node_rounds,
                        p.awake_share,
                        p.messages_sent,
                    ));
                }
                s.push_str("]}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Renders the report as a markdown "Table 1, measured" document.
    pub fn to_markdown(&self) -> String {
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        let seeds: Vec<String> = self.seeds.iter().map(|x| x.to_string()).collect();
        let top_n = self.sizes.iter().copied().max().unwrap_or(0);
        let mut s = format!(
            "# Table 1, measured\n\n\
             Panel: sizes {{{}}}, seeds {{{}}}; generated by `sleeping-mst report`.\n\
             `b` columns are least-squares exponents of `metric ~ n^b` across the panel.\n\
             Energy columns price runs under the `{}` model (nano-joules).\n",
            sizes.join(", "),
            seeds.join(", "),
            self.energy,
        );
        for fam in &self.families {
            s.push_str(&format!(
                "\n## Family `{}`\n\n\
                 | algorithm | paper awake bound | awake max @ n={top_n} | awake/log2 n | awake b | paper rounds bound | rounds @ n={top_n} | rounds b | messages b | energy max @ n={top_n} |\n\
                 |---|---|---|---|---|---|---|---|---|---|\n",
                fam.family
            ));
            for alg in &fam.algorithms {
                let top = alg.rows.iter().find(|r| r.n == top_n);
                let (awake, over_log, rounds, energy) = top.map_or((0.0, 0.0, 0.0, 0.0), |r| {
                    (r.awake_max, r.awake_over_log, r.rounds, r.energy_max)
                });
                s.push_str(&format!(
                    "| {} | {} | {:.1} | {:.2} | {:.3} | {} | {:.0} | {:.3} | {:.3} | {:.0} |\n",
                    alg.name,
                    alg.awake_bound,
                    awake,
                    over_log,
                    alg.awake_exponent,
                    alg.rounds_bound,
                    rounds,
                    alg.rounds_exponent,
                    alg.messages_exponent,
                    energy,
                ));
            }
            for alg in &fam.algorithms {
                s.push_str(&format!(
                    "\n### `{}` per-phase awake breakdown (n={top_n}, seed {})\n\n\
                     | phase | spans | active rounds | awake node-rounds | share | messages |\n\
                     |---|---|---|---|---|---|\n",
                    alg.name, self.seeds[0],
                ));
                for p in &alg.phases {
                    s.push_str(&format!(
                        "| {} | {} | {} | {} | {:.3} | {} |\n",
                        p.label,
                        p.spans,
                        p.active_rounds,
                        p.awake_node_rounds,
                        p.awake_share,
                        p.messages_sent,
                    ));
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ReportSpec {
        ReportSpec {
            sizes: vec![6, 8],
            seeds: vec![0],
            ..ReportSpec::default()
        }
    }

    #[test]
    fn report_covers_the_whole_registry_grid() {
        let report = generate(&tiny_spec()).unwrap();
        assert_eq!(report.families.len(), FAMILIES.len());
        for fam in &report.families {
            assert_eq!(fam.algorithms.len(), registry::ALGORITHMS.len());
            for alg in &fam.algorithms {
                assert_eq!(alg.rows.len(), 2);
                assert!(alg.rows.iter().all(|r| r.awake_max > 0.0));
                // The reference model charges every awake round, so the
                // energy columns are populated for every cell.
                assert!(alg.rows.iter().all(|r| r.energy_max > 0.0));
                assert!(alg.rows.iter().all(|r| r.energy_total >= r.energy_max));
                assert!(!alg.phases.is_empty(), "{}", alg.name);
                let share: f64 = alg.phases.iter().map(|p| p.awake_share).sum();
                assert!((share - 1.0).abs() < 1e-9, "{}: {share}", alg.name);
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = generate(&tiny_spec()).unwrap();
        let b = generate(&tiny_spec()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_markdown(), b.to_markdown());
        assert!(a.to_json().starts_with("{\"report\":\"table1-measured\""));
        assert!(a.to_markdown().starts_with("# Table 1, measured"));
    }

    #[test]
    fn fitted_exponent_recovers_power_laws() {
        let quad: Vec<(usize, f64)> = [4usize, 8, 16, 32]
            .iter()
            .map(|&n| (n, (n * n) as f64))
            .collect();
        assert!((fitted_exponent(&quad) - 2.0).abs() < 1e-9);
        let flat: Vec<(usize, f64)> = [4usize, 8, 16].iter().map(|&n| (n, 7.0)).collect();
        assert!(fitted_exponent(&flat).abs() < 1e-9);
        assert_eq!(fitted_exponent(&[(8, 3.0)]), 0.0);
    }

    #[test]
    fn empty_panel_is_rejected() {
        let err = generate(&ReportSpec {
            sizes: vec![],
            seeds: vec![0],
            ..ReportSpec::default()
        })
        .unwrap_err();
        assert!(err.contains("at least one"));
    }
}
