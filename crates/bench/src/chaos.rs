//! Chaos/soak harness: every registry algorithm × graph family ×
//! escalating fault level, each outcome classified.
//!
//! A trial runs one algorithm on one generated graph under one seeded
//! [`FaultPlan`] via
//! [`AlgorithmSpec::run_with_faults`](mst_core::registry::AlgorithmSpec::run_with_faults)
//! and lands in exactly one bucket:
//!
//! * [`Outcome::Correct`] — the run completed and the output is exactly
//!   the reference answer (Kruskal's MST for `produces_mst` algorithms, a
//!   spanning tree for the spanning-tree variant);
//! * [`Outcome::TypedFailure`] — the run degraded, but *legibly*: a typed
//!   [`RunError`] (watchdog cutoff, inconsistent collection, captured
//!   protocol panic, …). Under injected faults this is acceptable
//!   behavior — protocols are driven outside their design envelope;
//! * [`Outcome::WrongOutput`] — the run claimed success but the output is
//!   wrong. This is a bug, full stop: fault injection must never turn
//!   into silent corruption. The soak bin exits nonzero on any of these.
//!
//! Everything derives from the spec seed through fixed per-trial mixing,
//! so a report is byte-identical across runs and machines.

use graphlib::{generators, mst, UnionFind, WeightedGraph};
use mst_core::registry::{AlgorithmSpec, ALGORITHMS};
use mst_core::{ExecOptions, MstScratch, RunError};
use netsim::{EnergyModel, Executor, FaultPlan};

/// Fault-intensity ladder, mildest first. Intensities are per-message /
/// per-wake probabilities in ppm (see [`netsim::faults`]); `crash` adds a
/// seed-chosen node crash on top of the `moderate` mix.
pub const LEVELS: &[&str] = &["none", "light", "moderate", "heavy", "crash"];

/// Graph families the soak sweeps (generator seed = trial seed).
pub const FAMILIES: &[&str] = &["ring", "random", "complete"];

/// What to sweep: the master seed, the family sizes, and how many trial
/// seeds to draw per (algorithm, family, level, n) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Master seed; every per-trial seed and fault plan derives from it.
    pub seed: u64,
    /// Family size parameters.
    pub sizes: Vec<usize>,
    /// Trials per cell.
    pub trials: u64,
    /// Time driver every trial runs under. All drivers are bit-identical,
    /// so the report bytes do not depend on this — running the soak under
    /// [`Executor::Sync`] or [`Executor::Naive`] *is* the differential
    /// check against the default calendar driver.
    pub executor: Executor,
    /// Send-half-step shard count every trial runs under. Like the
    /// executor, shard counts are bit-identical, so this knob is part of
    /// the same differential surface (CI `cmp`s shards 1 vs 2 matrices).
    pub shards: Option<u32>,
    /// Optional [`EnergyModel`] every trial charges against. Fills the
    /// report's energy column; a budgeted model adds the
    /// `energy` typed-failure bucket when nodes starve.
    pub energy: Option<EnergyModel>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            sizes: vec![8, 12],
            trials: 2,
            executor: Executor::Calendar,
            shards: None,
            energy: None,
        }
    }
}

/// Classification of one chaos trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with exactly the reference output.
    Correct,
    /// Failed with a typed [`RunError`] (the `String` is its display).
    TypedFailure(String),
    /// Completed, but the output is wrong — a bug.
    WrongOutput(String),
}

impl Outcome {
    /// Stable one-word bucket name for reports.
    pub fn bucket(&self) -> &'static str {
        match self {
            Outcome::Correct => "correct",
            Outcome::TypedFailure(_) => "typed-failure",
            Outcome::WrongOutput(_) => "wrong-output",
        }
    }
}

/// One executed chaos trial.
#[derive(Debug, Clone)]
pub struct ChaosTrial {
    /// Registry name of the algorithm.
    pub algorithm: &'static str,
    /// Graph family name (see [`FAMILIES`]).
    pub family: &'static str,
    /// Fault level name (see [`LEVELS`]).
    pub level: &'static str,
    /// Family size parameter.
    pub n: usize,
    /// Derived trial seed (graph weights, protocol coins, fault streams).
    pub seed: u64,
    /// The classification.
    pub outcome: Outcome,
    /// Messages destroyed by the drop stream.
    pub injected_drops: u64,
    /// Extra deliveries from the duplicate stream.
    pub dup_deliveries: u64,
    /// Nodes halted by crash faults.
    pub crashed_nodes: u64,
    /// Simulated rounds (0 when the run failed before completing).
    pub rounds: u64,
    /// Total nano-joules spent under the spec's energy model (0 when no
    /// model is configured or the run failed before completing).
    pub energy_total: u64,
}

/// The full soak report: every trial in deterministic grid order.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The spec the report was generated from.
    pub spec: ChaosSpec,
    /// All trials: algorithms × families × levels × sizes × trial index.
    pub trials: Vec<ChaosTrial>,
}

/// SplitMix64 step — per-trial seeds derive from the master seed through
/// this fixed mixer, never from ambient state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fault plan of `level` for an `n`-node trial.
///
/// The ladder escalates drop/duplicate/spurious-sleep intensity and wake
/// jitter; `crash` reuses the `moderate` mix and additionally crashes a
/// seed-chosen node (any node — including a fragment leader) at a
/// seed-chosen early round.
pub fn plan_for(level: &str, trial_seed: u64, n: usize) -> FaultPlan {
    let plan = FaultPlan::seeded(mix(trial_seed ^ 0xfau64));
    match level {
        "none" => plan,
        "light" => plan
            .with_drop_ppm(20_000)
            .with_duplicate_ppm(20_000)
            .with_spurious_sleep_ppm(10_000)
            .with_wake_jitter(1),
        "moderate" => plan
            .with_drop_ppm(100_000)
            .with_duplicate_ppm(50_000)
            .with_spurious_sleep_ppm(50_000)
            .with_wake_jitter(2),
        "heavy" => plan
            .with_drop_ppm(300_000)
            .with_duplicate_ppm(150_000)
            .with_spurious_sleep_ppm(150_000)
            .with_wake_jitter(3),
        "crash" => {
            let node = (mix(trial_seed ^ 0xc0) % n as u64) as u32;
            let round = 1 + mix(trial_seed ^ 0xc1) % 64;
            plan.with_drop_ppm(100_000)
                .with_duplicate_ppm(50_000)
                .with_spurious_sleep_ppm(50_000)
                .with_wake_jitter(2)
                .with_crash(node, round)
        }
        other => panic!("unknown fault level '{other}'"),
    }
}

/// Builds the family graph for one trial.
fn build_graph(family: &str, n: usize, seed: u64) -> Result<WeightedGraph, String> {
    match family {
        "ring" => generators::ring(n, seed).map_err(|e| e.to_string()),
        "random" => generators::random_connected(n, 0.3, seed).map_err(|e| e.to_string()),
        "complete" => generators::complete(n, seed).map_err(|e| e.to_string()),
        other => Err(format!("unknown graph family '{other}'")),
    }
}

/// Checks a completed run's output against the reference answer.
fn classify_output(
    spec: &AlgorithmSpec,
    graph: &WeightedGraph,
    edges: &[graphlib::EdgeId],
) -> Outcome {
    let n = graph.node_count();
    if spec.produces_mst {
        let reference = mst::kruskal(graph).edges;
        if edges == reference.as_slice() {
            Outcome::Correct
        } else {
            Outcome::WrongOutput(format!(
                "claimed MST has {} edges, reference has {} (or edge sets differ)",
                edges.len(),
                reference.len()
            ))
        }
    } else {
        // Spanning-tree variant: any spanning forest of the graph's
        // components is correct; minimality is not promised.
        let mut uf = UnionFind::new(n);
        for &e in edges {
            let edge = graph.edge(e);
            if !uf.union(edge.u.index(), edge.v.index()) {
                return Outcome::WrongOutput(format!("cycle through edge {e}"));
            }
        }
        let mut components = UnionFind::new(n);
        for e in graph.edges() {
            components.union(e.u.index(), e.v.index());
        }
        if uf.set_count() == components.set_count() {
            Outcome::Correct
        } else {
            Outcome::WrongOutput(format!(
                "output has {} trees, graph has {} components",
                uf.set_count(),
                components.set_count()
            ))
        }
    }
}

/// Runs the full chaos grid: algorithms outermost, then families, levels,
/// sizes, trial indices — a fixed order, so reports are byte-stable.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosReport {
    let mut scratch = MstScratch::new();
    let mut trials = Vec::new();
    for algo in ALGORITHMS {
        for &family in FAMILIES {
            for &level in LEVELS {
                for &n in &spec.sizes {
                    for t in 0..spec.trials {
                        trials.push(run_trial(algo, family, level, n, t, spec, &mut scratch));
                    }
                }
            }
        }
    }
    ChaosReport {
        spec: spec.clone(),
        trials,
    }
}

fn run_trial(
    algo: &'static AlgorithmSpec,
    family: &'static str,
    level: &'static str,
    n: usize,
    t: u64,
    spec: &ChaosSpec,
    scratch: &mut MstScratch,
) -> ChaosTrial {
    // Trial seed: a fixed mix of the master seed and the cell coordinates
    // (the level deliberately excluded, so `none` and `crash` trials of a
    // cell run the *same* graph and coins — only the plan differs).
    let mut seed = mix(spec.seed ^ mix(n as u64) ^ mix(t.wrapping_mul(0x51ed)));
    for b in algo.name.bytes().chain(family.bytes()) {
        seed = mix(seed ^ u64::from(b));
    }
    let mut trial = ChaosTrial {
        algorithm: algo.name,
        family,
        level,
        n,
        seed,
        outcome: Outcome::TypedFailure(String::new()),
        injected_drops: 0,
        dup_deliveries: 0,
        crashed_nodes: 0,
        rounds: 0,
        energy_total: 0,
    };
    let graph = match build_graph(family, n, seed) {
        Ok(g) => g,
        Err(e) => {
            trial.outcome = Outcome::TypedFailure(format!("graph construction: {e}"));
            return trial;
        }
    };
    let plan = plan_for(level, seed, graph.node_count());
    let mut opts = ExecOptions::seeded(seed)
        .with_faults(plan)
        .with_executor(spec.executor);
    if let Some(shards) = spec.shards {
        opts = opts.with_shards(shards);
    }
    if let Some(model) = spec.energy {
        opts = opts.with_energy(model);
    }
    match algo.run_with_options(&graph, &opts, scratch) {
        Ok(out) => {
            trial.injected_drops = out.stats.injected_drops;
            trial.dup_deliveries = out.stats.dup_deliveries;
            trial.crashed_nodes = out.stats.crashed_nodes;
            trial.rounds = out.stats.rounds;
            trial.energy_total = out.stats.energy_total();
            trial.outcome = classify_output(algo, &graph, &out.edges);
        }
        Err(e) => {
            trial.outcome = Outcome::TypedFailure(error_kind(&e));
        }
    }
    trial
}

/// Short stable label for a typed failure (full display text can contain
/// run-specific numbers; reports key on the kind).
fn error_kind(e: &RunError) -> String {
    match e {
        RunError::Sim(netsim::SimError::MaxRoundsExceeded { .. }) => "watchdog".to_string(),
        RunError::Sim(_) => "sim".to_string(),
        RunError::Collect(_) => "collect".to_string(),
        RunError::Disconnected { .. } => "disconnected".to_string(),
        RunError::Model(_) => "model".to_string(),
        RunError::Panicked { .. } => "panic".to_string(),
        RunError::Degraded { .. } => "degraded".to_string(),
        RunError::EnergyExhausted { .. } => "energy".to_string(),
        other => format!("other: {other}"),
    }
}

impl ChaosReport {
    /// Trials that claimed success with a wrong answer — the bug bucket.
    pub fn wrong_outputs(&self) -> Vec<&ChaosTrial> {
        self.trials
            .iter()
            .filter(|t| matches!(t.outcome, Outcome::WrongOutput(_)))
            .collect()
    }

    /// The fault-tolerance matrix as byte-stable JSON: the spec, one
    /// summary cell per (algorithm, level) with bucket counts, and every
    /// trial row. Hand-rolled (keys in fixed order, no float formatting),
    /// so equal inputs render equal bytes.
    pub fn to_json(&self) -> String {
        let sizes: Vec<String> = self.spec.sizes.iter().map(|n| n.to_string()).collect();
        let mut cells = Vec::new();
        for algo in ALGORITHMS {
            for &level in LEVELS {
                let group: Vec<&ChaosTrial> = self
                    .trials
                    .iter()
                    .filter(|t| t.algorithm == algo.name && t.level == level)
                    .collect();
                let count = |b: &str| group.iter().filter(|t| t.outcome.bucket() == b).count();
                let energy: u64 = group.iter().map(|t| t.energy_total).sum();
                cells.push(format!(
                    "{{\"algorithm\":\"{}\",\"level\":\"{}\",\"trials\":{},\
                     \"correct\":{},\"typed_failures\":{},\"wrong_outputs\":{},\
                     \"energy_total\":{}}}",
                    algo.name,
                    level,
                    group.len(),
                    count("correct"),
                    count("typed-failure"),
                    count("wrong-output"),
                    energy,
                ));
            }
        }
        let rows: Vec<String> = self
            .trials
            .iter()
            .map(|t| {
                let detail = match &t.outcome {
                    Outcome::Correct => String::new(),
                    Outcome::TypedFailure(d) | Outcome::WrongOutput(d) => escape_json(d),
                };
                format!(
                    "{{\"algorithm\":\"{}\",\"family\":\"{}\",\"level\":\"{}\",\
                     \"n\":{},\"seed\":{},\"outcome\":\"{}\",\"detail\":\"{}\",\
                     \"injected_drops\":{},\"dup_deliveries\":{},\
                     \"crashed_nodes\":{},\"rounds\":{},\"energy_total\":{}}}",
                    t.algorithm,
                    t.family,
                    t.level,
                    t.n,
                    t.seed,
                    t.outcome.bucket(),
                    detail,
                    t.injected_drops,
                    t.dup_deliveries,
                    t.crashed_nodes,
                    t.rounds,
                    t.energy_total,
                )
            })
            .collect();
        let energy = match &self.spec.energy {
            Some(model) => model.spec_string(),
            None => "none".to_string(),
        };
        format!(
            "{{\"seed\":{},\"sizes\":[{}],\"trials_per_cell\":{},\
             \"energy\":\"{}\",\"matrix\":[{}],\"trials\":[{}]}}",
            self.spec.seed,
            sizes.join(","),
            self.spec.trials,
            energy,
            cells.join(","),
            rows.join(","),
        )
    }

    /// A markdown matrix — algorithms × levels, each cell
    /// `correct/typed/wrong` — for EXPERIMENTS.md and terminal output.
    pub fn summary_table(&self) -> String {
        let mut s = String::from("| algorithm |");
        for &level in LEVELS {
            s.push_str(&format!(" {level} |"));
        }
        s.push_str("\n|-----------|");
        for _ in LEVELS {
            s.push_str("---|");
        }
        s.push('\n');
        for algo in ALGORITHMS {
            s.push_str(&format!("| {} |", algo.name));
            for &level in LEVELS {
                let group: Vec<&ChaosTrial> = self
                    .trials
                    .iter()
                    .filter(|t| t.algorithm == algo.name && t.level == level)
                    .collect();
                let count = |b: &str| group.iter().filter(|t| t.outcome.bucket() == b).count();
                s.push_str(&format!(
                    " {}/{}/{} |",
                    count("correct"),
                    count("typed-failure"),
                    count("wrong-output")
                ));
            }
            s.push('\n');
        }
        s
    }
}

/// Minimal JSON string escaping for error-display details.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_families_are_consistent() {
        for &level in LEVELS {
            let plan = plan_for(level, 7, 8);
            if level == "none" {
                assert!(plan.is_inert());
            } else {
                assert!(!plan.is_inert(), "{level}");
            }
        }
        for &family in FAMILIES {
            assert!(build_graph(family, 8, 1).is_ok(), "{family}");
        }
    }

    #[test]
    fn crash_level_targets_a_valid_node() {
        for seed in 0..50 {
            let plan = plan_for("crash", seed, 8);
            assert_eq!(plan.crashes.len(), 1);
            let (node, round) = plan.crashes[0];
            assert!(node < 8);
            assert!(round >= 1);
        }
    }

    #[test]
    fn report_is_byte_stable_and_classifies_fault_free_runs_correct() {
        let spec = ChaosSpec {
            seed: 3,
            sizes: vec![6],
            trials: 1,
            ..ChaosSpec::default()
        };
        let a = run_chaos(&spec);
        let b = run_chaos(&spec);
        assert_eq!(a.to_json(), b.to_json());
        // Level "none" is a plain run: always the reference answer.
        for t in a.trials.iter().filter(|t| t.level == "none") {
            assert_eq!(
                t.outcome,
                Outcome::Correct,
                "{} {} n={}",
                t.algorithm,
                t.family,
                t.n
            );
            assert_eq!(t.injected_drops + t.dup_deliveries + t.crashed_nodes, 0);
        }
    }

    #[test]
    fn chaos_report_is_bit_identical_across_executors() {
        let spec = ChaosSpec {
            seed: 11,
            sizes: vec![6],
            trials: 1,
            ..ChaosSpec::default()
        };
        let calendar = run_chaos(&spec).to_json();
        for executor in [Executor::Sync, Executor::Naive] {
            let other = run_chaos(&ChaosSpec {
                executor,
                ..spec.clone()
            })
            .to_json();
            assert_eq!(calendar, other, "{executor}");
        }
    }

    #[test]
    fn energy_column_is_populated_and_bit_identical_across_executors_and_shards() {
        let spec = ChaosSpec {
            seed: 5,
            sizes: vec![6],
            trials: 1,
            energy: Some(EnergyModel::reference()),
            ..ChaosSpec::default()
        };
        let base = run_chaos(&spec);
        let json = base.to_json();
        assert!(json.contains("\"energy\":\"round:1000,tx:8,rx:4,idle:50\""));
        // Every completed trial spent something under the reference model.
        for t in base.trials.iter().filter(|t| t.rounds > 0) {
            assert!(
                t.energy_total > 0,
                "{} {} {}",
                t.algorithm,
                t.family,
                t.level
            );
        }
        // The ledger is part of the differential surface: executors and
        // shard counts must produce the same matrix bytes.
        for executor in [Executor::Sync, Executor::Naive] {
            let other = run_chaos(&ChaosSpec {
                executor,
                ..spec.clone()
            });
            assert_eq!(json, other.to_json(), "{executor}");
        }
        let sharded = run_chaos(&ChaosSpec {
            shards: Some(2),
            ..spec.clone()
        });
        assert_eq!(json, sharded.to_json(), "shards=2");
    }

    #[test]
    fn budgeted_chaos_classifies_starvation_as_a_typed_energy_failure() {
        // A budget below one round's cost starves every node immediately:
        // each algorithm lands in the typed-failure bucket as "energy".
        let spec = ChaosSpec {
            seed: 9,
            sizes: vec![6],
            trials: 1,
            energy: Some(EnergyModel::reference().with_budget(500)),
            ..ChaosSpec::default()
        };
        let report = run_chaos(&spec);
        assert!(report.wrong_outputs().is_empty());
        for t in report.trials.iter().filter(|t| t.level == "none") {
            assert_eq!(
                t.outcome,
                Outcome::TypedFailure("energy".to_string()),
                "{} {} n={}",
                t.algorithm,
                t.family,
                t.n
            );
        }
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
