//! Micro-benches of the substrates: sequential reference MSTs and the raw
//! simulator event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::{generators, mst};
use netsim::{flood, SimConfig, Simulator};

fn bench_reference_msts(c: &mut Criterion) {
    let g = generators::random_connected(1024, 0.01, 5).unwrap();
    let mut group = c.benchmark_group("reference_mst_n1024");
    group.bench_function("kruskal", |b| b.iter(|| mst::kruskal(&g)));
    group.bench_function("prim", |b| b.iter(|| mst::prim(&g)));
    group.bench_function("boruvka", |b| b.iter(|| mst::boruvka(&g)));
    group.finish();
}

fn bench_simulator_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_flood");
    for &n in &[256usize, 1024] {
        let g = generators::ring(n, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                Simulator::new(g, SimConfig::default())
                    .run(|ctx| flood::Flood::new(ctx.node.raw() == 0))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reference_msts, bench_simulator_flood);
criterion_main!(benches);
