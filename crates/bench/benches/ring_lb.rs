//! Criterion companion to the Theorem 3 `ring_lb` binary: simulation cost
//! of the ring experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbound::ring;
use mst_core::registry;

fn bench_ring_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_randomized_mst");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let g = ring::instance(n, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| registry::find("randomized").unwrap().run(g, 2).unwrap())
        });
    }
    group.finish();
}

fn bench_separation_sampling(c: &mut Criterion) {
    c.bench_function("heaviest_separation_n1024", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ring::heaviest_separation_sample(1024, seed).unwrap()
        })
    });
}

criterion_group!(benches, bench_ring_runs, bench_separation_sampling);
criterion_main!(benches);
