//! Criterion companion to the Theorem 4 `grc_tradeoff` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbound::grc::Grc;
use lowerbound::reduction::{css_to_mst, mark_edges};
use lowerbound::sd::SdInstance;
use mst_core::registry;

fn bench_grc_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("grc_build");
    for &(r, cols) in &[(4usize, 32usize), (8, 96)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cols}")),
            &(r, cols),
            |b, &(r, cols)| b.iter(|| Grc::build(r, cols, 1).unwrap()),
        );
    }
    group.finish();
}

fn bench_sd_encoded_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("sd_encoded_mst");
    group.sample_size(10);
    let grc = Grc::build(6, 48, 2).unwrap();
    let sd = SdInstance::random(grc.sd_bits(), 3);
    let weighted = css_to_mst(&grc.graph, &mark_edges(&grc, &sd));
    group.bench_function("randomized_on_grc", |b| {
        b.iter(|| {
            registry::find("randomized")
                .unwrap()
                .run(&weighted, 4)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grc_build, bench_sd_encoded_mst);
criterion_main!(benches);
