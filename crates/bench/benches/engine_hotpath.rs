//! Criterion benches of the executor hot path: pooled-scratch runs
//! (outbox/arena/stats buffers reused across iterations, the sweep
//! harness's configuration) against allocate-fresh runs, reported as
//! messages-per-second throughput.
//!
//! `cargo bench --bench engine_hotpath` — the CI `bench-baseline` step
//! runs exactly this in quick mode alongside `sleeping-mst sweep
//! --bench-out BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphlib::generators;
use mst_core::{registry, ExecOptions, MstScratch};

/// The randomized-panel graph family of `table1` (sparse G(n, 0.05)).
fn panel_graph(n: usize) -> graphlib::WeightedGraph {
    generators::random_connected(n, 0.05, n as u64).unwrap()
}

fn bench_pooled_vs_fresh(c: &mut Criterion) {
    let spec = registry::find("randomized").unwrap();
    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let g = panel_graph(n);
        // Message traffic is deterministic in (graph, seed), so one probe
        // run fixes the per-iteration element count for the rate report.
        let probe = spec.run(&g, 1).unwrap();
        group.throughput(Throughput::Elements(probe.stats.messages_delivered));

        group.bench_with_input(BenchmarkId::new("pooled", n), &g, |b, g| {
            let mut scratch = MstScratch::new();
            b.iter(|| spec.run_with_scratch(g, 1, &mut scratch).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fresh", n), &g, |b, g| {
            b.iter(|| spec.run(g, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_trace_off_accounting(c: &mut Criterion) {
    // The always-awake baseline maximizes delivery volume per round —
    // the configuration most sensitive to per-message accounting costs.
    let spec = registry::find("always-awake").unwrap();
    let mut group = c.benchmark_group("engine_hotpath_dense");
    group.sample_size(10);
    let n = 128usize;
    let g = panel_graph(n);
    let probe = spec.run(&g, 1).unwrap();
    group.throughput(Throughput::Elements(probe.stats.messages_delivered));
    group.bench_with_input(BenchmarkId::new("pooled", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        b.iter(|| spec.run_with_scratch(g, 1, &mut scratch).unwrap())
    });
    group.finish();
}

fn bench_metrics_on_off(c: &mut Criterion) {
    // The observability plane's cost contract: with `record_metrics` off
    // the recorder is never constructed, so "off" must track the plain
    // pooled run; "on" pays one branch per message plus the per-round
    // report push. (Off-switch *equivalence* — identical stats and edges
    // either way — is pinned in `tests/metrics_conservation.rs`.)
    let spec = registry::find("randomized").unwrap();
    let mut group = c.benchmark_group("engine_hotpath_metrics");
    group.sample_size(10);
    let n = 256usize;
    let g = panel_graph(n);
    let probe = spec.run(&g, 1).unwrap();
    group.throughput(Throughput::Elements(probe.stats.messages_delivered));
    group.bench_with_input(BenchmarkId::new("off", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        let opts = ExecOptions::seeded(1);
        b.iter(|| spec.run_with_options(g, &opts, &mut scratch).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("on", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        let opts = ExecOptions::seeded(1).with_metrics();
        b.iter(|| spec.run_with_options(g, &opts, &mut scratch).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pooled_vs_fresh,
    bench_trace_off_accounting,
    bench_metrics_on_off
);
criterion_main!(benches);
