//! Criterion benches of the executor hot path: pooled-scratch runs
//! (outbox/arena/stats buffers reused across iterations, the sweep
//! harness's configuration) against allocate-fresh runs, reported as
//! messages-per-second throughput — plus the time-driver pair
//! (calendar vs sync) on the sparse-wake workload of `bench-engine`.
//!
//! `cargo bench --bench engine_hotpath` — the CI `bench-baseline` step
//! runs exactly this in quick mode alongside `sleeping-mst bench-engine
//! --out BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphlib::generators;
use mst_core::{registry, ExecOptions, MstScratch};
use netsim::{
    Envelope, Executor, ExecutorScratch, NextWake, NodeCtx, Outbox, Protocol, Round, SimConfig,
    Simulator,
};

/// The randomized-panel graph family of `table1` (sparse G(n, 0.05)).
fn panel_graph(n: usize) -> graphlib::WeightedGraph {
    generators::random_connected(n, 0.05, n as u64).unwrap()
}

fn bench_pooled_vs_fresh(c: &mut Criterion) {
    let spec = registry::find("randomized").unwrap();
    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let g = panel_graph(n);
        // Message traffic is deterministic in (graph, seed), so one probe
        // run fixes the per-iteration element count for the rate report.
        let probe = spec.run(&g, 1).unwrap();
        group.throughput(Throughput::Elements(probe.stats.messages_delivered));

        group.bench_with_input(BenchmarkId::new("pooled", n), &g, |b, g| {
            let mut scratch = MstScratch::new();
            b.iter(|| spec.run_with_scratch(g, 1, &mut scratch).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fresh", n), &g, |b, g| {
            b.iter(|| spec.run(g, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_trace_off_accounting(c: &mut Criterion) {
    // The always-awake baseline maximizes delivery volume per round —
    // the configuration most sensitive to per-message accounting costs.
    let spec = registry::find("always-awake").unwrap();
    let mut group = c.benchmark_group("engine_hotpath_dense");
    group.sample_size(10);
    let n = 128usize;
    let g = panel_graph(n);
    let probe = spec.run(&g, 1).unwrap();
    group.throughput(Throughput::Elements(probe.stats.messages_delivered));
    group.bench_with_input(BenchmarkId::new("pooled", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        b.iter(|| spec.run_with_scratch(g, 1, &mut scratch).unwrap())
    });
    group.finish();
}

fn bench_metrics_on_off(c: &mut Criterion) {
    // The observability plane's cost contract: with `record_metrics` off
    // the recorder is never constructed, so "off" must track the plain
    // pooled run; "on" pays one branch per message plus the per-round
    // report push. (Off-switch *equivalence* — identical stats and edges
    // either way — is pinned in `tests/metrics_conservation.rs`.)
    let spec = registry::find("randomized").unwrap();
    let mut group = c.benchmark_group("engine_hotpath_metrics");
    group.sample_size(10);
    let n = 256usize;
    let g = panel_graph(n);
    let probe = spec.run(&g, 1).unwrap();
    group.throughput(Throughput::Elements(probe.stats.messages_delivered));
    group.bench_with_input(BenchmarkId::new("off", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        let opts = ExecOptions::seeded(1);
        b.iter(|| spec.run_with_options(g, &opts, &mut scratch).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("on", n), &g, |b, g| {
        let mut scratch = MstScratch::new();
        let opts = ExecOptions::seeded(1).with_metrics();
        b.iter(|| spec.run_with_options(g, &opts, &mut scratch).unwrap())
    });
    group.finish();
}

fn bench_sync_vs_calendar_drivers(c: &mut Criterion) {
    /// Mirror of the `bench-engine` panel workload (see
    /// `bench::engine_panel`): every node wakes a handful of times with
    /// huge gaps between wakes, so wall-clock is dominated by how the
    /// driver crosses silent rounds — one heap pop for the calendar
    /// driver, one tick per round for the synchronous driver.
    #[derive(Debug)]
    struct Sparse {
        state: u64,
        remaining: u32,
        max_gap: u64,
    }
    impl Sparse {
        fn gap(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            1 + (z ^ (z >> 31)) % self.max_gap
        }
    }
    impl Protocol for Sparse {
        type Msg = u64;
        fn init(&mut self, _: &NodeCtx) -> NextWake {
            NextWake::At(self.gap())
        }
        fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<u64>) {
            if let Some(p) = ctx.ports().next() {
                outbox.push(p, round);
            }
        }
        fn deliver(&mut self, _: &NodeCtx, round: Round, _: &[Envelope<u64>]) -> NextWake {
            self.remaining -= 1;
            if self.remaining == 0 {
                NextWake::Halt
            } else {
                NextWake::At(round + self.gap())
            }
        }
    }

    let n = 4096usize;
    let g = generators::ring(n, 1).unwrap();
    let max_gap = 64 * n as u64;
    let factory = move |ctx: &NodeCtx| Sparse {
        state: ctx.rng_seed,
        remaining: 3,
        max_gap,
    };
    let mut group = c.benchmark_group("engine_hotpath_drivers");
    group.sample_size(10);
    // Both drivers cover the same round span (bit-identical stats — see
    // `crates/netsim/tests/differential.rs`), so rounds/sec is the fair
    // common rate.
    let probe = Simulator::new(&g, SimConfig::default().with_executor(Executor::Calendar))
        .run(factory)
        .unwrap();
    group.throughput(Throughput::Elements(probe.stats.rounds));
    for executor in [Executor::Calendar, Executor::Sync] {
        group.bench_with_input(BenchmarkId::new(executor.as_str(), n), &g, |b, g| {
            b.iter(|| {
                Simulator::new(g, SimConfig::default().with_executor(executor))
                    .run(factory)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_setup_cost(c: &mut Criterion) {
    // Kernel setup must stay O(n + m) flat arrays with no per-node
    // allocation. A protocol that halts at init isolates graph build +
    // kernel init (contexts, wake queue, stamp/slot tables) from the
    // message loop, and the bytes/node guard turns a layout regression
    // (per-node `Vec`s creeping back into the graph or the kernel) into
    // a hard bench failure instead of a silent slowdown.
    #[derive(Debug)]
    struct HaltAtInit;
    impl Protocol for HaltAtInit {
        type Msg = u64;
        fn init(&mut self, _: &NodeCtx) -> NextWake {
            NextWake::Halt
        }
        fn send(&mut self, _: &NodeCtx, _: Round, _: &mut Outbox<u64>) {}
        fn deliver(&mut self, _: &NodeCtx, _: Round, _: &[Envelope<u64>]) -> NextWake {
            NextWake::Halt
        }
    }

    let n = 1usize << 16;
    let g = generators::chorded_cycle(n, 2, 1).unwrap();
    // Exact CSR footprint for the c = 2 chorded cycle (m = 3n): edges at
    // 16 B, 2m port entries at 24 B, n+1 offsets at 4 B, n external ids
    // at 8 B ≈ 204 B/node. 256 leaves slack for per-vector rounding but
    // fails loudly if any O(n)-allocation structure reappears.
    let bytes_per_node = g.memory_bytes() as f64 / n as f64;
    assert!(
        bytes_per_node <= 256.0,
        "graph setup regression: {bytes_per_node:.1} bytes/node exceeds the 256 B budget"
    );

    let mut group = c.benchmark_group("engine_setup");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("graph_build", n), |b| {
        b.iter(|| generators::chorded_cycle(n, 2, 1).unwrap())
    });
    group.bench_function(BenchmarkId::new("kernel_init", n), |b| {
        let mut scratch = ExecutorScratch::new();
        b.iter(|| {
            Simulator::new(&g, SimConfig::default())
                .run_with_scratch(&mut scratch, |_| HaltAtInit)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pooled_vs_fresh,
    bench_trace_off_accounting,
    bench_metrics_on_off,
    bench_sync_vs_calendar_drivers,
    bench_setup_cost
);
criterion_main!(benches);
