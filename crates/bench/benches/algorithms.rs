//! Criterion wall-time benches of the three MST protocols on the
//! simulator (E1/E2 runtime companion to the `table1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::generators;
use mst_core::registry;

fn bench_randomized(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized_mst");
    group.sample_size(10);
    for &n in &[32usize, 128, 512] {
        let g = generators::random_connected(n, 0.05, n as u64).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| registry::find("randomized").unwrap().run(g, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_deterministic(c: &mut Criterion) {
    let mut group = c.benchmark_group("deterministic_mst");
    group.sample_size(10);
    for &n in &[16usize, 48, 96] {
        let g = generators::random_connected(n, 0.08, n as u64).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| registry::find("deterministic").unwrap().run(g, 0).unwrap())
        });
    }
    group.finish();
}

fn bench_always_awake(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghs_always_awake");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        let g = generators::random_connected(n, 0.05, n as u64).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| registry::find("always-awake").unwrap().run(g, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_randomized,
    bench_deterministic,
    bench_always_awake
);
criterion_main!(benches);
