//! Property-based tests of the core algorithm building blocks.

use proptest::prelude::*;

use mst_core::deterministic::cv_iterations;
use mst_core::schedule::{block_len, ts_offsets};
use mst_core::timeline::{Position, Timeline};

proptest! {
    /// Every schedule offset fits in the block and pairs up with the
    /// adjacent level's counterpart.
    #[test]
    fn schedule_alignment(n in 2usize..300, i in 1u64..300) {
        prop_assume!((i as usize) < n);
        let parent = ts_offsets(n, i - 1);
        let child = ts_offsets(n, i);
        prop_assert_eq!(Some(parent.down_send), child.down_receive);
        prop_assert_eq!(Some(parent.up_receive), child.up_send);
        prop_assert_eq!(parent.side, child.side);
        for off in [child.down_send, child.side, child.up_receive] {
            prop_assert!(off < block_len(n));
        }
    }

    /// A node's own offsets never collide (one wake = one meaning).
    #[test]
    fn schedule_offsets_distinct(n in 2usize..300, i in 0u64..300) {
        prop_assume!((i as usize) < n);
        let o = ts_offsets(n, i);
        let mut all = vec![o.down_send, o.side, o.up_receive];
        all.extend(o.down_receive);
        all.extend(o.up_send);
        let uniq: std::collections::HashSet<u64> = all.iter().copied().collect();
        prop_assert_eq!(uniq.len(), all.len());
    }

    /// Timeline round/position conversions are inverse bijections.
    #[test]
    fn timeline_roundtrip(n in 1usize..200, blocks in 1u64..100, round in 1u64..1_000_000) {
        let t = Timeline::new(n, blocks);
        let pos = t.position(round);
        prop_assert_eq!(t.round(pos), round);
        prop_assert!(pos.offset < t.block_len());
        prop_assert!(pos.block < t.blocks_per_phase());
    }

    /// Positions map monotonically to rounds.
    #[test]
    fn timeline_monotone(n in 1usize..100, blocks in 1u64..50, a in 0u64..1000, b in 0u64..1000) {
        let t = Timeline::new(n, blocks);
        let pa = t.position(a + 1);
        let pb = t.position(b + 1);
        let same_order = (a < b) == (pa < pb) || a == b;
        prop_assert!(same_order, "{a} vs {b}: {pa:?} vs {pb:?}");
        let _ = Position { phase: 0, block: 0, offset: 0 };
    }

    /// The CV iteration schedule is tiny and monotone in N.
    #[test]
    fn cv_iterations_bounded(id_bound in 1u64..u64::MAX) {
        let t = cv_iterations(id_bound);
        prop_assert!(t >= 1);
        prop_assert!(t <= 6, "cv_iterations({id_bound}) = {t}");
    }
}

proptest! {
    // Whole-algorithm property runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The randomized algorithm's awake complexity is invariant under the
    /// weight scale (it only compares weights).
    #[test]
    fn randomized_invariant_under_weight_order(n in 4usize..20, seed in 0u64..100) {
        use graphlib::GraphBuilder;
        let base = graphlib::generators::random_connected(n, 0.2, seed).unwrap();
        // Re-map weights order-preservingly (×2 + 1).
        let mut b = GraphBuilder::new(n);
        for e in base.edges() {
            b.edge(e.u.raw(), e.v.raw(), e.weight * 2 + 1);
        }
        let scaled = b.build().unwrap();
        let out_a = mst_core::run_randomized(&base, 42).unwrap();
        let out_b = mst_core::run_randomized(&scaled, 42).unwrap();
        prop_assert_eq!(out_a.edges, out_b.edges);
        prop_assert_eq!(out_a.stats.rounds, out_b.stats.rounds);
        prop_assert_eq!(out_a.stats.awake_by_node, out_b.stats.awake_by_node);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The deterministic algorithm is correct under arbitrary sparse id
    /// spaces, and its awake complexity does not grow with the id bound.
    #[test]
    fn deterministic_handles_sparse_id_spaces(n in 4usize..12, span_mult in 2u64..24, seed in 0u64..50) {
        use graphlib::generators;
        let base = generators::random_connected(n, 0.25, seed).unwrap();
        let reference = graphlib::mst::kruskal(&base).edges;
        let sparse = generators::with_id_space(base, span_mult * n as u64, seed).unwrap();
        let out = mst_core::run_deterministic(&sparse).unwrap();
        prop_assert_eq!(&out.edges, &reference);
        let cv = mst_core::run_logstar(&sparse).unwrap();
        prop_assert_eq!(&cv.edges, &reference);
        // CV's run time must not scale with the id span the way the
        // stage-based coloring does. (For tiny N the CV prep/recolor
        // overhead of ~36 blocks can exceed the 3N stage blocks, so only
        // compare when N is clearly past the crossover.)
        if sparse.max_external_id() > 64 {
            prop_assert!(
                cv.stats.rounds <= out.stats.rounds,
                "CV {} rounds vs stages {} at N={}",
                cv.stats.rounds, out.stats.rounds, sparse.max_external_id()
            );
        }
    }
}
