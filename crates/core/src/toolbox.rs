//! Standalone single-procedure runs of the Appendix B toolbox.
//!
//! The MST algorithms interleave many procedure blocks on one timeline;
//! this module runs **one** procedure on a fixed Labeled Distance Tree so
//! the paper's per-procedure claims (Observations 2–4) can be tested and
//! benchmarked in isolation:
//!
//! * [`Broadcast`] — `Fragment-Broadcast(n)`: root's message to every
//!   node, `O(1)` awake, `O(n)` rounds;
//! * [`UpcastMin`] — `Upcast-Min(n)`: minimum of all node values to the
//!   root, `O(1)` awake, `O(n)` rounds;
//! * [`TransmitAdjacent`] — `Transmit-Adjacent(n)`: every node swaps one
//!   message with each neighbor, `O(1)` awake, `O(n)` rounds.
//!
//! Each protocol takes a [`TreeSpec`] describing the node's position in an
//! (externally constructed) LDT; the simulator factory typically derives
//! it from a reference spanning tree.

use std::collections::BTreeSet;

use graphlib::{NodeId, Port, WeightedGraph};
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

use crate::schedule::ts_offsets;

/// One node's position in a fixed Labeled Distance Tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSpec {
    /// Port to the parent (`None` at the root).
    pub parent: Option<Port>,
    /// Ports to the children.
    pub children: BTreeSet<Port>,
    /// Hop distance from the root.
    pub level: u64,
}

impl TreeSpec {
    /// Derives the specs of every node for the tree formed by `edges`
    /// (edge ids into `graph`), rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the edges do not form a tree spanning `root`'s component.
    pub fn from_tree_edges(
        graph: &WeightedGraph,
        edges: &[graphlib::EdgeId],
        root: NodeId,
    ) -> Vec<TreeSpec> {
        let n = graph.node_count();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &id in edges {
            let e = graph.edge(id);
            adj[e.u.index()].push(e.v);
            adj[e.v.index()].push(e.u);
        }
        let mut specs: Vec<TreeSpec> = (0..n)
            .map(|_| TreeSpec {
                parent: None,
                children: BTreeSet::new(),
                level: 0,
            })
            .collect();
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if seen[v.index()] {
                    continue;
                }
                seen[v.index()] = true;
                let up = graph.port_to(v, u).expect("tree edge endpoints adjacent");
                let down = graph.port_to(u, v).expect("tree edge endpoints adjacent");
                specs[v.index()].parent = Some(up);
                specs[v.index()].level = specs[u.index()].level + 1;
                specs[u.index()].children.insert(down);
                queue.push_back(v);
            }
        }
        specs
    }
}

/// `Fragment-Broadcast(n)`: the root's value reaches every node in one
/// block.
#[derive(Debug, Clone)]
pub struct Broadcast {
    spec: TreeSpec,
    /// The value held (pre-set at the root, received elsewhere).
    pub value: Option<u64>,
    phase: u8,
}

impl Broadcast {
    /// Creates the per-node state; pass `Some(value)` at the root.
    pub fn new(spec: TreeSpec, value: Option<u64>) -> Self {
        Broadcast {
            spec,
            value,
            phase: 0,
        }
    }
}

impl Protocol for Broadcast {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        match o.down_receive {
            Some(dr) => NextWake::At(dr + 1),
            None if !self.spec.children.is_empty() => NextWake::At(o.down_send + 1),
            None => NextWake::Halt,
        }
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<u64>) {
        let _ = ctx;
        let sending = self.phase == 1 || (self.phase == 0 && self.spec.parent.is_none());
        if let (true, Some(v)) = (sending, self.value) {
            for &p in &self.spec.children {
                outbox.push(p, v);
            }
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, _round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if self.phase == 0 && self.spec.parent.is_some() {
            if let Some(env) = inbox.first() {
                self.value = Some(env.msg);
            }
            self.phase = 1;
            if self.spec.children.is_empty() {
                return NextWake::Halt;
            }
            return NextWake::At(o.down_send + 1);
        }
        NextWake::Halt
    }
}

/// `Upcast-Min(n)`: the minimum of all node values reaches the root in
/// one block.
#[derive(Debug, Clone)]
pub struct UpcastMin {
    spec: TreeSpec,
    /// This node's own value going in; at the root, the tree minimum
    /// coming out.
    pub value: u64,
    phase: u8,
}

impl UpcastMin {
    /// Creates the per-node state with this node's input value.
    pub fn new(spec: TreeSpec, value: u64) -> Self {
        UpcastMin {
            spec,
            value,
            phase: 0,
        }
    }
}

impl Protocol for UpcastMin {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if !self.spec.children.is_empty() {
            NextWake::At(o.up_receive + 1)
        } else if let Some(up) = o.up_send {
            NextWake::At(up + 1)
        } else {
            // Childless root: it already holds the minimum.
            NextWake::Halt
        }
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<u64>) {
        let _ = ctx;
        let at_up_send = self.phase == 1 || (self.phase == 0 && self.spec.children.is_empty());
        if let (true, Some(p)) = (at_up_send, self.spec.parent) {
            outbox.push(p, self.value);
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, _round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if self.phase == 0 && !self.spec.children.is_empty() {
            for env in inbox {
                self.value = self.value.min(env.msg);
            }
            self.phase = 1;
            if let Some(up) = o.up_send {
                return NextWake::At(up + 1);
            }
            return NextWake::Halt; // root folded its children
        }
        NextWake::Halt
    }
}

/// `Transmit-Adjacent(n)`: every node exchanges one message with each
/// neighbor (tree or not) in the network-wide `Side-Send-Receive` round.
#[derive(Debug, Clone)]
pub struct TransmitAdjacent {
    spec: TreeSpec,
    /// The value announced to all neighbors.
    pub own: u64,
    /// Values received, per port.
    pub received: Vec<Option<u64>>,
}

impl TransmitAdjacent {
    /// Creates the per-node state with this node's announcement.
    pub fn new(spec: TreeSpec, own: u64, degree: usize) -> Self {
        TransmitAdjacent {
            spec,
            own,
            received: vec![None; degree],
        }
    }
}

impl Protocol for TransmitAdjacent {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        if ctx.degree() == 0 {
            return NextWake::Halt;
        }
        NextWake::At(ts_offsets(ctx.n, self.spec.level).side + 1)
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<u64>) {
        for p in ctx.ports() {
            outbox.push(p, self.own);
        }
    }

    fn deliver(&mut self, _ctx: &NodeCtx, _round: Round, inbox: &[Envelope<u64>]) -> NextWake {
        for env in inbox {
            self.received[env.port.index()] = Some(env.msg);
        }
        NextWake::Halt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};
    use netsim::{SimConfig, Simulator};

    fn tree_specs(graph: &WeightedGraph) -> Vec<TreeSpec> {
        let t = mst::kruskal(graph);
        TreeSpec::from_tree_edges(graph, &t.edges, NodeId::new(0))
    }

    #[test]
    fn spec_derivation_produces_an_ldt() {
        let g = generators::random_connected(20, 0.2, 3).unwrap();
        let specs = tree_specs(&g);
        assert_eq!(specs[0].parent, None);
        assert_eq!(specs[0].level, 0);
        // Levels increase by one along parent links.
        for v in g.nodes().skip(1) {
            let s = &specs[v.index()];
            let p = g.port_entry(v, s.parent.unwrap()).neighbor;
            assert_eq!(specs[p.index()].level + 1, s.level, "{v}");
        }
    }

    #[test]
    fn broadcast_observation_2() {
        // O(n) running time, O(1) awake time, everyone informed.
        let g = generators::random_connected(24, 0.15, 5).unwrap();
        let specs = tree_specs(&g);
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| {
                let spec = specs[ctx.node.index()].clone();
                let payload = (ctx.node.raw() == 0).then_some(4242);
                Broadcast::new(spec, payload)
            })
            .unwrap();
        assert!(out.states.iter().all(|s| s.value == Some(4242)));
        assert!(
            out.stats.rounds <= 2 * 24 + 1,
            "rounds {}",
            out.stats.rounds
        );
        assert!(
            out.stats.awake_max() <= 2,
            "awake {}",
            out.stats.awake_max()
        );
        assert_eq!(out.stats.messages_lost, 0);
    }

    #[test]
    fn upcast_min_observation_3() {
        let g = generators::random_connected(24, 0.15, 7).unwrap();
        let specs = tree_specs(&g);
        let values: Vec<u64> = (0..24).map(|i| 1000 - 7 * i as u64).collect();
        let expected = *values.iter().min().unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| UpcastMin::new(specs[ctx.node.index()].clone(), values[ctx.node.index()]))
            .unwrap();
        assert_eq!(out.states[0].value, expected, "root learns the minimum");
        assert!(out.stats.rounds <= 2 * 24 + 1);
        assert!(out.stats.awake_max() <= 2);
        assert_eq!(out.stats.messages_lost, 0);
    }

    #[test]
    fn transmit_adjacent_observation_4() {
        let g = generators::random_connected(24, 0.2, 9).unwrap();
        let specs = tree_specs(&g);
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| {
                TransmitAdjacent::new(
                    specs[ctx.node.index()].clone(),
                    u64::from(ctx.node.raw()) + 100,
                    ctx.degree(),
                )
            })
            .unwrap();
        // Everyone heard every neighbor exactly once, in one awake round.
        for v in g.nodes() {
            for (i, entry) in g.ports(v).iter().enumerate() {
                assert_eq!(
                    out.states[v.index()].received[i],
                    Some(u64::from(entry.neighbor.raw()) + 100),
                    "{v} port {i}"
                );
            }
        }
        assert_eq!(out.stats.awake_max(), 1);
        assert!(out.stats.rounds <= 2 * 24 + 1);
        assert_eq!(out.stats.messages_lost, 0);
    }

    #[test]
    fn broadcast_on_a_path_has_linear_rounds_but_constant_awake() {
        // The schedule's signature behaviour on the worst-case topology.
        let g = generators::path(40, 1).unwrap();
        let specs = tree_specs(&g);
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| {
                let spec = specs[ctx.node.index()].clone();
                let payload = (ctx.node.raw() == 0).then_some(1);
                Broadcast::new(spec, payload)
            })
            .unwrap();
        assert!(out.states.iter().all(|s| s.value == Some(1)));
        assert!(out.stats.rounds >= 39, "deep node informed late");
        assert!(out.stats.awake_max() <= 2);
    }

    #[test]
    fn single_node_procedures_are_trivial() {
        let g = graphlib::GraphBuilder::new(1).build().unwrap();
        let specs = [TreeSpec {
            parent: None,
            children: BTreeSet::new(),
            level: 0,
        }];
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| Broadcast::new(specs[0].clone(), Some(9)))
            .unwrap();
        assert_eq!(out.states[0].value, Some(9));
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| UpcastMin::new(specs[0].clone(), 5))
            .unwrap();
        assert_eq!(out.states[0].value, 5);
        let out = Simulator::new(&g, SimConfig::default())
            .run(|_| TransmitAdjacent::new(specs[0].clone(), 1, 0))
            .unwrap();
        assert!(out.states[0].received.is_empty());
    }
}
