//! The wire messages of both sleeping MST algorithms, with CONGEST bit
//! accounting.
//!
//! Field sizes: a fragment id is an external node id in `[1, N]`
//! (`⌈log N⌉` bits), a level is in `[0, n)` (`⌈log n⌉` bits), an edge
//! weight is drawn from a `poly(n)` space (`O(log n)` bits), and a color
//! needs 3 bits. Every variant is therefore `O(log n)` bits, which the
//! test suite asserts against the simulator's configurable limit.

use netsim::{bits_for_value, Payload};

/// Direction of a valid MOE relative to a fragment (deterministic
/// algorithm): `Out` is the fragment's own chosen MOE, `In` is another
/// fragment's MOE arriving here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// The fragment's own outgoing MOE.
    Out,
    /// An incoming MOE selected as valid by this fragment.
    In,
}

/// The five-color palette of `Fast-Awake-Coloring`, ordered by priority
/// (`Blue` highest, as in the paper: Blue > Red > Orange > Black > Green).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Color {
    /// Highest priority; blue fragments are the ones that merge away.
    Blue,
    /// Second priority.
    Red,
    /// Third priority.
    Orange,
    /// Fourth priority.
    Black,
    /// Lowest priority; never needed unless a fragment has four distinctly
    /// colored neighbors.
    Green,
}

impl Color {
    /// All colors in priority order.
    pub const PALETTE: [Color; 5] = [
        Color::Blue,
        Color::Red,
        Color::Orange,
        Color::Black,
        Color::Green,
    ];

    /// The highest-priority color not present in `used`.
    ///
    /// # Panics
    ///
    /// Panics if all five colors are used — impossible while the fragment
    /// graph has maximum degree 4.
    pub fn pick(used: &[Color]) -> Color {
        *Self::PALETTE
            .iter()
            .find(|c| !used.contains(c))
            .expect("degree-4 graph cannot exhaust a 5-color palette")
    }
}

/// The NBR-INFO payload: the (at most four) neighbor fragments of a
/// fragment in the pruned supergraph `G'`, each tagged with the MOE
/// direction that created the adjacency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NbrSet {
    entries: Vec<(u64, Dir)>,
}

impl NbrSet {
    /// Maximum entries a fragment can accumulate (3 valid incoming MOEs
    /// plus 1 valid outgoing).
    pub const MAX: usize = 4;

    /// Creates an empty set.
    pub fn new() -> Self {
        NbrSet::default()
    }

    /// Inserts an entry, keeping the set sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if the insertion would exceed [`NbrSet::MAX`] distinct
    /// entries — that would mean the MOE pruning invariant was violated.
    pub fn insert(&mut self, frag: u64, dir: Dir) {
        if let Err(pos) = self.entries.binary_search(&(frag, dir)) {
            self.entries.insert(pos, (frag, dir));
            assert!(
                self.entries.len() <= Self::MAX,
                "NBR-INFO exceeded {} entries: {:?}",
                Self::MAX,
                self.entries
            );
        }
    }

    /// Merges another set into this one.
    pub fn union(&mut self, other: &NbrSet) {
        for &(f, d) in &other.entries {
            self.insert(f, d);
        }
    }

    /// All entries, sorted by `(fragment, direction)`.
    pub fn entries(&self) -> &[(u64, Dir)] {
        &self.entries
    }

    /// Distinct neighbor fragment ids, sorted ascending.
    pub fn fragments(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.entries.iter().map(|&(f, _)| f).collect();
        out.dedup();
        out
    }

    /// `true` if the fragment has no `G'` neighbors (a *singleton* in the
    /// paper's terminology).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `(frag, dir)` is present.
    pub fn contains(&self, frag: u64, dir: Dir) -> bool {
        self.entries.binary_search(&(frag, dir)).is_ok()
    }

    /// `true` if `frag` is present with either direction.
    pub fn contains_fragment(&self, frag: u64) -> bool {
        self.entries.iter().any(|&(f, _)| f == frag)
    }

    fn bit_size(&self) -> usize {
        // 3 bits length + per entry: fragment id + 1 direction bit.
        3 + self
            .entries
            .iter()
            .map(|&(f, _)| bits_for_value(f) + 1)
            .sum::<usize>()
    }
}

/// Every message either sleeping algorithm sends. One shared enum keeps
/// the simulator monomorphic per run while both algorithms reuse the
/// toolbox block implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstMsg {
    /// `Transmit-Adjacent` payload: the sender's fragment id and level.
    /// `attach == true` additionally announces "my fragment merges into
    /// yours over this edge; you gain me as a child" (sent by `u_T` toward
    /// `u_H` in `Merging-Fragments`).
    FragInfo {
        /// Sender's fragment id.
        frag: u64,
        /// Sender's level (distance from its fragment root).
        level: u64,
        /// Attachment announcement for the receiving endpoint.
        attach: bool,
    },
    /// `Upcast-Min` of the fragment's minimum outgoing edge weight
    /// (`None` = no outgoing edge seen in this subtree).
    UpMoe(Option<u64>),
    /// `Fragment-Broadcast` of the fragment MOE; `None` means the fragment
    /// has no outgoing edge — the algorithm is done.
    DownMoe(Option<u64>),
    /// `Fragment-Broadcast` of the root's coin flip (randomized step (i)).
    DownCoin(bool),
    /// `Transmit-Adjacent` of the fragment coin; `over_moe` marks the
    /// sender's fragment MOE edge.
    SideCoin {
        /// The sender fragment's coin.
        heads: bool,
        /// `true` iff this edge is the sender fragment's MOE.
        over_moe: bool,
    },
    /// `Upcast-Min` of MOE validity from `u_T` to the root.
    UpValid(Option<bool>),
    /// `Fragment-Broadcast`: does this fragment merge this phase?
    DownMerging(bool),
    /// `Merging-Fragments` sweep value: the sender's NEW-LEVEL-NUM and
    /// NEW-FRAGMENT-ID.
    MergeVals {
        /// Sender's new level.
        level: u64,
        /// Sender's new fragment id.
        frag: u64,
    },
    /// `Transmit-Adjacent`: marks the sender fragment's MOE edge
    /// (deterministic step (i), used to discover incoming MOEs).
    SideMoeFlag {
        /// `true` iff this edge is the sender fragment's MOE.
        over_moe: bool,
    },
    /// Upward sweep: number of incoming-MOE edges in the sender's subtree.
    UpCount(u64),
    /// Downward sweep: number of validity tokens granted to the receiving
    /// subtree.
    DownTokens(u64),
    /// `Transmit-Adjacent`: tells the MOE's source fragment whether the
    /// target fragment selected it as valid.
    SideValid {
        /// The selection verdict.
        valid: bool,
    },
    /// Upward union of NBR-INFO entries.
    UpNbrs(NbrSet),
    /// `Fragment-Broadcast` of the final NBR-INFO.
    DownNbrs(NbrSet),
    /// `Fast-Awake-Coloring`: a freshly colored fragment announces its
    /// color across a `G'` edge.
    SideColor(Color),
    /// Upward forwarding of a neighbor's announced color.
    UpColor(Option<Color>),
    /// `Fragment-Broadcast` of a neighbor fragment's color (paired with
    /// the stage's fragment id, which is implicit in the round number).
    DownColor(Color),
    /// Cole–Vishkin mode: a fragment's current numeric color, announced
    /// across a `G'` edge.
    SideColorWord(u64),
    /// Cole–Vishkin mode: upcast of the parent fragment's current color
    /// (from `u_T` to the root).
    UpColorWord(Option<u64>),
    /// Cole–Vishkin mode: broadcast of the parent fragment's current
    /// color, from which every node derives the next CV color locally.
    DownColorWord(u64),
    /// Cole–Vishkin mode: does this fragment have a CV parent? (`u_T`
    /// upcasts its local verdict.)
    UpHasParent(Option<bool>),
    /// Cole–Vishkin mode: fragment-wide broadcast of the CV-parent flag.
    DownHasParent(bool),
    /// Cole–Vishkin mode: upcast union of small color bitmasks (neighbor
    /// CV classes, or neighbor final colors in the recolor stages).
    UpMask(u8),
    /// Cole–Vishkin mode: broadcast of an aggregated color bitmask.
    DownMask(u8),
}

impl Payload for MstMsg {
    fn bit_size(&self) -> usize {
        const TAG: usize = 5; // 17 variants fit in 5 tag bits
        TAG + match self {
            MstMsg::FragInfo { frag, level, .. } => {
                bits_for_value(*frag) + bits_for_value(*level) + 1
            }
            MstMsg::UpMoe(w) | MstMsg::DownMoe(w) => 1 + w.map_or(0, bits_for_value),
            MstMsg::DownCoin(_) => 1,
            MstMsg::SideCoin { .. } => 2,
            MstMsg::UpValid(v) => 1 + usize::from(v.is_some()),
            MstMsg::DownMerging(_) => 1,
            MstMsg::MergeVals { level, frag } => bits_for_value(*level) + bits_for_value(*frag),
            MstMsg::SideMoeFlag { .. } => 1,
            MstMsg::UpCount(c) => bits_for_value(*c),
            MstMsg::DownTokens(t) => bits_for_value(*t),
            MstMsg::SideValid { .. } => 1,
            MstMsg::UpNbrs(s) | MstMsg::DownNbrs(s) => s.bit_size(),
            MstMsg::SideColor(_) | MstMsg::DownColor(_) => 3,
            MstMsg::UpColor(c) => 1 + if c.is_some() { 3 } else { 0 },
            MstMsg::SideColorWord(w) | MstMsg::DownColorWord(w) => bits_for_value(*w),
            MstMsg::UpColorWord(w) => 1 + w.map_or(0, bits_for_value),
            MstMsg::UpHasParent(f) => 1 + usize::from(f.is_some()),
            MstMsg::DownHasParent(_) => 1,
            MstMsg::UpMask(_) | MstMsg::DownMask(_) => 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_pick_follows_priority() {
        assert_eq!(Color::pick(&[]), Color::Blue);
        assert_eq!(Color::pick(&[Color::Blue]), Color::Red);
        assert_eq!(Color::pick(&[Color::Red, Color::Blue]), Color::Orange);
        assert_eq!(
            Color::pick(&[Color::Blue, Color::Red, Color::Orange, Color::Black]),
            Color::Green
        );
    }

    #[test]
    #[should_panic(expected = "5-color palette")]
    fn color_pick_panics_when_exhausted() {
        Color::pick(&Color::PALETTE);
    }

    #[test]
    fn nbr_set_dedups_and_sorts() {
        let mut s = NbrSet::new();
        s.insert(9, Dir::In);
        s.insert(3, Dir::Out);
        s.insert(9, Dir::In);
        assert_eq!(s.entries(), &[(3, Dir::Out), (9, Dir::In)]);
        assert_eq!(s.fragments(), vec![3, 9]);
        assert!(s.contains(9, Dir::In));
        assert!(!s.contains(9, Dir::Out));
        assert!(s.contains_fragment(3));
        assert!(!s.contains_fragment(4));
    }

    #[test]
    fn nbr_set_union_respects_cap() {
        let mut a = NbrSet::new();
        a.insert(1, Dir::In);
        a.insert(2, Dir::In);
        let mut b = NbrSet::new();
        b.insert(3, Dir::In);
        b.insert(4, Dir::Out);
        a.union(&b);
        assert_eq!(a.entries().len(), 4);
    }

    #[test]
    #[should_panic(expected = "NBR-INFO exceeded")]
    fn nbr_set_overflow_panics() {
        let mut s = NbrSet::new();
        for f in 1..=5 {
            s.insert(f, Dir::In);
        }
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        // For n = 1024, N = 4096, weights < 2^36: every message must fit in
        // a generous c·log n budget (here 8 + 4·36 bits is far above; the
        // real check is the integration test against the simulator limit).
        let msgs = [
            MstMsg::FragInfo {
                frag: 4096,
                level: 1023,
                attach: true,
            },
            MstMsg::UpMoe(Some(1 << 36)),
            MstMsg::DownMoe(None),
            MstMsg::DownCoin(true),
            MstMsg::SideCoin {
                heads: false,
                over_moe: true,
            },
            MstMsg::UpValid(Some(true)),
            MstMsg::DownMerging(false),
            MstMsg::MergeVals {
                level: 1023,
                frag: 4096,
            },
            MstMsg::SideMoeFlag { over_moe: true },
            MstMsg::UpCount(1024),
            MstMsg::DownTokens(3),
            MstMsg::SideValid { valid: true },
            MstMsg::SideColor(Color::Green),
            MstMsg::UpColor(Some(Color::Blue)),
            MstMsg::DownColor(Color::Red),
        ];
        for m in msgs {
            assert!(m.bit_size() <= 64, "{m:?} is {} bits", m.bit_size());
        }
        let mut s = NbrSet::new();
        for f in [4093, 4094, 4095, 4096] {
            s.insert(f, Dir::In);
        }
        let m = MstMsg::UpNbrs(s);
        // 5 tag bits + 3 length bits + 4 entries × (13-bit id + 1 dir bit).
        assert!(
            m.bit_size() <= 5 + 3 + 4 * 14,
            "{m:?} is {} bits",
            m.bit_size()
        );
    }
}
