//! High-level entry points: run an algorithm on a graph, collect the MST
//! edge set and the complexity metrics.
//!
//! Every algorithm family is described once by a `FamilySpec`
//! (construction, output ports, phase counter, connectivity requirement);
//! the `run_*` and `check_*` functions are thin, API-stable wrappers that
//! hand a spec to the one plain execution path (`execute`) or its
//! validated twin (`execute_checked`). The [`registry`](crate::registry)
//! module exposes the same six algorithms as a data-driven
//! [`AlgorithmSpec`](crate::registry::AlgorithmSpec) table for callers
//! (CLI, benches, sweeps) that select algorithms by name.

use std::fmt;

use graphlib::{EdgeId, NodeId, Port, WeightedGraph};
use netsim::{
    ExecutorScratch, NodeCtx, Protocol, Round, RunStats, SimConfig, SimError, Simulator,
    ValidateError, ValidatingExecutor, Violation,
};

use crate::baseline::{ghs_always_awake, GhsAlwaysAwake};
use crate::deterministic::{DeterministicConfig, DeterministicMst};
use crate::exec::ExecOptions;
use crate::msg::MstMsg;
use crate::randomized::{RandomizedConfig, RandomizedMst};

/// Reusable executor scratch for every registry algorithm.
///
/// All six algorithms exchange [`MstMsg`] payloads, so one pool serves
/// them all: allocate once per worker thread, pass it to the
/// `run_*_scratch` entry points (or
/// [`AlgorithmSpec::run_with_scratch`](crate::registry::AlgorithmSpec::run_with_scratch)),
/// and consecutive runs reuse the executor's wake queue, delivery arena,
/// and stats buffers instead of reallocating them per run.
pub type MstScratch = ExecutorScratch<MstMsg>;

/// The result of one distributed MST execution.
#[derive(Debug, Clone)]
pub struct MstOutcome {
    /// MST edge ids, sorted ascending. For a connected graph this is the
    /// unique MST; for a disconnected one, the minimum spanning forest.
    pub edges: Vec<EdgeId>,
    /// Simulator metrics: awake complexity, run time, messages, bits.
    pub stats: RunStats,
    /// Merge phases completed (max over nodes).
    pub phases: u64,
    /// Per-round telemetry (empty unless the run was configured with
    /// [`ExecOptions::with_metrics`](crate::ExecOptions::with_metrics)).
    pub metrics: netsim::Metrics,
}

/// The two endpoints of an edge disagree about its MST membership — an
/// algorithm bug surfaced by [`collect_mst_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstCollectError {
    /// The edge one endpoint marked as an MST edge.
    pub edge: EdgeId,
    /// The endpoint that does *not* mark it.
    pub endpoint: NodeId,
}

impl fmt::Display for MstCollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistent MST output: endpoint {} does not mark edge {} \
             although its neighbor does",
            self.endpoint, self.edge
        )
    }
}

impl std::error::Error for MstCollectError {}

/// Everything that can go wrong in a high-level `run_*` call.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The simulator rejected the execution (bad port, bit budget, …).
    Sim(SimError),
    /// The per-node outputs do not assemble into a consistent edge set.
    Collect(MstCollectError),
    /// The algorithm requires a connected input graph.
    Disconnected {
        /// Registry name of the algorithm that was refused.
        algorithm: &'static str,
    },
    /// The run broke one or more sleeping-model rules (Section 1.1) —
    /// reported by the validating executor on the `check_*` paths.
    Model(Vec<Violation>),
    /// The protocol panicked mid-run — driven outside its design
    /// envelope by injected faults (see [`crate::exec::run_caught`]) and
    /// converted into a typed, classifiable failure.
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The run completed under injected faults, but the collected output
    /// is not a spanning forest of the input (nodes halted before
    /// marking their tree edges, or marked a cycle). Surfaced as a typed
    /// error so fault harnesses never mistake degradation for an answer;
    /// checked only when the run's fault plan is active.
    Degraded {
        /// Edges in the claimed output.
        edges: usize,
        /// Trees the output's acyclic part forms.
        output_trees: usize,
        /// Connected components of the input graph.
        graph_components: usize,
    },
    /// A node spent past its energy budget
    /// ([`netsim::EnergyModel::budget`]) and was forced asleep
    /// permanently. Promoted from [`netsim::SimError::EnergyExhausted`]
    /// to a first-class run-layer error so chaos harnesses classify
    /// energy starvation apart from other simulator failures. Carries
    /// the run's *first* exhaustion, adjudicated in serial node order —
    /// identical across drivers and shard counts.
    EnergyExhausted {
        /// The first node to exhaust its budget.
        node: NodeId,
        /// The round its ledger went past the budget.
        round: Round,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Collect(e) => write!(f, "{e}"),
            RunError::Disconnected { algorithm } => write!(
                f,
                "algorithm '{algorithm}' requires a connected graph \
                 (non-leader components would never terminate)"
            ),
            RunError::Model(violations) => {
                write!(f, "{} sleeping-model violation(s)", violations.len())?;
                for v in violations {
                    write!(f, "; {v}")?;
                }
                Ok(())
            }
            RunError::Panicked { message } => {
                write!(f, "protocol panicked under injected faults: {message}")
            }
            RunError::Degraded {
                edges,
                output_trees,
                graph_components,
            } => write!(
                f,
                "degraded output under injected faults: {edges} edges forming \
                 {output_trees} tree(s) on a graph with {graph_components} component(s)"
            ),
            RunError::EnergyExhausted { node, round } => write!(
                f,
                "node {node} exhausted its energy budget in round {round}; \
                 the run cannot complete without it"
            ),
        }
    }
}

/// Every stable [`RunError`] wire code: the six run-layer codes plus
/// the embedded [`netsim::SIM_ERROR_CODES`] namespace. Frozen vocabulary
/// — service responses embed these, so renaming one is a wire break the
/// round-trip tests catch.
pub const RUN_ERROR_CODES: &[&str] = &[
    "run.collect",
    "run.disconnected",
    "run.model",
    "run.panicked",
    "run.degraded",
    "run.energy-exhausted",
];

/// Resolves a wire code back to its canonical `&'static str` — either a
/// run-layer code from [`RUN_ERROR_CODES`] or a simulator code from
/// [`netsim::SIM_ERROR_CODES`] — or `None` for unknown codes.
pub fn parse_run_code(code: &str) -> Option<&'static str> {
    RUN_ERROR_CODES
        .iter()
        .copied()
        .find(|&c| c == code)
        .or_else(|| netsim::parse_sim_code(code))
}

impl RunError {
    /// The stable, machine-readable wire code for this error — the typed
    /// `"code"` field of a service error response. Simulator errors keep
    /// their own `sim.*` namespace ([`SimError::to_json_code`]); the
    /// run-layer variants use `run.*`. Per-instance detail stays in
    /// [`fmt::Display`]; the code never changes spelling.
    pub fn to_json_code(&self) -> &'static str {
        match self {
            RunError::Sim(e) => e.to_json_code(),
            RunError::Collect(_) => "run.collect",
            RunError::Disconnected { .. } => "run.disconnected",
            RunError::Model(_) => "run.model",
            RunError::Panicked { .. } => "run.panicked",
            RunError::Degraded { .. } => "run.degraded",
            RunError::EnergyExhausted { .. } => "run.energy-exhausted",
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::Collect(e) => Some(e),
            RunError::Disconnected { .. }
            | RunError::Model(_)
            | RunError::Panicked { .. }
            | RunError::Degraded { .. }
            | RunError::EnergyExhausted { .. } => None,
        }
    }
}

impl From<ValidateError> for RunError {
    fn from(e: ValidateError) -> Self {
        match e {
            ValidateError::Sim(s) => s.into(),
            ValidateError::Model(v) => RunError::Model(v),
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        match e {
            // Energy exhaustion is promoted to its own run-layer variant
            // (and wire code) so harnesses classify starvation apart from
            // other simulator failures.
            SimError::EnergyExhausted { node, round } => RunError::EnergyExhausted { node, round },
            other => RunError::Sim(other),
        }
    }
}

impl From<MstCollectError> for RunError {
    fn from(e: MstCollectError) -> Self {
        RunError::Collect(e)
    }
}

/// Collects the distributed output ("every node knows which of its
/// incident edges are in the MST") into a global edge set, checking that
/// the two endpoints of every edge agree.
///
/// # Errors
///
/// Returns [`MstCollectError`] naming the first edge whose endpoints
/// disagree — that would be an algorithm bug, not an input condition.
pub fn collect_mst_edges<P>(
    graph: &WeightedGraph,
    states: &[P],
    ports_of: impl Fn(&P) -> &[bool],
) -> Result<Vec<EdgeId>, MstCollectError> {
    let mut marked = vec![false; graph.edge_count()];
    for v in graph.nodes() {
        for (i, &m) in ports_of(&states[v.index()]).iter().enumerate() {
            if m {
                let entry = graph.port_entry(v, Port::new(i as u32));
                marked[entry.edge.index()] = true;
            }
        }
    }
    // Endpoint agreement.
    for (idx, &m) in marked.iter().enumerate() {
        if m {
            let e = graph.edge(EdgeId::new(idx as u32));
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                let p = graph.port_to(a, b).expect("edge endpoints adjacent");
                if !ports_of(&states[a.index()])[p.index()] {
                    return Err(MstCollectError {
                        edge: EdgeId::new(idx as u32),
                        endpoint: a,
                    });
                }
            }
        }
    }
    Ok(marked
        .iter()
        .enumerate()
        .filter(|&(_i, &m)| m)
        .map(|(i, &_m)| EdgeId::new(i as u32))
        .collect())
}

/// One algorithm family, described once: how to construct a node's
/// protocol, where its MST port marks and phase counter live, and whether
/// the input must be connected. The six `run_*`/`check_*` wrapper
/// families are all thin delegations to [`execute`] / [`execute_checked`]
/// over one of these — the spec is the *only* per-algorithm code on
/// either path.
struct FamilySpec<P, F>
where
    P: Protocol<Msg = MstMsg>,
    F: FnMut(&NodeCtx) -> P,
{
    /// `Some(name)`: refuse disconnected inputs with
    /// [`RunError::Disconnected`] before simulating (the algorithm would
    /// spin forever on non-leader components).
    require_connected: Option<&'static str>,
    factory: F,
    ports: fn(&P) -> &[bool],
    phases: fn(&P) -> u64,
}

/// `Randomized-MST` (and, via [`EdgeSelection::MinPort`], the
/// spanning-tree variant).
///
/// [`EdgeSelection::MinPort`]: crate::randomized::EdgeSelection::MinPort
fn randomized_spec(
    config: RandomizedConfig,
) -> FamilySpec<RandomizedMst, impl FnMut(&NodeCtx) -> RandomizedMst> {
    FamilySpec {
        require_connected: None,
        factory: move |ctx: &NodeCtx| RandomizedMst::with_config(ctx, config.clone()),
        ports: RandomizedMst::mst_ports,
        phases: RandomizedMst::phases,
    }
}

/// `Deterministic-MST` (and, via [`ColoringMode::ColeVishkin`], the
/// Corollary 1 log* variant).
///
/// [`ColoringMode::ColeVishkin`]: crate::deterministic::ColoringMode::ColeVishkin
fn deterministic_spec(
    config: DeterministicConfig,
) -> FamilySpec<DeterministicMst, impl FnMut(&NodeCtx) -> DeterministicMst> {
    FamilySpec {
        require_connected: None,
        factory: move |ctx: &NodeCtx| DeterministicMst::with_config(ctx, config.clone()),
        ports: DeterministicMst::mst_ports,
        phases: DeterministicMst::phases,
    }
}

/// The Prim-style sequential baseline (requires a connected input).
fn prim_spec(
    leader: u64,
) -> FamilySpec<crate::prim::PrimMst, impl FnMut(&NodeCtx) -> crate::prim::PrimMst> {
    FamilySpec {
        require_connected: Some("prim"),
        factory: move |ctx: &NodeCtx| crate::prim::PrimMst::new(ctx, leader),
        ports: crate::prim::PrimMst::mst_ports,
        phases: crate::prim::PrimMst::phases,
    }
}

fn always_awake_ports(s: &GhsAlwaysAwake) -> &[bool] {
    s.inner().mst_ports()
}

fn always_awake_phases(s: &GhsAlwaysAwake) -> u64 {
    s.inner().phases()
}

/// The always-awake GHS baseline (traditional-model cost profile).
fn always_awake_spec() -> FamilySpec<GhsAlwaysAwake, impl FnMut(&NodeCtx) -> GhsAlwaysAwake> {
    FamilySpec {
        require_connected: None,
        factory: ghs_always_awake,
        ports: always_awake_ports,
        phases: always_awake_phases,
    }
}

/// The one generic execution path all `run_*` wrappers share: enforce the
/// spec's connectivity requirement, simulate under the options' config
/// (reusing the caller's executor scratch), collect the marked ports into
/// an edge set, take the phase maximum.
fn execute<P, F>(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    spec: FamilySpec<P, F>,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError>
where
    P: Protocol<Msg = MstMsg>,
    F: FnMut(&NodeCtx) -> P,
{
    if let Some(algorithm) = spec.require_connected {
        if !graphlib::traversal::is_connected(graph) {
            return Err(RunError::Disconnected { algorithm });
        }
    }
    let config = opts.sim_config();
    // Lossy runs (active faults, or an energy budget that can force nodes
    // asleep) must not pass off partial forests as answers.
    let lossy = opts.lossy();
    let out = Simulator::new(graph, config).run_with_scratch(scratch, spec.factory)?;
    let edges = collect_mst_edges(graph, &out.states, spec.ports)?;
    if lossy {
        check_spanning_forest(graph, &edges)?;
    }
    let phases = out.states.iter().map(spec.phases).max().unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
        metrics: out.metrics,
    })
}

/// The degradation gate for fault-injected runs: a completed run's output
/// must still be a spanning forest of the input (one tree per connected
/// component, no cycles), else the "success" is a fault artifact —
/// reported as [`RunError::Degraded`]. Only minimality remains for the
/// caller to judge; partial or cyclic outputs never pass.
fn check_spanning_forest(graph: &WeightedGraph, edges: &[EdgeId]) -> Result<(), RunError> {
    let n = graph.node_count();
    let mut output = graphlib::UnionFind::new(n);
    for &id in edges {
        let e = graph.edge(id);
        output.union(e.u.index(), e.v.index());
    }
    let mut components = graphlib::UnionFind::new(n);
    for e in graph.edges() {
        components.union(e.u.index(), e.v.index());
    }
    // A forest satisfies edges + trees = n; a cycle or a missed component
    // breaks one of the two equalities.
    if edges.len() + output.set_count() != n || output.set_count() != components.set_count() {
        return Err(RunError::Degraded {
            edges: edges.len(),
            output_trees: output.set_count(),
            graph_components: components.set_count(),
        });
    }
    Ok(())
}

/// The validated twin of [`execute`]: executes the same [`FamilySpec`]
/// under the [`ValidatingExecutor`] (tracing forced, per-message budget
/// `congest_constant·⌈log₂ n⌉`, double-run determinism check) and collects
/// the same [`MstOutcome`]. Slower than the plain path — it runs the
/// protocol twice with tracing on — so it backs `AlgorithmSpec::check` and
/// the `sleeping-mst check` subcommand, not the benchmarks.
fn execute_checked<P, F>(
    graph: &WeightedGraph,
    config: SimConfig,
    congest_constant: u64,
    spec: FamilySpec<P, F>,
) -> Result<MstOutcome, RunError>
where
    P: Protocol<Msg = MstMsg>,
    F: FnMut(&NodeCtx) -> P,
{
    if let Some(algorithm) = spec.require_connected {
        if !graphlib::traversal::is_connected(graph) {
            return Err(RunError::Disconnected { algorithm });
        }
    }
    let out = ValidatingExecutor::new(graph, config)
        .with_congest_constant(congest_constant)
        .run(spec.factory)?;
    let edges = collect_mst_edges(graph, &out.states, spec.ports)?;
    let phases = out.states.iter().map(spec.phases).max().unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
        metrics: out.metrics,
    })
}

/// Conformance-checked run of `Randomized-MST` under the
/// [`ValidatingExecutor`].
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_randomized`].
pub fn check_randomized(
    graph: &WeightedGraph,
    seed: u64,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    check_randomized_with(graph, seed, RandomizedConfig::default(), congest_constant)
}

/// Conformance-checked run of `Randomized-MST` with ablation overrides.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_randomized_with`].
pub fn check_randomized_with(
    graph: &WeightedGraph,
    seed: u64,
    config: RandomizedConfig,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    execute_checked(
        graph,
        SimConfig::default().with_seed(seed),
        congest_constant,
        randomized_spec(config),
    )
}

/// Conformance-checked run of `Deterministic-MST`.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_deterministic`].
pub fn check_deterministic(
    graph: &WeightedGraph,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    check_deterministic_with(graph, DeterministicConfig::default(), congest_constant)
}

/// Conformance-checked run of `Deterministic-MST` with ablation overrides.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_deterministic_with`].
pub fn check_deterministic_with(
    graph: &WeightedGraph,
    config: DeterministicConfig,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    execute_checked(
        graph,
        SimConfig::default(),
        congest_constant,
        deterministic_spec(config),
    )
}

/// Conformance-checked run of the Corollary 1 log* variant.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_logstar`].
pub fn check_logstar(graph: &WeightedGraph, congest_constant: u64) -> Result<MstOutcome, RunError> {
    check_deterministic_with(
        graph,
        DeterministicConfig {
            coloring: crate::deterministic::ColoringMode::ColeVishkin,
            ..DeterministicConfig::default()
        },
        congest_constant,
    )
}

/// Conformance-checked run of the spanning-tree variant.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_spanning_tree`].
pub fn check_spanning_tree(
    graph: &WeightedGraph,
    seed: u64,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    check_randomized_with(
        graph,
        seed,
        RandomizedConfig {
            selection: crate::randomized::EdgeSelection::MinPort,
            ..RandomizedConfig::default()
        },
        congest_constant,
    )
}

/// Conformance-checked run of the Prim-style baseline.
///
/// # Errors
///
/// [`RunError::Disconnected`] on disconnected inputs, [`RunError::Model`]
/// on any sleeping-model violation; otherwise as [`run_prim`].
pub fn check_prim(
    graph: &WeightedGraph,
    leader: u64,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    execute_checked(
        graph,
        SimConfig::default(),
        congest_constant,
        prim_spec(leader),
    )
}

/// Conformance-checked run of the always-awake GHS baseline.
///
/// # Errors
///
/// [`RunError::Model`] on any sleeping-model violation; otherwise as
/// [`run_always_awake`].
pub fn check_always_awake(
    graph: &WeightedGraph,
    seed: u64,
    congest_constant: u64,
) -> Result<MstOutcome, RunError> {
    execute_checked(
        graph,
        SimConfig::default().with_seed(seed),
        congest_constant,
        always_awake_spec(),
    )
}

/// Runs `Randomized-MST` with the paper's parameters.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]); a correct run on a valid graph does not produce any.
pub fn run_randomized(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
    run_randomized_with(graph, seed, RandomizedConfig::default())
}

/// Runs `Randomized-MST` with ablation overrides.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_randomized_with(
    graph: &WeightedGraph,
    seed: u64,
    config: RandomizedConfig,
) -> Result<MstOutcome, RunError> {
    run_randomized_scratch(graph, seed, config, &mut MstScratch::new())
}

/// Runs `Randomized-MST` reusing a caller-provided executor scratch.
///
/// Equivalent to [`run_randomized_with`] but without the per-run executor
/// allocations: batch callers (sweeps, benches) keep one [`MstScratch`]
/// per worker thread and thread it through every run.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_randomized_scratch(
    graph: &WeightedGraph,
    seed: u64,
    config: RandomizedConfig,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_randomized_exec(graph, &ExecOptions::seeded(seed), config, scratch)
}

/// Runs `Randomized-MST` under explicit [`ExecOptions`] (seed, fault
/// plan, round budget).
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_randomized_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    config: RandomizedConfig,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    execute(graph, opts, randomized_spec(config), scratch)
}

/// Runs `Deterministic-MST` with the paper's parameters.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_deterministic(graph: &WeightedGraph) -> Result<MstOutcome, RunError> {
    run_deterministic_with(graph, DeterministicConfig::default())
}

/// Runs `Deterministic-MST` with ablation overrides.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_deterministic_with(
    graph: &WeightedGraph,
    config: DeterministicConfig,
) -> Result<MstOutcome, RunError> {
    run_deterministic_scratch(graph, config, &mut MstScratch::new())
}

/// Runs `Deterministic-MST` reusing a caller-provided executor scratch.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_deterministic_scratch(
    graph: &WeightedGraph,
    config: DeterministicConfig,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_deterministic_exec(graph, &ExecOptions::default(), config, scratch)
}

/// Runs `Deterministic-MST` under explicit [`ExecOptions`]. The seed is
/// ignored by the protocol; the fault plan and round budget apply.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_deterministic_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    config: DeterministicConfig,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    execute(graph, opts, deterministic_spec(config), scratch)
}

/// Runs the arbitrary-spanning-tree variant: the same LDT merging with
/// lowest-port (instead of minimum-weight) outgoing edges. Same `O(log n)`
/// awake complexity, but the output is only *some* spanning tree — the
/// executable version of the paper's contrast with Barenboim–Maimon's
/// spanning-tree construction.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_spanning_tree(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
    run_spanning_tree_scratch(graph, seed, &mut MstScratch::new())
}

/// Runs the spanning-tree variant reusing a caller-provided executor
/// scratch.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_spanning_tree_scratch(
    graph: &WeightedGraph,
    seed: u64,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_spanning_tree_exec(graph, &ExecOptions::seeded(seed), scratch)
}

/// Runs the spanning-tree variant under explicit [`ExecOptions`].
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_spanning_tree_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_randomized_exec(
        graph,
        opts,
        RandomizedConfig {
            selection: crate::randomized::EdgeSelection::MinPort,
            ..RandomizedConfig::default()
        },
        scratch,
    )
}

/// Runs the Corollary 1 variant: `Deterministic-MST` with Cole–Vishkin
/// coloring — `O(log n log* n)` awake, `O(n log n log* n)` rounds.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_logstar(graph: &WeightedGraph) -> Result<MstOutcome, RunError> {
    run_logstar_scratch(graph, &mut MstScratch::new())
}

/// Runs the Corollary 1 variant reusing a caller-provided executor
/// scratch.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_logstar_scratch(
    graph: &WeightedGraph,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_logstar_exec(graph, &ExecOptions::default(), scratch)
}

/// Runs the Corollary 1 variant under explicit [`ExecOptions`].
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_logstar_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_deterministic_exec(
        graph,
        opts,
        DeterministicConfig {
            coloring: crate::deterministic::ColoringMode::ColeVishkin,
            ..DeterministicConfig::default()
        },
        scratch,
    )
}

/// Runs the Prim-style sequential baseline: the fragment of external id
/// `leader` absorbs one node per phase. Produces the MST with `Θ(n)` awake
/// complexity — the counterexample showing sleep states alone are not
/// enough; the paper's parallel merging is what achieves `O(log n)`.
///
/// # Errors
///
/// Returns [`RunError::Disconnected`] if `graph` is disconnected: unlike
/// the paper's algorithms (which finish per fragment), Prim's non-leader
/// components never find the DONE signal and the run would spin forever.
/// Also propagates simulator failures and output-consistency violations.
pub fn run_prim(graph: &WeightedGraph, leader: u64) -> Result<MstOutcome, RunError> {
    run_prim_scratch(graph, leader, &mut MstScratch::new())
}

/// Runs the Prim-style baseline reusing a caller-provided executor
/// scratch.
///
/// # Errors
///
/// Returns [`RunError::Disconnected`] on disconnected inputs; also
/// propagates simulator failures and output-consistency violations.
pub fn run_prim_scratch(
    graph: &WeightedGraph,
    leader: u64,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_prim_exec(graph, &ExecOptions::default(), leader, scratch)
}

/// Runs the Prim-style baseline under explicit [`ExecOptions`].
///
/// # Errors
///
/// Returns [`RunError::Disconnected`] on disconnected inputs; also
/// propagates simulator failures and output-consistency violations.
pub fn run_prim_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    leader: u64,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    execute(graph, opts, prim_spec(leader), scratch)
}

/// Runs the always-awake GHS baseline (traditional-model cost profile).
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_always_awake(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
    run_always_awake_scratch(graph, seed, &mut MstScratch::new())
}

/// Runs the always-awake baseline reusing a caller-provided executor
/// scratch.
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_always_awake_scratch(
    graph: &WeightedGraph,
    seed: u64,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    run_always_awake_exec(graph, &ExecOptions::seeded(seed), scratch)
}

/// Runs the always-awake baseline under explicit [`ExecOptions`].
///
/// # Errors
///
/// Propagates simulator failures and output-consistency violations
/// ([`RunError`]).
pub fn run_always_awake_exec(
    graph: &WeightedGraph,
    opts: &ExecOptions,
    scratch: &mut MstScratch,
) -> Result<MstOutcome, RunError> {
    execute(graph, opts, always_awake_spec(), scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};

    #[test]
    fn run_randomized_matches_kruskal() {
        let g = generators::random_connected(26, 0.15, 4).unwrap();
        let out = run_randomized(&g, 9).unwrap();
        assert_eq!(out.edges, mst::kruskal(&g).edges);
        assert!(out.phases >= 1);
        assert!(out.stats.rounds > 0);
    }

    #[test]
    fn outcome_total_weight_matches_reference() {
        let g = generators::complete(12, 8).unwrap();
        let out = run_randomized(&g, 2).unwrap();
        assert_eq!(
            g.total_weight(out.edges.iter().copied()),
            mst::kruskal(&g).total_weight
        );
    }

    #[test]
    fn spanning_tree_variant_spans_but_is_not_minimum() {
        let g = generators::complete(14, 3).unwrap();
        let st = run_spanning_tree(&g, 5).unwrap();
        // It is a spanning tree…
        assert_eq!(st.edges.len(), 13);
        let mut uf = graphlib::UnionFind::new(14);
        for &e in &st.edges {
            let edge = g.edge(e);
            assert!(uf.union(edge.u.index(), edge.v.index()), "cycle in output");
        }
        assert_eq!(uf.set_count(), 1);
        // …but (on a complete graph with random weights) almost surely not
        // the minimum one.
        let reference = mst::kruskal(&g);
        assert!(
            g.total_weight(st.edges.iter().copied()) > reference.total_weight,
            "min-port tree accidentally minimal; change the seed"
        );
    }

    #[test]
    fn spanning_tree_variant_keeps_awake_logarithmic() {
        let g = generators::random_connected(64, 0.1, 4).unwrap();
        let st = run_spanning_tree(&g, 1).unwrap();
        assert_eq!(st.edges.len(), 63);
        assert!((st.stats.awake_max() as f64) < 60.0 * (64f64).log2());
    }

    #[test]
    fn collect_reports_endpoint_disagreement() {
        // Two nodes, one edge; only node 0 marks its port.
        struct Half(Vec<bool>);
        let g = graphlib::GraphBuilder::new(2)
            .edge(0, 1, 1)
            .build()
            .unwrap();
        let states = vec![Half(vec![true]), Half(vec![false])];
        let err = collect_mst_edges(&g, &states, |s| &s.0).unwrap_err();
        assert_eq!(err.edge, EdgeId::new(0));
        assert_eq!(err.endpoint, graphlib::NodeId::new(1));
        assert!(err.to_string().contains("does not mark"));
    }

    #[test]
    fn prim_refuses_disconnected_graphs() {
        let g = graphlib::GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(2, 3, 2)
            .build()
            .unwrap();
        let err = run_prim(&g, 1).unwrap_err();
        assert!(matches!(err, RunError::Disconnected { algorithm: "prim" }));
        assert!(err.to_string().contains("connected"));
    }

    /// Satellite (wire encoding): one instance of every [`RunError`]
    /// variant, for exhaustive wire-code tests.
    fn all_run_error_variants() -> Vec<RunError> {
        vec![
            RunError::Sim(SimError::MaxRoundsExceeded {
                limit: 10,
                running: 2,
            }),
            RunError::Collect(MstCollectError {
                edge: EdgeId::new(0),
                endpoint: NodeId::new(1),
            }),
            RunError::Disconnected { algorithm: "prim" },
            RunError::Model(Vec::new()),
            RunError::Panicked {
                message: "boom".into(),
            },
            RunError::Degraded {
                edges: 3,
                output_trees: 2,
                graph_components: 1,
            },
            RunError::EnergyExhausted {
                node: NodeId::new(4),
                round: 12,
            },
        ]
    }

    #[test]
    fn wire_codes_round_trip_and_are_distinct() {
        let variants = all_run_error_variants();
        // 6 run.* codes + the Sim passthrough variant.
        assert_eq!(
            variants.len(),
            RUN_ERROR_CODES.len() + 1,
            "new variant? add its code"
        );
        let mut seen = std::collections::BTreeSet::new();
        for e in &variants {
            let code = e.to_json_code();
            assert!(seen.insert(code), "duplicate code {code}");
            // Round trip: the code parses back to the identical static str,
            // whether it lives in the run.* or the sim.* namespace.
            assert_eq!(parse_run_code(code), Some(code));
            assert!(
                code.starts_with("run.") || code.starts_with("sim."),
                "{code}"
            );
        }
        // Every sim.* code resolves through the run-layer parser too
        // (serve responses carry both namespaces in one field).
        for &code in netsim::SIM_ERROR_CODES {
            assert_eq!(parse_run_code(code), Some(code));
        }
        assert_eq!(parse_run_code("run.no-such-error"), None);
    }

    #[test]
    fn energy_exhaustion_is_promoted_from_sim_errors() {
        let err: RunError = SimError::EnergyExhausted {
            node: NodeId::new(3),
            round: 7,
        }
        .into();
        assert_eq!(
            err,
            RunError::EnergyExhausted {
                node: NodeId::new(3),
                round: 7,
            }
        );
        assert_eq!(err.to_json_code(), "run.energy-exhausted");
        assert!(err.to_string().contains("v3") && err.to_string().contains('7'));
        // Other simulator errors still pass through untouched.
        let err: RunError = SimError::Stalled {
            running: 1,
            round: 2,
        }
        .into();
        assert!(matches!(err, RunError::Sim(SimError::Stalled { .. })));
    }
}
