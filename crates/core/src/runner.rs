//! High-level entry points: run an algorithm on a graph, collect the MST
//! edge set and the complexity metrics.

use graphlib::{EdgeId, Port, WeightedGraph};
use netsim::{RunStats, SimConfig, SimError, Simulator};

use crate::baseline::ghs_always_awake;
use crate::deterministic::{DeterministicConfig, DeterministicMst};
use crate::randomized::{RandomizedConfig, RandomizedMst};

/// The result of one distributed MST execution.
#[derive(Debug, Clone)]
pub struct MstOutcome {
    /// MST edge ids, sorted ascending. For a connected graph this is the
    /// unique MST; for a disconnected one, the minimum spanning forest.
    pub edges: Vec<EdgeId>,
    /// Simulator metrics: awake complexity, run time, messages, bits.
    pub stats: RunStats,
    /// Merge phases completed (max over nodes).
    pub phases: u64,
}

/// Collects the distributed output ("every node knows which of its
/// incident edges are in the MST") into a global edge set, checking that
/// the two endpoints of every edge agree.
///
/// # Panics
///
/// Panics if the endpoints of some edge disagree — that would be an
/// algorithm bug, not an input condition.
pub fn collect_mst_edges<P>(
    graph: &WeightedGraph,
    states: &[P],
    ports_of: impl Fn(&P) -> &[bool],
) -> Vec<EdgeId> {
    let mut marked = vec![false; graph.edge_count()];
    for v in graph.nodes() {
        for (i, &m) in ports_of(&states[v.index()]).iter().enumerate() {
            if m {
                let entry = graph.port_entry(v, Port::new(i as u32));
                marked[entry.edge.index()] = true;
            }
        }
    }
    // Endpoint agreement.
    for (idx, &m) in marked.iter().enumerate() {
        if m {
            let e = graph.edge(EdgeId::new(idx as u32));
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                let p = graph.port_to(a, b).expect("edge endpoints adjacent");
                assert!(
                    ports_of(&states[a.index()])[p.index()],
                    "endpoint {a} does not mark MST edge {idx}"
                );
            }
        }
    }
    marked
        .iter()
        .enumerate()
        .filter(|&(_i, &m)| m)
        .map(|(i, &_m)| EdgeId::new(i as u32))
        .collect()
}

/// Runs `Randomized-MST` with the paper's parameters.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]); a correct run on a valid
/// graph does not produce any.
pub fn run_randomized(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, SimError> {
    run_randomized_with(graph, seed, RandomizedConfig::default())
}

/// Runs `Randomized-MST` with ablation overrides.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_randomized_with(
    graph: &WeightedGraph,
    seed: u64,
    config: RandomizedConfig,
) -> Result<MstOutcome, SimError> {
    let out = Simulator::new(graph, SimConfig::default().with_seed(seed))
        .run(|ctx| RandomizedMst::with_config(ctx, config.clone()))?;
    let edges = collect_mst_edges(graph, &out.states, |s| s.mst_ports());
    let phases = out
        .states
        .iter()
        .map(RandomizedMst::phases)
        .max()
        .unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
    })
}

/// Runs `Deterministic-MST` with the paper's parameters.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_deterministic(graph: &WeightedGraph) -> Result<MstOutcome, SimError> {
    run_deterministic_with(graph, DeterministicConfig::default())
}

/// Runs `Deterministic-MST` with ablation overrides.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_deterministic_with(
    graph: &WeightedGraph,
    config: DeterministicConfig,
) -> Result<MstOutcome, SimError> {
    let out = Simulator::new(graph, SimConfig::default())
        .run(|ctx| DeterministicMst::with_config(ctx, config.clone()))?;
    let edges = collect_mst_edges(graph, &out.states, |s| s.mst_ports());
    let phases = out
        .states
        .iter()
        .map(DeterministicMst::phases)
        .max()
        .unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
    })
}

/// Runs the arbitrary-spanning-tree variant: the same LDT merging with
/// lowest-port (instead of minimum-weight) outgoing edges. Same `O(log n)`
/// awake complexity, but the output is only *some* spanning tree — the
/// executable version of the paper's contrast with Barenboim–Maimon's
/// spanning-tree construction.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_spanning_tree(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, SimError> {
    run_randomized_with(
        graph,
        seed,
        RandomizedConfig {
            selection: crate::randomized::EdgeSelection::MinPort,
            ..RandomizedConfig::default()
        },
    )
}

/// Runs the Corollary 1 variant: `Deterministic-MST` with Cole–Vishkin
/// coloring — `O(log n log* n)` awake, `O(n log n log* n)` rounds.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_logstar(graph: &WeightedGraph) -> Result<MstOutcome, SimError> {
    run_deterministic_with(
        graph,
        DeterministicConfig {
            coloring: crate::deterministic::ColoringMode::ColeVishkin,
            ..DeterministicConfig::default()
        },
    )
}

/// Runs the Prim-style sequential baseline: the fragment of external id
/// `leader` absorbs one node per phase. Produces the MST with `Θ(n)` awake
/// complexity — the counterexample showing sleep states alone are not
/// enough; the paper's parallel merging is what achieves `O(log n)`.
///
/// # Panics
///
/// Panics if `graph` is disconnected: unlike the paper's algorithms (which
/// finish per fragment), Prim's non-leader components never find the DONE
/// signal and the run would spin forever.
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_prim(graph: &WeightedGraph, leader: u64) -> Result<MstOutcome, SimError> {
    assert!(
        graphlib::traversal::is_connected(graph),
        "run_prim requires a connected graph (non-leader components never terminate)"
    );
    let out = Simulator::new(graph, SimConfig::default())
        .run(|ctx| crate::prim::PrimMst::new(ctx, leader))?;
    let edges = collect_mst_edges(graph, &out.states, |s| s.mst_ports());
    let phases = out
        .states
        .iter()
        .map(crate::prim::PrimMst::phases)
        .max()
        .unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
    })
}

/// Runs the always-awake GHS baseline (traditional-model cost profile).
///
/// # Errors
///
/// Propagates simulator failures ([`SimError`]).
pub fn run_always_awake(graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, SimError> {
    let out = Simulator::new(graph, SimConfig::default().with_seed(seed)).run(ghs_always_awake)?;
    let edges = collect_mst_edges(graph, &out.states, |s| s.inner().mst_ports());
    let phases = out
        .states
        .iter()
        .map(|s| s.inner().phases())
        .max()
        .unwrap_or(0);
    Ok(MstOutcome {
        edges,
        stats: out.stats,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};

    #[test]
    fn run_randomized_matches_kruskal() {
        let g = generators::random_connected(26, 0.15, 4).unwrap();
        let out = run_randomized(&g, 9).unwrap();
        assert_eq!(out.edges, mst::kruskal(&g).edges);
        assert!(out.phases >= 1);
        assert!(out.stats.rounds > 0);
    }

    #[test]
    fn outcome_total_weight_matches_reference() {
        let g = generators::complete(12, 8).unwrap();
        let out = run_randomized(&g, 2).unwrap();
        assert_eq!(
            g.total_weight(out.edges.iter().copied()),
            mst::kruskal(&g).total_weight
        );
    }

    #[test]
    fn spanning_tree_variant_spans_but_is_not_minimum() {
        let g = generators::complete(14, 3).unwrap();
        let st = run_spanning_tree(&g, 5).unwrap();
        // It is a spanning tree…
        assert_eq!(st.edges.len(), 13);
        let mut uf = graphlib::UnionFind::new(14);
        for &e in &st.edges {
            let edge = g.edge(e);
            assert!(uf.union(edge.u.index(), edge.v.index()), "cycle in output");
        }
        assert_eq!(uf.set_count(), 1);
        // …but (on a complete graph with random weights) almost surely not
        // the minimum one.
        let reference = mst::kruskal(&g);
        assert!(
            g.total_weight(st.edges.iter().copied()) > reference.total_weight,
            "min-port tree accidentally minimal; change the seed"
        );
    }

    #[test]
    fn spanning_tree_variant_keeps_awake_logarithmic() {
        let g = generators::random_connected(64, 0.1, 4).unwrap();
        let st = run_spanning_tree(&g, 1).unwrap();
        assert_eq!(st.edges.len(), 63);
        assert!((st.stats.awake_max() as f64) < 60.0 * (64f64).log2());
    }
}
