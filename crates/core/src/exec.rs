//! Execution options for the registry runners: seed, fault plan, and the
//! round-budget watchdog that turns fault-induced livelock into a typed
//! error.
//!
//! Under injected faults (dropped coordination messages, crashed fragment
//! leaders) a protocol can re-schedule wakes forever while waiting for a
//! signal that will never arrive. None of the six registry algorithms
//! spins *outside* the simulator — every convergence loop advances
//! through simulated rounds — so bounding [`netsim::SimConfig::max_rounds`]
//! bounds the whole run: livelock surfaces as
//! [`netsim::SimError::MaxRoundsExceeded`], never as a hang. Similarly, a
//! protocol whose internal invariants are broken by a dropped message may
//! panic; [`run_caught`] converts that into
//! [`RunError::Panicked`] so chaos
//! harnesses can classify it as a typed failure.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use netsim::{EnergyModel, Executor, FaultPlan, Round, SimConfig, WakePolicy};

use crate::runner::RunError;

/// Options threaded through a registry run: the RNG seed, an optional
/// fault plan, and an optional round budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Master seed for the protocol's private coins (ignored by
    /// deterministic algorithms).
    pub seed: u64,
    /// Fault plan to inject, if any. `None` — and inert plans — take the
    /// exact no-fault execution path.
    pub faults: Option<FaultPlan>,
    /// Round budget override. `None` keeps the simulator default on
    /// fault-free runs; fault-injected registry runs
    /// ([`AlgorithmSpec::run_with_options`](crate::registry::AlgorithmSpec::run_with_options))
    /// substitute the [`round_budget`] watchdog.
    pub max_rounds: Option<Round>,
    /// Record per-round [`netsim::Metrics`] (round reports, awake
    /// timelines). Off by default; execution is bit-identical either way.
    pub record_metrics: bool,
    /// Time-driver override ([`Executor`]). `None` defers to the
    /// algorithm's [`AlgorithmSpec::default_executor`](crate::registry::AlgorithmSpec::default_executor)
    /// (which is the simulator default, the calendar driver, for every
    /// registry entry). All drivers are bit-identical; this knob only
    /// changes wall-clock cost.
    pub executor: Option<Executor>,
    /// Send-half-step shard count ([`SimConfig::shards`]). `None` keeps
    /// the serial default. Like the executor choice, shard counts are
    /// bit-identical — they trade wall-clock for cores, nothing else.
    pub shards: Option<u32>,
    /// Energy model to charge against, if any. `None` — and inert models
    /// (all costs zero, no matter the budget) — take the exact no-energy
    /// execution path. A budgeted model engages the same watchdog and
    /// degradation safeguards as an active fault plan, because exhausted
    /// nodes fall asleep through the crash machinery.
    pub energy: Option<EnergyModel>,
    /// Wake-schedule transform ([`WakePolicy`]). The default
    /// [`WakePolicy::Block`] (and other identity policies) takes the
    /// exact untransformed path.
    pub wake_policy: WakePolicy,
}

impl ExecOptions {
    /// Options for a plain seeded run (no faults, default budget).
    pub fn seeded(seed: u64) -> Self {
        ExecOptions {
            seed,
            ..ExecOptions::default()
        }
    }

    /// Attaches a fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Caps the run at `rounds` simulated rounds.
    pub fn with_max_rounds(mut self, rounds: Round) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Enables per-round metrics recording.
    pub fn with_metrics(mut self) -> Self {
        self.record_metrics = true;
        self
    }

    /// Selects the time driver for the run.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Selects the send-half-step shard count for the run.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches an energy model.
    pub fn with_energy(mut self, model: EnergyModel) -> Self {
        self.energy = Some(model);
        self
    }

    /// Selects the wake-schedule policy for the run.
    pub fn with_wake_policy(mut self, policy: WakePolicy) -> Self {
        self.wake_policy = policy;
        self
    }

    /// The plan, if it would actually do anything.
    pub fn active_faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| !p.is_inert())
    }

    /// The energy model, if it would actually charge anything.
    pub fn active_energy(&self) -> Option<&EnergyModel> {
        self.energy.as_ref().filter(|m| !m.is_inert())
    }

    /// Whether this run can lose nodes or messages before completion: an
    /// active fault plan, an energy budget under an active model
    /// (exhaustion reuses the crash machinery), or a non-identity wake
    /// policy (delayed wakes break the transmission schedule's
    /// receiver-is-awake guarantee, so messages get lost). Gates the
    /// watchdog and the degraded-output check — a duty-cycled run that
    /// "completes" with a partial forest must surface as
    /// [`crate::RunError::Degraded`], never as a silently wrong tree.
    pub fn lossy(&self) -> bool {
        self.active_faults().is_some()
            || self.active_energy().is_some_and(|m| m.budget.is_some())
            || !self.wake_policy.is_identity()
    }

    /// The [`SimConfig`] these options describe.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig::default().with_seed(self.seed);
        if let Some(plan) = &self.faults {
            config = config.with_faults(plan.clone());
        }
        if let Some(rounds) = self.max_rounds {
            config = config.with_max_rounds(rounds);
        }
        if self.record_metrics {
            config = config.with_metrics();
        }
        if let Some(executor) = self.executor {
            config = config.with_executor(executor);
        }
        if let Some(shards) = self.shards {
            config = config.with_shards(shards);
        }
        if let Some(model) = self.energy {
            config = config.with_energy(model);
        }
        config = config.with_wake_policy(self.wake_policy);
        config
    }
}

/// The fault-mode round-budget watchdog for an `n`-node run.
///
/// The slowest registry algorithm is `Deterministic-MST` at
/// `O(n · N · log n)` rounds with external ids `N ≤ n`; the budget is
/// `64 · n² · ⌈log₂ n⌉` plus a flat floor, stretched by the plan's wake
/// jitter (every scheduled wake can slip by up to `wake_jitter` rounds)
/// and by spurious sleep (a suppressed wake retries the next round, so
/// intensity `p` stretches schedules by `1/(1-p)`). Measured at `n = 16`
/// the deterministic run needs 8 389 rounds against a 66 560-round
/// fault-free budget — about 8× headroom before stretching.
pub fn round_budget(n: usize, plan: &FaultPlan) -> Round {
    let n = n.max(2) as u64;
    let log_n = netsim::bits_for_range(n) as u64;
    let base = 1024 + 64 * n * n * log_n;
    // Spurious sleep at intensity p ppm stretches expected schedules by
    // 1/(1-p); double that for tail safety, capping the multiplier.
    let ppm = u64::from(netsim::faults::PPM_SCALE);
    let sleep = u64::from(plan.spurious_sleep_ppm).min(ppm - 1);
    let stretch = (2 * ppm / (ppm - sleep)).min(64);
    (1 + plan.wake_jitter) * base * stretch / 2
}

std::thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics [`run_caught`] is about to capture and forwards everything
/// else to the previously installed hook.
fn install_silencing_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into
/// [`RunError::Panicked`].
///
/// A protocol driven outside its design envelope (a dropped coordination
/// message, a crashed leader) may trip an internal invariant and panic;
/// chaos harnesses need that as a typed, classifiable failure rather
/// than a process abort. The expected-panic noise is suppressed via a
/// thread-local flag, so concurrent panics on *other* threads still
/// reach the default hook.
pub fn run_caught<T>(f: impl FnOnce() -> Result<T, RunError>) -> Result<T, RunError> {
    install_silencing_hook();
    CAPTURING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(RunError::Panicked { message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_options_take_the_no_fault_path() {
        let opts = ExecOptions::seeded(7);
        assert_eq!(opts.seed, 7);
        assert!(opts.active_faults().is_none());
        assert_eq!(opts.sim_config(), SimConfig::default().with_seed(7));
    }

    #[test]
    fn inert_plans_do_not_count_as_active() {
        let opts = ExecOptions::seeded(1).with_faults(FaultPlan::seeded(99));
        assert!(opts.faults.is_some());
        assert!(opts.active_faults().is_none());
        let hot = ExecOptions::seeded(1).with_faults(FaultPlan::seeded(99).with_drop_ppm(1));
        assert!(hot.active_faults().is_some());
    }

    #[test]
    fn sim_config_carries_all_fields() {
        let plan = FaultPlan::seeded(3).with_drop_ppm(5);
        let opts = ExecOptions::seeded(2)
            .with_faults(plan.clone())
            .with_max_rounds(500);
        let config = opts.sim_config();
        assert_eq!(config.max_rounds, 500);
        assert_eq!(config.faults, Some(plan));
    }

    #[test]
    fn inert_energy_models_do_not_count_as_active() {
        use netsim::{EnergyModel, WakePolicy};
        // All-zero costs are inert even with a budget attached; the run
        // cannot spend, so nothing can exhaust.
        let idle = ExecOptions::seeded(1).with_energy(EnergyModel::default().with_budget(5));
        assert!(idle.energy.is_some());
        assert!(idle.active_energy().is_none());
        assert!(!idle.lossy());
        // A priced model is active; only a budget makes it lossy.
        let priced = ExecOptions::seeded(1).with_energy(EnergyModel::reference());
        assert!(priced.active_energy().is_some());
        assert!(!priced.lossy());
        let budgeted =
            ExecOptions::seeded(1).with_energy(EnergyModel::reference().with_budget(10_000));
        assert!(budgeted.lossy());
        // Faults make a run lossy independently of energy.
        let faulted = ExecOptions::seeded(1).with_faults(FaultPlan::seeded(9).with_drop_ppm(1));
        assert!(faulted.lossy());
        // So does a non-identity wake policy: delayed wakes break the
        // schedule's receiver-is-awake guarantee. Identity
        // parameterizations stay non-lossy.
        let delayed =
            ExecOptions::seeded(1).with_wake_policy(WakePolicy::HeavyTail { seed: 7, cap: 5 });
        assert!(delayed.lossy());
        let identity = ExecOptions::seeded(1).with_wake_policy(WakePolicy::DutyCycle { period: 1 });
        assert!(!identity.lossy());
        // Energy and policy are threaded into the SimConfig verbatim.
        let config = budgeted
            .clone()
            .with_wake_policy(WakePolicy::DutyCycle { period: 4 })
            .sim_config();
        assert_eq!(config.energy, budgeted.energy);
        assert_eq!(config.wake_policy, WakePolicy::DutyCycle { period: 4 });
    }

    #[test]
    fn round_budget_has_headroom_and_stretches() {
        let calm = FaultPlan::seeded(0);
        // n = 16: measured deterministic run time is 8 389 rounds.
        assert_eq!(round_budget(16, &calm), 66_560);
        assert!(round_budget(16, &calm.clone().with_wake_jitter(3)) == 4 * 66_560);
        // 50% spurious sleep doubles expectations → 2× tail factor = 4×.
        let sleepy = calm.with_spurious_sleep_ppm(500_000);
        assert_eq!(round_budget(16, &sleepy), 2 * 66_560);
        // The stretch multiplier saturates instead of overflowing.
        let comatose = FaultPlan::seeded(0).with_spurious_sleep_ppm(netsim::faults::PPM_SCALE);
        assert!(round_budget(16, &comatose) <= 32 * 66_560);
    }

    #[test]
    fn run_caught_passes_values_and_errors_through() {
        assert_eq!(run_caught(|| Ok(41)), Ok(41));
        let err = run_caught::<u32>(|| {
            Err(RunError::Disconnected {
                algorithm: "randomized",
            })
        })
        .unwrap_err();
        assert!(matches!(err, RunError::Disconnected { .. }));
    }

    #[test]
    fn run_caught_types_a_panic() {
        let err = run_caught::<u32>(|| panic!("invariant broken: {}", 42)).unwrap_err();
        match err {
            RunError::Panicked { message } => assert_eq!(message, "invariant broken: 42"),
            other => unreachable!("{other:?}"),
        }
    }
}
